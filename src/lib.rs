//! # hpm — heterogeneous process migration (umbrella crate)
//!
//! Re-exports the whole system. See the README for a tour and DESIGN.md
//! for the paper-to-module map.

pub use hpm_annotate as annotate;
pub use hpm_arch as arch;
pub use hpm_core as core;
pub use hpm_memory as memory;
pub use hpm_migrate as migrate;
pub use hpm_net as net;
pub use hpm_types as types;
pub use hpm_workloads as workloads;
pub use hpm_xdr as xdr;
