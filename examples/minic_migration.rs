//! The pre-compiler path end to end: take a mini-C source file, show the
//! annotated listing (poll-points + live sets the dataflow analysis
//! computed), screen it for migration-unsafe features, then run it with
//! a mid-execution migration between heterogeneous machines.
//!
//! ```text
//! cargo run --release --example minic_migration
//! ```

use hpm::annotate::{annotate_source, check_migration_safety, parse, MiniCProcess};
use hpm::arch::Architecture;
use hpm::migrate::{run_migrating, run_straight, Trigger};
use hpm::net::NetworkModel;

const PROGRAM: &str = r#"
struct node { int value; struct node *next; };
struct node *head;
int length;

int push(int v) {
    struct node *n;
    n = (struct node *) malloc(sizeof(struct node));
    n->value = v;
    n->next = head;
    head = n;
    length = length + 1;
    return length;
}

int main() {
    int i;
    int sum;
    int r;
    head = 0;
    length = 0;
    for (i = 0; i < 2000; i++) {
        r = push(i * 3 % 101);
    }
    sum = 0;
    i = 0;
    while (i < 1) {
        struct_walk();
        i = i + 1;
    }
    print("length", length);
    return 0;
}

void struct_walk() {
    struct node *n;
    int sum;
    sum = 0;
    n = head;
    while (n != 0) {
        sum = sum + n->value;
        n = n->next;
    }
    print("sum", sum);
}
"#;

fn main() {
    // 1. The pre-compiler's safety screen.
    let ast = parse(PROGRAM).expect("parses");
    let unsafe_features = check_migration_safety(&ast);
    println!("migration-unsafe features found: {}", unsafe_features.len());

    // 2. The source-to-source transformation, made visible.
    let (annotated, sites) = annotate_source(PROGRAM).unwrap();
    println!("\n--- annotated source (pre-compiler output) ---");
    for line in annotated.lines().filter(|l| l.contains("MIG_")) {
        println!("{line}");
    }
    println!(
        "\n{} poll/call sites selected across {} functions",
        sites.len(),
        3
    );

    // 3. Run with a migration in the middle of the push loop,
    //    little-endian 32-bit → big-endian 32-bit.
    let mut p = MiniCProcess::from_source(PROGRAM).unwrap();
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    let run = run_migrating(
        || MiniCProcess::from_source(PROGRAM).unwrap(),
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(1000),
    )
    .unwrap();
    println!("\n--- migrated run ---");
    println!(
        "image {} bytes, {} blocks, collect {:.4}s, restore {:.4}s",
        run.report.image_bytes,
        run.report.collect_stats.blocks_saved,
        run.report.collect_time.as_secs_f64(),
        run.report.restore_time.as_secs_f64(),
    );
    println!("unmigrated results: {expect:?}");
    println!("migrated results:   {:?}", run.results);
    assert_eq!(expect, run.results, "results must be identical");
    println!("results identical across the heterogeneous migration ✓");
}
