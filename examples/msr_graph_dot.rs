//! Reproduce the paper's Figure 1: freeze the example program at its
//! migration point (fifth call of `foo`, before the `malloc`) and print
//! the MSR graph — both as a table and as Graphviz DOT.
//!
//! ```text
//! cargo run --example msr_graph_dot           # table + stats
//! cargo run --example msr_graph_dot -- --dot  # DOT on stdout
//! ```

use hpm::arch::Architecture;
use hpm::core::MsrGraph;
use hpm::migrate::{run_to_migration, Trigger};
use hpm::workloads::Figure1;

fn main() {
    let mut program = Figure1::new();
    let mut src = run_to_migration(
        &mut program,
        Architecture::dec5000(),
        Trigger::AtPollCount(5), // the paper's snapshot: i == 4, inside foo
    )
    .unwrap();

    let graph = MsrGraph::snapshot(&mut src.proc.space, &mut src.proc.msrlt).unwrap();

    if std::env::args().any(|a| a == "--dot") {
        print!("{}", graph.to_dot());
        return;
    }

    println!("MSR graph at the Figure 1 snapshot (i == 4, before malloc):");
    println!(
        "  {} vertices, {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!(
        "{:<6} {:<12} {:>12} {:>8} segment",
        "id", "label", "addr", "bytes"
    );
    for v in &graph.vertices {
        println!(
            "{:<6} {:<12} {:>#12x} {:>8} {}",
            v.id.to_string(),
            v.label,
            v.addr,
            v.size,
            v.segment
        );
    }
    println!();
    println!("{:<8} {:>10} {:<8} elem", "from", "+offset", "to");
    for e in &graph.edges {
        println!(
            "{:<8} {:>10} {:<8} {}",
            e.from.to_string(),
            e.from_offset,
            e.to.to_string(),
            e.to_leaf
        );
    }

    // The paper's §3.2 walkthrough: collecting foo's then main's live
    // data saves every vertex exactly once.
    let (payload, exec, stats) = src.collect().unwrap();
    println!(
        "\ncollection: {} blocks saved once each, {} shared refs, {} bytes, chain depth {}",
        stats.blocks_saved,
        stats.ptr_ref,
        payload.len(),
        exec.depth()
    );
}
