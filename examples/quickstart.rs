//! Quickstart: collect a pointer structure on a little-endian 32-bit
//! machine and restore it on a big-endian 64-bit machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hpm::arch::Architecture;
use hpm::core::{Collector, Msrlt, Restorer};
use hpm::memory::AddressSpace;
use hpm::types::Field;

fn build_process(arch: Architecture) -> (AddressSpace, Msrlt, u64) {
    // The "program": struct node { double value; struct node *next; }
    // with a global list head. Both machines run the same program, so
    // both build identical type tables and globals.
    let mut space = AddressSpace::new(arch);
    let node = space.types_mut().declare_struct("node");
    let p_node = space.types_mut().pointer_to(node);
    let dbl = space.types_mut().double();
    space
        .types_mut()
        .define_struct(
            node,
            vec![Field::new("value", dbl), Field::new("next", p_node)],
        )
        .unwrap();
    let head = space.define_global("head", p_node, 1).unwrap();
    let mut msrlt = Msrlt::new();
    for info in space.block_infos() {
        msrlt.register(&info);
    }
    (space, msrlt, head)
}

fn main() {
    // --- source machine: DEC 5000/120 (little-endian, ILP32) ---
    let (mut src, mut src_lt, head) = build_process(Architecture::dec5000());
    let node = src.types().struct_by_name("node").unwrap();

    // Build head → 3.25 → 2.5 → 1.75 → NULL on the heap.
    let mut next = 0u64;
    for v in [1.75f64, 2.5, 3.25] {
        let n = src.malloc(node, 1).unwrap();
        src_lt.register(&src.info_at(n).unwrap());
        let value_addr = src.elem_addr(n, 0).unwrap();
        src.store_f64(value_addr, v).unwrap();
        let next_addr = src.elem_addr(n, 1).unwrap();
        src.store_ptr(next_addr, next).unwrap();
        next = n;
    }
    src.store_ptr(head, next).unwrap();

    // Collect: Save_variable(&head) walks the MSR graph.
    let mut collector = Collector::new(&mut src, &mut src_lt);
    collector.save_variable(head).unwrap();
    let (payload, stats) = collector.finish();
    println!(
        "collected {} blocks, {} bytes (machine-independent)",
        stats.blocks_saved,
        payload.len()
    );

    // --- destination machine: x86-64 (little-endian, LP64) ---
    // Different pointer width, different struct layout — same program.
    let (mut dst, mut dst_lt, dhead) = build_process(Architecture::x86_64_sim());
    let mut restorer = Restorer::new(&mut dst, &mut dst_lt, &payload);
    restorer.restore_variable(dhead).unwrap();
    let rstats = restorer.finish().unwrap();
    println!(
        "restored {} blocks ({} allocated on the destination heap)",
        rstats.blocks_restored, rstats.blocks_allocated
    );

    // Walk the restored list.
    print!("restored list:");
    let mut cur = dst.load_ptr(dhead).unwrap();
    while cur != 0 {
        let value_addr = dst.elem_addr(cur, 0).unwrap();
        print!(" {}", dst.load_f64(value_addr).unwrap());
        let next_addr = dst.elem_addr(cur, 1).unwrap();
        cur = dst.load_ptr(next_addr).unwrap();
    }
    println!();
    println!(
        "source was {} / destination is {} — fully heterogeneous",
        Architecture::dec5000().name,
        Architecture::x86_64_sim().name
    );
}
