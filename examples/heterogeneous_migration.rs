//! The paper's §4.1 experiment, end to end: migrate the three evaluation
//! programs from a DEC 5000/120 (little-endian) to a SPARC 20
//! (big-endian) over 10 Mb/s Ethernet — first deterministically
//! (single-threaded driver), then live on a two-machine cluster with a
//! scheduler thread delivering the migration request.
//!
//! ```text
//! cargo run --release --example heterogeneous_migration
//! ```

use hpm::arch::Architecture;
use hpm::migrate::{run_migrating, run_straight, Trigger, TwoMachineCluster};
use hpm::net::NetworkModel;
use hpm::workloads::{diff_results, BitonicSort, Linpack, TestPointer};

fn main() {
    println!("=== deterministic driver: DEC 5000/120 → SPARC 20, 10 Mb/s ===\n");

    // test_pointer: trees, aliased pointers, interior pointers, a cycle.
    let mut p = TestPointer::new();
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    let run = run_migrating(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
    )
    .unwrap();
    report("test_pointer", &expect, &run);

    // linpack: full Ax=b solve, migrated mid-factorization.
    let n = 150;
    let mut p = Linpack::full(n);
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    let run = run_migrating(
        move || Linpack::full(n),
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(n / 2),
    )
    .unwrap();
    report(&format!("linpack {n}x{n}"), &expect, &run);

    // bitonic: BST of random ints, migrated mid-insertion (the RNG state
    // migrates too, so the destination continues the same sequence).
    let n = 10_000;
    let mut p = BitonicSort::new(n);
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    let run = run_migrating(
        move || BitonicSort::new(n),
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(n / 2),
    )
    .unwrap();
    report(&format!("bitonic {n}"), &expect, &run);

    println!("\n=== live cluster: scheduler thread + source/destination machine threads ===\n");
    let cluster = TwoMachineCluster::paper_heterogeneous();
    let creport = cluster
        .run(
            move || BitonicSort::new(30_000),
            5, /* request after 5 ms */
        )
        .unwrap();
    println!(
        "bitonic 30000 over the wire: image {} bytes, collect {:.4}s, tx {:.4}s, restore {:.4}s, {} polls before the request landed",
        creport.image_bytes,
        creport.collect_time.as_secs_f64(),
        creport.tx_time.as_secs_f64(),
        creport.restore_time.as_secs_f64(),
        creport.src_polls,
    );
    let sorted = creport.results.iter().find(|(k, _)| k == "sorted").unwrap();
    println!("destination reports sorted = {}", sorted.1);
}

fn report(name: &str, expect: &[(String, String)], run: &hpm::migrate::MigrationRun) {
    let consistent = diff_results(expect, &run.results).is_none();
    let r = &run.report;
    println!(
        "{name:<16} image {:>9} B  collect {:.4}s  tx {:.4}s  restore {:.4}s  chain depth {}  consistent: {consistent}",
        r.image_bytes,
        r.collect_time.as_secs_f64(),
        r.tx_time.as_secs_f64(),
        r.restore_time.as_secs_f64(),
        r.chain_depth,
    );
    assert!(consistent, "migrated results diverged for {name}");
}
