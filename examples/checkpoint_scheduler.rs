//! The paper's §5 future work: a scheduler built on the migration
//! mechanisms. Jobs are preempted *by migrating them to nowhere* — the
//! machine-independent migration image doubles as a checkpoint — and the
//! cluster load-balancer moves suspended jobs between machines of
//! different architectures as freely as resuming them locally.
//!
//! ```text
//! cargo run --release --example checkpoint_scheduler
//! ```

use hpm::arch::Architecture;
use hpm::migrate::{MigratableProgram, Scheduler};
use hpm::net::NetworkModel;
use hpm::workloads::{BitonicSort, Linpack, TestPointer};

fn main() {
    let mut sched = Scheduler::new(500 /* poll quantum */, NetworkModel::ethernet_100());
    let dec = sched.add_machine("dec5000", Architecture::dec5000());
    let _sparc = sched.add_machine("sparc20", Architecture::sparc20());
    let _x64 = sched.add_machine("x86-64", Architecture::x86_64_sim());

    // Six jobs, all submitted to one machine: the balancer must spread
    // them, and every move crosses an architecture boundary.
    for k in 0..3u64 {
        let n = 2_000 + k * 500;
        sched.submit(dec, &format!("bitonic-{n}"), move || {
            Box::new(BitonicSort::new(n)) as Box<dyn MigratableProgram + Send>
        });
    }
    sched.submit(dec, "linpack-64", || {
        Box::new(Linpack::full(64)) as Box<dyn MigratableProgram + Send>
    });
    sched.submit(dec, "test_pointer", || {
        Box::new(TestPointer::new()) as Box<dyn MigratableProgram + Send>
    });

    sched.run_to_completion(200).expect("all jobs finish");

    println!("machines:");
    for m in &sched.machines {
        println!(
            "  {:<10} ({}) finished {} job(s)",
            m.name,
            m.arch.name,
            m.jobs.len()
        );
        for j in &m.jobs {
            let summary = j
                .results()
                .map(|r| {
                    r.iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_default();
            println!(
                "    {:<14} slices {:>3}  moved {:>2}x  checkpoint bytes {:>8}  {}",
                j.label,
                j.slices,
                j.migrations,
                j.bytes_moved,
                &summary[..summary.len().min(60)]
            );
        }
    }
    println!(
        "\nscheduler: {} slices, {} checkpoints, {} rebalances, modeled tx {:.4}s",
        sched.stats.slices,
        sched.stats.checkpoints,
        sched.stats.rebalances,
        sched.stats.tx_time.as_secs_f64()
    );
}
