//! Seeded fault-injection soak: hundreds of [`FaultPlan`]s against the
//! resilient migration driver, across three paper workloads — each plan
//! run over both the stored (v2) and compressed (v3) wire.
//!
//! The contract under test is the robustness tentpole's acceptance bar:
//! every run either restores on the destination byte-identically (the
//! results match an unmigrated run) or falls back to a clean resume on
//! the source — **never** a wrong answer, never a hang. Rerunning any
//! seed reproduces the exact same [`RecoveryStats`].

use hpm::arch::Architecture;
use hpm::migrate::{
    run_migrating_pipelined, run_migrating_resilient, run_straight, FallbackPolicy,
    MigratableProgram, PipelineConfig, RecoveryPolicy, RecoveryStats, Trigger,
};
use hpm::net::{FaultPlan, NetworkModel};
use hpm::workloads::{diff_results, BitonicSort, Linpack, TestPointer};
use std::time::Duration;

/// Small chunks so every plan sees plenty of frames to hurt.
fn soak_cfg() -> PipelineConfig {
    PipelineConfig {
        chunk_bytes: 256,
        pace: false,
        pace_scale: 0.0,
        ..PipelineConfig::default()
    }
}

/// Tight retry budget and backoff so dead-link plans fail over quickly.
fn soak_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 4,
        backoff: Duration::from_millis(2),
        fallback: FallbackPolicy::SourceResume,
    }
}

/// One resilient migration under `plan`; panics on driver error (the
/// driver must always terminate cleanly, whatever the plan does).
fn run_one<P: MigratableProgram + Send>(
    make: impl Fn() -> P,
    src: Architecture,
    dst: Architecture,
    trigger: u64,
    plan: FaultPlan,
    cfg: PipelineConfig,
) -> (Vec<(String, String)>, RecoveryStats) {
    let run = run_migrating_resilient(
        make,
        src,
        dst,
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(trigger),
        cfg,
        plan,
        soak_policy(),
    )
    .unwrap_or_else(|e| panic!("seed {:#x}: driver failed: {e}", plan.seed));
    let stats = run.report.recovery.expect("resilient runs carry stats");
    (run.results, stats)
}

/// Sweep `seeds` plans over one workload inside a watchdog: the whole
/// sweep must finish in bounded time (no plan may hang the driver), every
/// answer must match the unmigrated run, and every ~25th seed is rerun to
/// prove its `RecoveryStats` reproduce exactly.
fn soak<P, F>(
    label: &'static str,
    make: F,
    src: Architecture,
    dst: Architecture,
    trigger: u64,
    seeds: u64,
    cfg: PipelineConfig,
) where
    P: MigratableProgram + Send,
    F: Fn() -> P + Send + 'static,
{
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut p = make();
        let (expect, _) = run_straight(&mut p, src.clone()).unwrap();
        let mut faulty_runs = 0u64;
        let mut fallbacks = 0u64;
        for i in 0..seeds {
            let plan = FaultPlan::from_seed(0x50AC_0000_0000_0000 | (label.len() as u64) << 32 | i);
            let (results, stats) = run_one(&make, src.clone(), dst.clone(), trigger, plan, cfg);
            assert!(
                diff_results(&expect, &results).is_none(),
                "{label} seed {:#x}: WRONG ANSWER (fallback={})",
                plan.seed,
                stats.fallback_taken
            );
            faulty_runs += (stats.faults_injected > 0) as u64;
            fallbacks += stats.fallback_taken as u64;
            if i % 25 == 0 {
                let (results2, stats2) =
                    run_one(&make, src.clone(), dst.clone(), trigger, plan, cfg);
                assert_eq!(
                    results2, results,
                    "{label} seed {:#x}: results drifted",
                    plan.seed
                );
                assert_eq!(
                    stats2, stats,
                    "{label} seed {:#x}: RecoveryStats not reproducible",
                    plan.seed
                );
            }
        }
        // The seed stream must actually exercise the machinery: most
        // plans inject something, and the 1-in-8 disconnect plans force
        // the source-resume path.
        assert!(
            faulty_runs > seeds / 2,
            "{label}: only {faulty_runs}/{seeds} plans injected faults"
        );
        assert!(
            fallbacks > 0,
            "{label}: no plan ever forced the source-resume fallback"
        );
        done_tx.send((faulty_runs, fallbacks)).unwrap();
    });
    let (faulty, fallbacks) = done_rx
        .recv_timeout(Duration::from_secs(300))
        .unwrap_or_else(|_| panic!("{label}: soak did not terminate in bounded time"));
    println!("{label}: {seeds} plans, {faulty} faulty, {fallbacks} fallbacks");
}

#[test]
fn soak_test_pointer() {
    soak(
        "test_pointer",
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        8,
        100,
        soak_cfg(),
    );
}

#[test]
fn soak_linpack() {
    soak(
        "linpack",
        || Linpack::truncated(120, 4),
        Architecture::ultra5(),
        Architecture::dec5000(),
        2,
        100,
        soak_cfg(),
    );
}

#[test]
fn soak_bitonic() {
    let n = 512u64;
    soak(
        "bitonic",
        move || BitonicSort::new(n),
        Architecture::ultra5(),
        Architecture::sparc20(),
        n,
        100,
        soak_cfg(),
    );
}

// ---------------------------------------------------------------------
// The same 300 plans rerun over the compressed (v3) wire: identical
// labels keep the seed stream identical, so every fault that hurt a
// stored frame now lands on a compressed one — CRC checks, NACKs, and
// retransmits all run against token streams instead of raw payload.
// ---------------------------------------------------------------------

#[test]
fn soak_test_pointer_compressed() {
    soak(
        "test_pointer",
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        8,
        100,
        soak_cfg().compressed(),
    );
}

#[test]
fn soak_linpack_compressed() {
    soak(
        "linpack",
        || Linpack::truncated(120, 4),
        Architecture::ultra5(),
        Architecture::dec5000(),
        2,
        100,
        soak_cfg().compressed(),
    );
}

#[test]
fn soak_bitonic_compressed() {
    let n = 512u64;
    soak(
        "bitonic",
        move || BitonicSort::new(n),
        Architecture::ultra5(),
        Architecture::sparc20(),
        n,
        100,
        soak_cfg().compressed(),
    );
}

/// With no faults injected, the resilient driver is the pipelined driver
/// plus CRC/ack machinery: same results, same image bytes, no recovery
/// actions beyond routine acknowledgements.
#[test]
fn zero_fault_resilient_run_matches_pipelined() {
    let pipelined = run_migrating_pipelined(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        soak_cfg(),
    )
    .unwrap();
    let resilient = run_migrating_resilient(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        soak_cfg(),
        FaultPlan::none(),
        soak_policy(),
    )
    .unwrap();
    assert_eq!(resilient.results, pipelined.results);
    assert_eq!(resilient.report.image_bytes, pipelined.report.image_bytes);
    assert_eq!(resilient.report.memory_bytes, pipelined.report.memory_bytes);
    let r = resilient.report.recovery.unwrap();
    assert!(!r.fallback_taken);
    assert_eq!(r.retransmits, 0);
    assert_eq!(r.nacks_sent, 0);
    assert_eq!(r.faults_injected, 0);
}
