//! The sharded parallel collector must be invisible: for every paper
//! workload and worker count, its spliced payload is byte-identical to
//! the sequential collector's, so the shipped image (and therefore the
//! restored process) cannot depend on how collection was parallelized.

use hpm::arch::Architecture;
use hpm::migrate::{
    run_migrating, run_migrating_parallel, run_migrating_planned, run_to_migration, MigrationPlan,
    Trigger,
};
use hpm::net::{NetworkModel, WireCodec};
use hpm::workloads::{BitonicSort, Linpack, TestPointer};

fn check_workload(name: &str, freeze: impl Fn() -> hpm::migrate::MigratedSource) {
    let mut src = freeze();
    let (seq, seq_exec, seq_stats) = src.collect().unwrap();
    for workers in [1usize, 2, 4] {
        let (par, par_exec, par_stats) = src.collect_parallel(workers).unwrap();
        assert_eq!(
            par, seq,
            "{name}: {workers}-worker payload diverges from sequential"
        );
        assert_eq!(par_exec, seq_exec, "{name}: exec state changed");
        assert_eq!(par_stats.blocks_saved, seq_stats.blocks_saved);
        assert_eq!(par_stats.ptr_new, seq_stats.ptr_new);
        assert_eq!(par_stats.ptr_ref, seq_stats.ptr_ref);
        assert_eq!(par_stats.ptr_null, seq_stats.ptr_null);
        assert_eq!(par_stats.scalars_encoded, seq_stats.scalars_encoded);
        assert_eq!(par_stats.bytes_out, seq_stats.bytes_out);
    }
    // Still repeatable sequentially after the parallel runs: the
    // process was never mutated.
    let (again, _, _) = src.collect().unwrap();
    assert_eq!(again, seq, "{name}: process state was disturbed");
}

#[test]
fn test_pointer_parallel_equals_sequential() {
    check_workload("test_pointer", || {
        let mut p = TestPointer::new();
        run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(8)).unwrap()
    });
}

#[test]
fn linpack_parallel_equals_sequential() {
    check_workload("linpack", || {
        let mut p = Linpack::truncated(300, 2);
        run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(1)).unwrap()
    });
}

#[test]
fn bitonic_parallel_equals_sequential() {
    check_workload("bitonic", || {
        let mut p = BitonicSort::new(5_000);
        run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(5_000)).unwrap()
    });
}

#[test]
fn parallel_driver_migrates_end_to_end() {
    // The full driver: parallel collection, modeled wire, restore on a
    // different architecture — results must match the sequential run.
    let seq = run_migrating(
        TestPointer::new,
        Architecture::ultra5(),
        Architecture::dec5000(),
        NetworkModel::instant(),
        Trigger::AtPollCount(8),
    )
    .unwrap();
    let par = run_migrating_parallel(
        TestPointer::new,
        Architecture::ultra5(),
        Architecture::dec5000(),
        NetworkModel::instant(),
        Trigger::AtPollCount(8),
        4,
    )
    .unwrap();
    assert_eq!(par.results, seq.results);
    assert_eq!(par.report.image_bytes, seq.report.image_bytes);
    assert_eq!(
        par.report.collect_stats.blocks_saved,
        seq.report.collect_stats.blocks_saved
    );
    // TestPointer sits far below the planner's byte cutoffs, so the
    // adaptive run must have chosen the sequential/stored arm.
    let plan = par.report.plan.expect("planned drivers report the plan");
    assert_eq!(plan.workers, 1, "small workload stays sequential");
    assert_eq!(
        par.report.transfer.raw_payload_bytes, par.report.transfer.wire_payload_bytes,
        "stored framing never rewrites payload bytes"
    );
}

#[test]
fn forced_parallel_compressed_driver_matches_sequential() {
    // Satellite coverage: force every planner arm and diff the whole run
    // against the plain sequential driver. The restored results, image
    // size, and collect accounting may not depend on worker count or
    // codec; the compressed arm must actually shrink the wire.
    let seq = run_migrating(
        TestPointer::new,
        Architecture::ultra5(),
        Architecture::dec5000(),
        NetworkModel::instant(),
        Trigger::AtPollCount(8),
    )
    .unwrap();
    for workers in [1usize, 2, 4] {
        for codec in [WireCodec::V2, WireCodec::V3] {
            let run = run_migrating_planned(
                TestPointer::new,
                Architecture::ultra5(),
                Architecture::dec5000(),
                NetworkModel::instant(),
                Trigger::AtPollCount(8),
                MigrationPlan::forced(workers, codec),
            )
            .unwrap();
            let tag = format!("workers={workers} codec={codec:?}");
            assert_eq!(run.results, seq.results, "{tag}: answers diverge");
            assert_eq!(
                run.report.image_bytes, seq.report.image_bytes,
                "{tag}: reassembled image size changed"
            );
            assert_eq!(
                run.report.collect_stats.bytes_out, seq.report.collect_stats.bytes_out,
                "{tag}: collected payload size changed"
            );
            assert_eq!(
                run.report.restore_stats.blocks_allocated,
                seq.report.restore_stats.blocks_allocated,
                "{tag}: restore allocation count changed"
            );
            let t = &run.report.transfer;
            assert_eq!(
                t.raw_payload_bytes, run.report.image_bytes,
                "{tag}: every image byte crosses the wire exactly once"
            );
            match codec {
                WireCodec::V2 => {
                    assert_eq!(t.chunks_compressed, 0, "{tag}: v2 never compresses");
                    assert_eq!(t.raw_payload_bytes, t.wire_payload_bytes, "{tag}");
                }
                WireCodec::V3 => {
                    assert!(
                        t.wire_payload_bytes < t.raw_payload_bytes,
                        "{tag}: compression must shrink the image payload \
                         ({} wire vs {} raw)",
                        t.wire_payload_bytes,
                        t.raw_payload_bytes
                    );
                    assert!(t.chunks_compressed > 0, "{tag}: no chunk compressed");
                }
            }
            if workers > 1 {
                let shards = run
                    .report
                    .shards
                    .as_ref()
                    .expect("forced multi-worker runs report collect shards");
                assert_eq!(shards.workers(), workers as u64, "{tag}");
            }
        }
    }
}
