//! Cross-phase observability invariants.
//!
//! The collection and restoration sides of a migration walk the same MSR
//! graph, so their counters must agree exactly; the trace of a
//! deterministic workload must be identical (modulo timestamps) across
//! runs; and the Chrome trace-event export must be well-formed JSON.

use hpm_arch::Architecture;
use hpm_migrate::{run_migrating, run_migrating_traced, MigrationRun, Trigger};
use hpm_net::NetworkModel;
use hpm_obs::{chrome_trace_json, Tracer};
use hpm_workloads::{BitonicSort, Linpack, TestPointer};

fn migrate<P, F>(make: F, at: u64) -> MigrationRun
where
    P: hpm_migrate::MigratableProgram,
    F: Fn() -> P,
{
    run_migrating(
        make,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(at),
    )
    .expect("migration succeeds")
}

/// What collection wrote, restoration must read: same block count, same
/// pointer-tag breakdown, same payload bytes.
fn assert_collect_restore_parity(run: &MigrationRun, label: &str) {
    let c = &run.report.collect_stats;
    let r = &run.report.restore_stats;
    assert_eq!(c.blocks_saved, r.blocks_restored, "{label}: block count");
    assert_eq!(c.ptr_null, r.ptr_null, "{label}: TAG_PTR_NULL parity");
    assert_eq!(c.ptr_ref, r.ptr_ref, "{label}: TAG_PTR_REF parity");
    assert_eq!(c.ptr_new, r.ptr_new, "{label}: TAG_PTR_NEW parity");
    assert_eq!(c.bytes_out, r.bytes_in, "{label}: payload bytes");
    // The wire saw exactly one message: the framed image.
    assert_eq!(run.report.transfer.messages_sent, 1, "{label}");
    assert_eq!(
        run.report.transfer.bytes_sent, run.report.image_bytes,
        "{label}"
    );
    assert_eq!(
        run.report.modeled_tx_nanos(),
        run.report.transfer.modeled_tx_nanos,
        "{label}"
    );
}

#[test]
fn test_pointer_collect_restore_parity() {
    let run = migrate(TestPointer::new, 8);
    assert_collect_restore_parity(&run, "test_pointer");
    // The pointer workload exercises every stream tag.
    assert!(run.report.collect_stats.ptr_null > 0);
    assert!(run.report.collect_stats.ptr_ref > 0);
    assert!(run.report.collect_stats.ptr_new > 0);
}

#[test]
fn linpack_collect_restore_parity() {
    let run = migrate(|| Linpack::full(120), 60);
    assert_collect_restore_parity(&run, "linpack");
}

#[test]
fn bitonic_collect_restore_parity() {
    let run = migrate(|| BitonicSort::new(2_000), 1_000);
    assert_collect_restore_parity(&run, "bitonic");
}

fn traced_run() -> MigrationRun {
    let tracer = Tracer::new();
    run_migrating_traced(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        &tracer,
    )
    .expect("traced migration succeeds")
}

#[test]
fn traced_run_has_nested_phase_spans() {
    let run = traced_run();
    let log = run.report.trace.expect("trace attached");
    assert_eq!(log.dropped, 0, "small workload must fit the ring buffer");
    // The collect phase contains MSRLT address searches; restoration ran.
    assert!(
        log.has_nested("collect", "msrlt.search"),
        "collect ∋ msrlt.search"
    );
    assert!(log.has_nested("tx", "net.send"), "tx ∋ net.send");
    assert!(log
        .spans()
        .iter()
        .any(|s| s.name == "restore" && s.end_ns != u64::MAX));
    // Per-phase counter snapshots ride along.
    let groups: Vec<&str> = log.stats.iter().map(|(g, _)| g.as_str()).collect();
    for g in ["collect", "msrlt.src", "net", "restore", "msrlt.dst"] {
        assert!(
            groups.contains(&g),
            "missing stats group {g}, have {groups:?}"
        );
    }
}

#[test]
fn identical_runs_trace_identically() {
    let a = traced_run().report.trace.unwrap();
    let b = traced_run().report.trace.unwrap();
    assert_eq!(a.shape(), b.shape(), "trace shape must be deterministic");
    assert_eq!(a.tracks, b.tracks);
}

#[test]
fn untraced_run_attaches_no_trace() {
    let run = migrate(TestPointer::new, 8);
    assert!(run.report.trace.is_none());
}

/// Minimal string-aware JSON well-formedness check: brackets and braces
/// balance outside string literals, and the document is non-trivial.
fn assert_balanced_json(s: &str) {
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in s.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
            }
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(s.len() > 2);
}

#[test]
fn chrome_export_is_wellformed_and_complete() {
    let run = traced_run();
    let log = run.report.trace.unwrap();
    let json = chrome_trace_json(&log);
    assert_balanced_json(&json);
    for needle in [
        "\"traceEvents\"",
        "\"collect\"",
        "\"msrlt.search\"",
        "\"restore\"",
        "\"stats.collect\"",
        "\"stats.net\"",
    ] {
        assert!(json.contains(needle), "export missing {needle}");
    }
}
