//! Flight-recorder acceptance: a forced migration failure must produce a
//! deterministic post-mortem naming the exact chunk, attempt count, and
//! phase — byte-identical across reruns of the same fault-plan seed —
//! and the success paths must carry their telemetry without perturbing
//! results.

use hpm_arch::Architecture;
use hpm_migrate::{
    run_migrating_planned_recorded, run_migrating_resilient_recorded, run_straight, FallbackPolicy,
    MigError, MigrationPlan, PipelineConfig, RecoveryPolicy, Trigger,
};
use hpm_net::{FaultPlan, NetworkModel, WireCodec};
use hpm_obs::{FlightDump, FlightRecorder};
use hpm_workloads::{diff_results, TestPointer};
use std::time::Duration;

/// A plan that injects nothing except a dead forward path after the
/// first distinct chunk — every retry is doomed, so the sender must
/// exhaust its budget deterministically (ARQ runs on the modeled clock).
fn dead_link_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xF11_6487,
        drop_per_mille: 0,
        corrupt_per_mille: 0,
        duplicate_per_mille: 0,
        reorder_per_mille: 0,
        delay_per_mille: 0,
        disconnect_at: Some(1),
    }
}

/// Chunks larger than the whole TestPointer image: the collector never
/// blocks on the wire thread, so collection always runs to completion
/// and its track is a pure function of the workload.
fn big_chunk_cfg() -> PipelineConfig {
    PipelineConfig {
        chunk_bytes: 65536,
        pace: false,
        pace_scale: 0.0,
        ..PipelineConfig::default()
    }
}

fn run_doomed(recorder: &FlightRecorder) -> MigError {
    run_migrating_resilient_recorded(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        big_chunk_cfg(),
        dead_link_plan(),
        RecoveryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            fallback: FallbackPolicy::Fail,
        },
        recorder,
    )
    .expect_err("a dead link with Fail policy must error")
}

fn assert_dump_names_the_failure(dump: &FlightDump) {
    // The exact chunk and attempt count, from the ARQ sender track.
    let exhausted = dump.events_of("retries.exhausted");
    assert_eq!(exhausted.len(), 1, "exactly one exhaustion event");
    let (track, ev) = exhausted[0];
    assert_eq!(track, "arq.tx");
    let arg = |k: &str| {
        ev.args
            .iter()
            .find(|(n, _)| *n == k)
            .unwrap_or_else(|| panic!("retries.exhausted missing arg {k}"))
            .1
    };
    assert_eq!(arg("chunk"), 1, "the black-holed chunk is named");
    assert_eq!(arg("attempts"), 4, "max_retries=3 means 4 attempts");
    // The phase the failure happened in, from the driver track: collection
    // completed (big chunks mean the collector never blocks on the wire),
    // then the attempt died in transit.
    assert!(
        !dump.events_of("phase.collect").is_empty(),
        "driver track records the collect phase"
    );
    let failed = dump.events_of("attempt.failed");
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].0, "driver");
    let note = failed[0].1.note.as_deref().unwrap_or("");
    assert!(
        note.contains("retries exhausted"),
        "failure note carries the error: {note}"
    );
}

#[test]
fn forced_failure_dump_is_deterministic_and_names_the_chunk() {
    let rec_a = FlightRecorder::new();
    let err_a = run_doomed(&rec_a);
    let dump_a = rec_a.dump();

    let rec_b = FlightRecorder::new();
    let err_b = run_doomed(&rec_b);
    let dump_b = rec_b.dump();

    match &err_a {
        MigError::Net(m) => assert!(m.contains("retries exhausted"), "{m}"),
        other => panic!("expected Net error, got {other}"),
    }
    assert_eq!(err_a, err_b, "the failure itself is reproducible");

    assert_dump_names_the_failure(&dump_a);
    assert_eq!(
        dump_a.to_jsonl(),
        dump_b.to_jsonl(),
        "flight dump must be byte-identical across reruns of one seed"
    );
}

#[test]
fn source_resume_fallback_attaches_the_dump_to_the_report() {
    let recorder = FlightRecorder::new();
    let run = run_migrating_resilient_recorded(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        big_chunk_cfg(),
        dead_link_plan(),
        RecoveryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            fallback: FallbackPolicy::SourceResume,
        },
        &recorder,
    )
    .expect("SourceResume turns the dead link into a local resume");

    let mut p = TestPointer::new();
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    assert!(
        diff_results(&expect, &run.results).is_none(),
        "fallback still computes the right answer"
    );
    let recovery = run.report.recovery.expect("resilient runs carry stats");
    assert!(recovery.fallback_taken);
    let dump = run.report.flight.as_ref().expect("fallback attaches dump");
    assert_dump_names_the_failure(dump);
}

#[test]
fn disabled_recorder_stays_silent_and_changes_nothing() {
    let recorder = FlightRecorder::disabled();
    let err = run_doomed(&recorder);
    match err {
        MigError::Net(m) => assert!(m.contains("retries exhausted"), "{m}"),
        other => panic!("expected Net error, got {other}"),
    }
    let dump = recorder.dump();
    assert!(
        dump.tracks.iter().all(|t| t.events.is_empty()),
        "a disabled recorder records nothing"
    );
}

#[test]
fn parallel_driver_reports_shards_and_collect_events() {
    // Forced plan: the workload sits below the adaptive planner's byte
    // cutoff, and this test is about shard reporting, not the planner.
    let recorder = FlightRecorder::new();
    let run = run_migrating_planned_recorded(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        MigrationPlan::forced(4, WireCodec::V2),
        &recorder,
    )
    .expect("parallel migration succeeds");

    let shards = run.report.shards.expect("parallel runs carry ShardReport");
    assert!(shards.workers() >= 1);
    assert!(shards.imbalance() >= 1.0, "imbalance is max/mean");
    assert_eq!(
        shards.shard_bytes.iter().sum::<u64>(),
        run.report.memory_bytes,
        "shard bytes account for the whole payload"
    );

    let dump = recorder.dump();
    for kind in ["claim.start", "shard.encoded", "splice.done"] {
        let evs = dump.events_of(kind);
        assert!(!evs.is_empty(), "collect track records {kind}");
        assert!(evs.iter().all(|(t, _)| *t == "collect"));
    }
}
