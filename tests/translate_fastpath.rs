//! Property sweep for the bulk same-format translation fast path.
//!
//! The wire format is fixed XDR, so bulk copying is a pure encoder/
//! decoder optimization: across **every** architecture preset pair, the
//! bulk path must produce a payload bit-identical to the per-element
//! XDR path, and both restorer modes must rebuild identical memory.

use hpm::arch::Architecture;
use hpm::core::{Collector, Msrlt, Restorer, TranslationMode};
use hpm::memory::AddressSpace;
use hpm::types::Field;

fn presets() -> [Architecture; 4] {
    [
        Architecture::dec5000(),
        Architecture::sparc20(),
        Architecture::ultra5(),
        Architecture::x86_64_sim(),
    ]
}

/// Build "the same program image" on `arch`: every scalar family plus
/// pointers, arrays, and a short heap list, with deterministic values.
/// Returns (space, msrlt, roots-in-save-order).
fn program(arch: Architecture) -> (AddressSpace, Msrlt, Vec<u64>) {
    let mut space = AddressSpace::new(arch);
    let node = space.types_mut().declare_struct("node");
    let pnode = space.types_mut().pointer_to(node);
    let int = space.types_mut().int();
    let dbl = space.types_mut().double();
    let flt = space.types_mut().float();
    let ch = space.types_mut().char_();
    space
        .types_mut()
        .define_struct(
            node,
            vec![
                Field::new("d", dbl),
                Field::new("f", flt),
                Field::new("i", int),
                Field::new("c", ch),
                Field::new("next", pnode),
            ],
        )
        .unwrap();

    let ivec = space.define_global("ivec", int, 40).unwrap();
    let dmat = space.define_global("dmat", dbl, 25).unwrap();
    let text = space.define_global("text", ch, 12).unwrap();
    let head = space.define_global("head", pnode, 1).unwrap();
    for k in 0..40 {
        let a = space.elem_addr(ivec, k).unwrap();
        space.store_int(a, (k as i64) * 7 - 100).unwrap();
    }
    for k in 0..25 {
        let a = space.elem_addr(dmat, k).unwrap();
        space.store_f64(a, 0.5 + k as f64 * 1.25).unwrap();
    }
    for k in 0..12 {
        let a = space.elem_addr(text, k).unwrap();
        space.store_int(a, 32 + k as i64).unwrap();
    }
    // head → n0 → n1 → n2 → NULL
    let mut prev = 0u64;
    let mut first = 0u64;
    for k in 0..3 {
        let n = space.malloc(node, 1).unwrap();
        let d = space.elem_addr(n, 0).unwrap();
        space.store_f64(d, k as f64 + 0.125).unwrap();
        let f = space.elem_addr(n, 1).unwrap();
        space.store_f64(f, k as f64 * 2.5).unwrap();
        let i = space.elem_addr(n, 2).unwrap();
        space.store_int(i, 1000 + k as i64).unwrap();
        let c = space.elem_addr(n, 3).unwrap();
        space.store_int(c, 65 + k as i64).unwrap();
        if prev != 0 {
            let next = space.elem_addr(prev, 4).unwrap();
            space.store_ptr(next, n).unwrap();
        } else {
            first = n;
        }
        prev = n;
    }
    space.store_ptr(head, first).unwrap();

    let mut msrlt = Msrlt::new();
    for info in space.block_infos() {
        msrlt.register(&info);
    }
    (space, msrlt, vec![ivec, dmat, text, head])
}

fn collect_with(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
    roots: &[u64],
    mode: TranslationMode,
) -> Vec<u8> {
    let mut c = Collector::new(space, msrlt).with_translation(mode);
    for &r in roots {
        c.save_variable(r).unwrap();
    }
    c.finish().0
}

#[test]
fn bulk_payload_is_bit_identical_on_every_preset() {
    for arch in presets() {
        let (mut space, mut msrlt, roots) = program(arch.clone());
        let bulk = collect_with(&mut space, &mut msrlt, &roots, TranslationMode::Bulk);
        let per = collect_with(&mut space, &mut msrlt, &roots, TranslationMode::PerElement);
        assert_eq!(
            bulk, per,
            "bulk and per-element payloads diverge on {}",
            arch.name
        );
    }
}

#[test]
fn both_restorer_modes_agree_on_every_preset_pair() {
    for src_arch in presets() {
        let (mut src, mut src_lt, roots) = program(src_arch.clone());
        let payload = collect_with(&mut src, &mut src_lt, &roots, TranslationMode::Bulk);
        for dst_arch in presets() {
            let mut rebuilt = Vec::new();
            for mode in [TranslationMode::Bulk, TranslationMode::PerElement] {
                let (mut dst, mut dst_lt, droots) = program(dst_arch.clone());
                // Fresh image: the receiving side starts with zeroed
                // globals and no heap, exactly like a real resume.
                let (mut blank, mut blank_lt, broots) = blank_program(dst_arch.clone());
                let mut r =
                    Restorer::new(&mut blank, &mut blank_lt, &payload).with_translation(mode);
                for &b in &broots {
                    r.restore_variable(b).unwrap();
                }
                r.finish().unwrap();
                // Canonical comparison: re-collect the restored space
                // per-element and check it against the seeded original.
                let canon = collect_with(
                    &mut blank,
                    &mut blank_lt,
                    &broots,
                    TranslationMode::PerElement,
                );
                let want =
                    collect_with(&mut dst, &mut dst_lt, &droots, TranslationMode::PerElement);
                assert_eq!(
                    canon, want,
                    "restore {:?} on {} from {} lost data",
                    mode, dst_arch.name, src_arch.name
                );
                rebuilt.push(canon);
            }
            assert_eq!(rebuilt[0], rebuilt[1]);
        }
    }
}

/// Same types and globals as [`program`], but no values and no heap —
/// the destination-side image before restoration.
fn blank_program(arch: Architecture) -> (AddressSpace, Msrlt, Vec<u64>) {
    let mut space = AddressSpace::new(arch);
    let node = space.types_mut().declare_struct("node");
    let pnode = space.types_mut().pointer_to(node);
    let int = space.types_mut().int();
    let dbl = space.types_mut().double();
    let flt = space.types_mut().float();
    let ch = space.types_mut().char_();
    space
        .types_mut()
        .define_struct(
            node,
            vec![
                Field::new("d", dbl),
                Field::new("f", flt),
                Field::new("i", int),
                Field::new("c", ch),
                Field::new("next", pnode),
            ],
        )
        .unwrap();
    let ivec = space.define_global("ivec", int, 40).unwrap();
    let dmat = space.define_global("dmat", dbl, 25).unwrap();
    let text = space.define_global("text", ch, 12).unwrap();
    let head = space.define_global("head", pnode, 1).unwrap();
    let mut msrlt = Msrlt::new();
    for info in space.block_infos() {
        msrlt.register(&info);
    }
    (space, msrlt, vec![ivec, dmat, text, head])
}
