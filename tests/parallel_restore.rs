//! Sharded parallel restoration must be invisible at the migration
//! level: resuming a frozen image with restore workers 1, 2, and 4
//! answers exactly like the sequential resume — same results, same
//! restore accounting — across the paper workloads and a heterogeneous
//! preset pair. (The byte-level digest identity of the restored address
//! space is pinned by the unit tests in `hpm_core::restore_parallel`.)

use hpm::arch::Architecture;
use hpm::migrate::{
    resume_from_image, resume_from_image_parallel, run_to_migration, MigratableProgram, Trigger,
};
use hpm::workloads::{BitonicSort, Linpack, TestPointer};

fn check<P: MigratableProgram>(
    name: &str,
    make: impl Fn() -> P,
    src: Architecture,
    dst: Architecture,
    trigger: u64,
) {
    let mut p = make();
    let mut frozen = run_to_migration(&mut p, src, Trigger::AtPollCount(trigger)).unwrap();
    let image = frozen.to_image().unwrap();

    let mut seq_prog = make();
    let (seq_results, _, seq_stats, _) =
        resume_from_image(&mut seq_prog, dst.clone(), &image).unwrap();

    for workers in [1usize, 2, 4] {
        let mut par_prog = make();
        let ((results, _, stats, _), _shards) =
            resume_from_image_parallel(&mut par_prog, dst.clone(), &image, workers).unwrap();
        assert_eq!(
            results, seq_results,
            "{name}: {workers}-worker restore answers diverge"
        );
        assert_eq!(
            stats.blocks_restored, seq_stats.blocks_restored,
            "{name}: {workers} workers"
        );
        assert_eq!(
            stats.blocks_allocated, seq_stats.blocks_allocated,
            "{name}: {workers} workers"
        );
        assert_eq!(
            stats.scalars_decoded, seq_stats.scalars_decoded,
            "{name}: {workers} workers"
        );
        assert_eq!(
            stats.ptr_new, seq_stats.ptr_new,
            "{name}: {workers} workers"
        );
        assert_eq!(
            stats.ptr_ref, seq_stats.ptr_ref,
            "{name}: {workers} workers"
        );
        assert_eq!(
            stats.bytes_in, seq_stats.bytes_in,
            "{name}: {workers} workers"
        );
    }
}

#[test]
fn test_pointer_parallel_restore_equals_sequential() {
    check(
        "test_pointer",
        TestPointer::new,
        Architecture::ultra5(),
        Architecture::dec5000(),
        8,
    );
}

#[test]
fn linpack_parallel_restore_equals_sequential() {
    check(
        "linpack",
        || Linpack::truncated(300, 2),
        Architecture::ultra5(),
        Architecture::x86_64_sim(),
        1,
    );
}

#[test]
fn bitonic_parallel_restore_equals_sequential() {
    check(
        "bitonic",
        || BitonicSort::new(5_000),
        Architecture::dec5000(),
        Architecture::sparc20(),
        5_000,
    );
}
