//! `HPM_FLIGHT_DUMP` is the CI hook: when a driver errors (or falls back)
//! with the variable set, the flight dump is written there as JSONL so
//! the workflow can upload it as an artifact. This lives in its own test
//! binary because environment variables are process-global.

use hpm_arch::Architecture;
use hpm_migrate::{
    run_migrating_resilient, FallbackPolicy, PipelineConfig, RecoveryPolicy, Trigger,
};
use hpm_net::{FaultPlan, NetworkModel};
use hpm_workloads::TestPointer;
use std::time::Duration;

#[test]
fn driver_error_writes_the_dump_where_ci_expects_it() {
    let mut path = std::env::temp_dir();
    path.push(format!("hpm_flight_dump_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("HPM_FLIGHT_DUMP", &path);

    let err = run_migrating_resilient(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        PipelineConfig {
            chunk_bytes: 65536,
            pace: false,
            pace_scale: 0.0,
            ..PipelineConfig::default()
        },
        FaultPlan {
            seed: 0xDEAD11,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            delay_per_mille: 0,
            disconnect_at: Some(1),
        },
        RecoveryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(1),
            fallback: FallbackPolicy::Fail,
        },
    )
    .expect_err("dead link with Fail policy errors");
    assert!(err.to_string().contains("retries exhausted"), "{err}");

    let body = std::fs::read_to_string(&path).expect("dump file written on driver error");
    std::env::remove_var("HPM_FLIGHT_DUMP");
    assert!(
        body.contains("\"kind\":\"retries.exhausted\""),
        "dump names the exhaustion event:\n{body}"
    );
    assert!(
        body.contains("\"track\":\"arq.tx\"") && body.contains("\"track\":\"driver\""),
        "dump carries the per-component tracks:\n{body}"
    );
    for line in body.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL: every line is one object: {line}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
