//! Integration test: the §4.2 complexity model, verified on the
//! instrumented counters rather than noisy wall clocks.
//!
//! `Collect = MSRLT_search + Encode_and_Copy` — the search term is
//! O(n log n) over the n live MSR nodes; the copy term is O(ΣDᵢ).
//! `Restore = MSRLT_update + Decode_and_Copy` — the update term is O(n).

use hpm::arch::Architecture;
use hpm::core::{Msrlt, SearchStrategy};
use hpm::migrate::{resume_from_image, run_to_migration, MigratedSource, Trigger};
use hpm::workloads::{BitonicSort, Linpack};

fn freeze_bitonic(n: u64) -> MigratedSource {
    let mut p = BitonicSort::new(n);
    run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap()
}

fn freeze_linpack(n: u64) -> MigratedSource {
    let mut p = Linpack::truncated(n, 2);
    run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(1)).unwrap()
}

#[test]
fn bitonic_search_count_is_linear_in_nodes() {
    // One MSRLT search per pointer chased; the tree has ~n nodes each
    // with 2 child pointers plus the root/globals.
    let n = 4_000;
    let mut src = freeze_bitonic(n);
    src.proc.msrlt.reset_stats();
    let (_, _, stats) = src.collect().unwrap();
    let s = src.proc.msrlt.stats();
    assert!(stats.blocks_saved >= n - 1);
    let per_node = s.searches as f64 / stats.blocks_saved as f64;
    assert!(
        per_node > 0.8 && per_node < 3.0,
        "searches per node should be O(1): {per_node} ({s:?})"
    );
}

/// Collect a frozen bitonic tree under `strategy` (cache disabled, so
/// the counters measure the raw search structure) and return the
/// steps-per-search ratio.
fn steps_per_search(n: u64, strategy: SearchStrategy) -> f64 {
    let mut src = freeze_bitonic(n);
    // Rebuild the MSRLT under the requested strategy, ids preserved.
    let mut m = Msrlt::with_strategy(strategy);
    for e in src.proc.msrlt.live_entries() {
        m.register_at(e.id, e.addr, e.size, e.ty, e.count);
    }
    m.set_cache_enabled(false);
    src.proc.msrlt = m;
    src.proc.msrlt.reset_stats();
    let _ = src.collect().unwrap();
    let s = src.proc.msrlt.stats();
    s.search_steps as f64 / s.searches as f64
}

#[test]
fn binary_fallback_search_steps_grow_logarithmically() {
    // Under the fallback strategy, steps/search ≈ log2(n): quadrupling
    // n adds ~2 comparisons.
    let per_search: Vec<f64> = [2_000u64, 8_000, 32_000]
        .iter()
        .map(|&n| steps_per_search(n, SearchStrategy::Binary))
        .collect();
    let d1 = per_search[1] - per_search[0];
    let d2 = per_search[2] - per_search[1];
    assert!(
        d1 > 1.0 && d1 < 3.5 && d2 > 1.0 && d2 < 3.5,
        "each 4x in n should add ~log2(4)=2 steps per search: {per_search:?}"
    );
}

#[test]
fn page_index_search_steps_are_constant() {
    // Under the default page index, every resolving lookup is one page
    // walk: steps/search stays ≈ 1 no matter how many nodes are live —
    // the tentpole O(n log n) → O(n) collection claim.
    let per_search: Vec<f64> = [2_000u64, 8_000, 32_000]
        .iter()
        .map(|&n| steps_per_search(n, SearchStrategy::PageIndex))
        .collect();
    for (i, v) in per_search.iter().enumerate() {
        assert!(*v <= 1.05, "page walk is O(1), got {v} at size {i}");
    }
    let growth = per_search[2] - per_search[0];
    assert!(
        growth.abs() < 0.1,
        "16x more nodes must not add search steps: {per_search:?}"
    );
}

#[test]
fn linpack_search_count_constant_as_size_grows() {
    // §4.2: "Since the number of MSR nodes does not increase when the
    // problem size scales up, the MSRLT search time … held constant."
    let mut counts = Vec::new();
    let mut bytes = Vec::new();
    for n in [100u64, 200, 400] {
        let mut src = freeze_linpack(n);
        src.proc.msrlt.reset_stats();
        let (payload, _, _) = src.collect().unwrap();
        counts.push(src.proc.msrlt.stats().searches);
        bytes.push(payload.len() as f64);
    }
    assert_eq!(
        counts[0], counts[2],
        "search count independent of matrix order: {counts:?}"
    );
    // Payload scales ~quadratically in n (matrix bytes dominate).
    let r1 = bytes[1] / bytes[0];
    let r2 = bytes[2] / bytes[1];
    assert!(r1 > 3.5 && r1 < 4.5, "{bytes:?}");
    assert!(r2 > 3.5 && r2 < 4.5, "{bytes:?}");
}

#[test]
fn restore_updates_are_linear_and_search_free() {
    // Restoration never searches: blocks are found/created by id.
    let n = 4_000;
    let mut src = freeze_bitonic(n);
    let image = src.to_image().unwrap();
    let mut dst_prog = BitonicSort::new(n);
    let (_, dst, rstats, _) =
        resume_from_image(&mut dst_prog, Architecture::ultra5(), &image).unwrap();
    let s = dst.msrlt.stats();
    assert!(rstats.blocks_allocated >= n - 1, "{rstats:?}");
    // Searches on the destination come only from restore_variable root
    // lookups and resumed execution — far fewer than one per block.
    assert!(
        s.searches < rstats.blocks_restored / 2,
        "restoration must not search per block: {} searches for {} blocks",
        s.searches,
        rstats.blocks_restored
    );
}

#[test]
fn collect_equals_restore_payload() {
    // Conservation: bytes out == bytes in, blocks out == blocks in.
    let n = 1_000;
    let mut src = freeze_bitonic(n);
    let (payload, _, cs) = src.collect().unwrap();
    let image = src.to_image().unwrap();
    let mut dst_prog = BitonicSort::new(n);
    let (_, _, rs, _) = resume_from_image(&mut dst_prog, Architecture::sparc20(), &image).unwrap();
    assert_eq!(rs.bytes_in, payload.len() as u64);
    assert_eq!(rs.blocks_restored, cs.blocks_saved);
    assert_eq!(rs.ptr_null, cs.ptr_null);
    assert_eq!(rs.ptr_ref, cs.ptr_ref);
    assert_eq!(rs.ptr_new, cs.ptr_new);
    assert_eq!(rs.scalars_decoded, cs.scalars_encoded);
}
