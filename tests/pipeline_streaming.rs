//! Integration tests for the pipelined migration path: chunked images
//! are byte-identical to monolithic ones, streamed restoration produces
//! the same results while overlapping with collection and transmission,
//! chunk-level failures carry their chunk index, and the MSRLT
//! translation cache cuts search work.

use hpm::arch::Architecture;
use hpm::core::image::unframe_image;
use hpm::core::stream::VecChunks;
use hpm::core::ChunkPayload;
use hpm::migrate::{
    run_migrating_pipelined, run_straight, run_to_migration, ExecutionState, MigCtx, MigError,
    MigratableProgram, MigratedSource, PipelineConfig, Process, Trigger,
};
use hpm::net::NetworkModel;
use hpm::workloads::{diff_results, BitonicSort, Linpack, TestPointer};
use std::time::Duration;

fn freeze_test_pointer() -> MigratedSource {
    let mut p = TestPointer::new();
    run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(8)).unwrap()
}

/// Concatenated streamed chunks must equal the monolithic image exactly,
/// for every chunk size — the pipeline changes delivery, not content.
fn assert_byte_identity(src: &mut MigratedSource, label: &str) {
    let whole = src.to_image().unwrap();
    for chunk_bytes in [16usize, 64, 4096, 1 << 20] {
        let (chunks, stats) = src.to_chunks(chunk_bytes).unwrap();
        let cat: Vec<u8> = chunks.concat();
        assert_eq!(
            cat, whole,
            "{label}: chunked image (chunk_bytes={chunk_bytes}) diverges from monolithic"
        );
        assert_eq!(stats.bytes_out + chunks[0].len() as u64, whole.len() as u64);
        // Every chunk stays XDR-aligned, so any cut point is decodable.
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.len() % 4, 0, "{label}: chunk {i} not 4-byte aligned");
        }
        if chunk_bytes == 16 {
            assert!(
                chunks.len() > 2,
                "{label}: tiny chunks must split the image"
            );
        }
    }
}

#[test]
fn chunked_image_is_byte_identical_test_pointer() {
    let mut src = freeze_test_pointer();
    assert_byte_identity(&mut src, "test_pointer");
}

#[test]
fn chunked_image_is_byte_identical_linpack() {
    let mut p = Linpack::truncated(120, 4);
    let mut src =
        run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(2)).unwrap();
    assert_byte_identity(&mut src, "linpack");
}

#[test]
fn chunked_image_is_byte_identical_bitonic() {
    let n = 5_000;
    let mut p = BitonicSort::new(n);
    let mut src =
        run_to_migration(&mut p, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
    assert_byte_identity(&mut src, "bitonic");
}

/// The pipelined path must produce the same results as an unmigrated run
/// and actually overlap the three phases: on a paced 10 Mb/s link the
/// end-to-end wall time comes in under the serial Collect+Tx+Restore sum.
#[test]
fn pipelined_migration_matches_straight_run_and_overlaps() {
    let n = 20_000u64;
    let mut p = BitonicSort::new(n);
    let (expect, _) = run_straight(&mut p, Architecture::ultra5()).unwrap();

    let run = run_migrating_pipelined(
        move || BitonicSort::new(n),
        Architecture::ultra5(),
        Architecture::ultra5(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(n),
        PipelineConfig::default(),
    )
    .unwrap();
    assert!(
        diff_results(&expect, &run.results).is_none(),
        "pipelined results diverge from the unmigrated run"
    );

    let p = run.report.pipeline.expect("pipelined run carries stats");
    assert!(p.chunks >= 3, "expected prefix + payload + terminator");
    assert!(p.tx_time > Duration::ZERO);
    assert!(
        p.e2e_time < p.serial_time(),
        "no overlap: e2e {:?} vs serial {:?}",
        p.e2e_time,
        p.serial_time()
    );
    assert!(
        p.overlap_ratio() > 0.0,
        "overlap_ratio must be positive, got {}",
        p.overlap_ratio()
    );
    // The report's stat groups include the pipeline group.
    assert!(run
        .report
        .stat_groups()
        .iter()
        .any(|(name, _)| name == "pipeline"));
}

/// Losing a chunk mid-stream must fail loudly, naming the chunk in which
/// the payload ran dry — not silently mis-restore.
#[test]
fn lost_chunk_is_reported_with_its_index() {
    let mut src = freeze_test_pointer();
    let (mut chunks, _) = src.to_chunks(64).unwrap();
    assert!(chunks.len() >= 3, "need several chunks to drop one");
    let prefix = chunks.remove(0);
    chunks.pop(); // lose the final payload chunk

    let (header, exec_bytes, leftover) = unframe_image(&prefix).unwrap();
    assert_eq!(header.program, "test_pointer");
    let exec = ExecutionState::decode(&exec_bytes).unwrap();

    let mut dst_prog = TestPointer::new();
    let mut proc = Process::new(dst_prog.name(), Architecture::sparc20());
    dst_prog.setup(&mut proc).unwrap();
    let cp = ChunkPayload::with_initial(Box::new(VecChunks::new(chunks)), leftover);
    let mut ctx = MigCtx::new_resume_streaming(&mut proc, exec, cp);
    let err = dst_prog.run(&mut ctx).unwrap_err();
    match err {
        MigError::Protocol(m) | MigError::Core(m) => {
            assert!(
                m.contains("truncated in chunk"),
                "error must name the chunk: {m}"
            );
        }
        other => panic!("expected a truncation error, got {other:?}"),
    }
}

/// The MSRLT translation cache: on repeated collections of a frozen
/// test_pointer source, most address→id lookups hit the cache, and the
/// binary-search step count drops strictly below the uncached baseline.
#[test]
fn msrlt_cache_hits_and_cuts_search_steps() {
    const ROUNDS: usize = 3;

    let mut cached = freeze_test_pointer();
    assert!(cached.proc.msrlt.cache_enabled());
    cached.proc.msrlt.reset_stats();
    for _ in 0..ROUNDS {
        cached.collect().unwrap();
    }
    let cs = cached.proc.msrlt.stats();

    let mut plain = freeze_test_pointer();
    plain.proc.msrlt.set_cache_enabled(false);
    plain.proc.msrlt.reset_stats();
    for _ in 0..ROUNDS {
        plain.collect().unwrap();
    }
    let ps = plain.proc.msrlt.stats();

    assert_eq!(ps.cache_hits, 0, "disabled cache must never hit");
    assert_eq!(cs.searches, ps.searches, "lookup counts must agree");
    assert!(
        cs.cache_hit_rate() > 0.5,
        "hit rate {:.3} not above 50% (hits {}, misses {})",
        cs.cache_hit_rate(),
        cs.cache_hits,
        cs.cache_misses
    );
    assert!(
        cs.search_steps < ps.search_steps,
        "cache must strictly reduce steps: cached {} vs uncached {}",
        cs.search_steps,
        ps.search_steps
    );
}
