//! The CI lint gate, as a test: the seeded-unsafe corpus must trip
//! exactly its expected codes, the three paper workloads must audit
//! clean, and the analyzer's output must be deterministic.

use hpm_arch::Architecture;
use hpm_lint::{audit_table, lint_source, registry_report, LintCode, Severity};
use hpm_migrate::{run_to_migration, MigratedSource, Trigger};
use hpm_workloads::{BitonicSort, Linpack, TestPointer};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates/lint/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    files
}

fn expected_codes(src: &str) -> Vec<LintCode> {
    src.lines()
        .filter_map(|l| l.trim().strip_prefix("// expect:"))
        .map(|rest| LintCode::parse(rest.trim()).expect("directive names a known code"))
        .collect()
}

/// Every corpus program trips exactly its expected lint codes: each
/// declared code fires, and nothing at deny severity fires undeclared.
#[test]
fn corpus_programs_trip_their_expected_codes() {
    let files = corpus_files();
    assert!(files.len() >= 14, "corpus shrank: {} files", files.len());
    let mut saw_clean_control = false;
    for path in files {
        let unit = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let expected = expected_codes(&src);
        let report = lint_source(&unit, &src);
        for code in &expected {
            assert!(
                report.has_code(*code),
                "{unit}: expected {} did not fire\n{report:?}",
                code.code()
            );
        }
        for d in report.diagnostics() {
            assert!(
                d.severity < Severity::Warning || expected.contains(&d.code),
                "{unit}: unexpected {} ({})",
                d.code.code(),
                d.message
            );
        }
        if expected.is_empty() {
            saw_clean_control = true;
            assert!(!report.denies(Severity::Warning), "{unit}: {report:?}");
        }
    }
    assert!(saw_clean_control, "corpus lost its clean control file");
}

fn audit_clean(label: &str, src: &mut MigratedSource) {
    let (findings, _stats) = src.preflight_audit().expect("registry audit runs");
    let mut report = registry_report(&findings, label);
    report.merge(audit_table(src.proc.space.types(), label));
    report.finish();
    assert!(
        !report.denies(Severity::Warning),
        "{label} must lint clean:\n{}",
        report.render_human()
    );
}

/// The three paper workloads, frozen at their migration points, carry
/// no deny-level registry or portability findings.
#[test]
fn paper_workloads_lint_clean() {
    let mut tp = TestPointer::new();
    let mut src =
        run_to_migration(&mut tp, Architecture::ultra5(), Trigger::AtPollCount(8)).unwrap();
    audit_clean("test_pointer", &mut src);

    let mut lp = Linpack::truncated(120, 4);
    let mut src =
        run_to_migration(&mut lp, Architecture::ultra5(), Trigger::AtPollCount(2)).unwrap();
    audit_clean("linpack", &mut src);

    let n = 2_000;
    let mut bt = BitonicSort::new(n);
    let mut src =
        run_to_migration(&mut bt, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
    audit_clean("bitonic", &mut src);
}

/// Two runs over the corpus produce byte-identical JSONL — the property
/// that makes findings diffable across CI runs.
#[test]
fn analyzer_output_is_deterministic() {
    let run = || {
        let mut out = String::new();
        for path in corpus_files() {
            let unit = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).unwrap();
            out.push_str(&lint_source(&unit, &src).render_jsonl());
        }
        out
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// The stable-code table itself: codes are unique, parse round-trips,
/// and severities match the documented scheme.
#[test]
fn lint_code_table_is_stable() {
    for code in LintCode::ALL {
        assert_eq!(LintCode::parse(code.code()), Some(code));
    }
    // Spot-pin the documented severiy split so a refactor cannot
    // silently demote an error.
    assert_eq!(LintCode::Union.severity(), Severity::Error);
    assert_eq!(LintCode::EscapingStackAddress.severity(), Severity::Warning);
    assert_eq!(LintCode::DeadBlockAtPoll.severity(), Severity::Info);
    assert_eq!(LintCode::PointerWidthTruncation.severity(), Severity::Info);
    assert_eq!(LintCode::RegistryDanglingEdge.severity(), Severity::Error);
}
