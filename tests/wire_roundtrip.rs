//! Wire-codec round-trip sweep: every architecture preset pair, with the
//! image shipped stored (v2) and compressed (v3).
//!
//! The codec is transport dressing only. Whatever pair of machines the
//! image travels between and whichever framing the planner picked, the
//! reassembled image must be bit-identical to the frozen one and the
//! restored run must answer exactly like the uncompressed sequential
//! driver.

use hpm::arch::Architecture;
use hpm::migrate::{
    run_migrating, run_migrating_planned, run_to_migration, MigrationPlan, Trigger,
};
use hpm::net::{channel_pair, ChunkReceiver, ChunkSender, NetworkModel, WireCodec};
use hpm::workloads::TestPointer;

fn presets() -> [Architecture; 4] {
    [
        Architecture::dec5000(),
        Architecture::sparc20(),
        Architecture::ultra5(),
        Architecture::x86_64_sim(),
    ]
}

/// Codec-level bit identity: a real frozen image framed chunk-by-chunk
/// through each codec comes out of the receiver byte-for-byte intact —
/// compression is invisible above the stream layer.
#[test]
fn shipped_image_is_bit_identical_under_both_codecs() {
    for arch in presets() {
        let mut p = TestPointer::new();
        let mut src = run_to_migration(&mut p, arch.clone(), Trigger::AtPollCount(8)).unwrap();
        let image = src.to_image().unwrap();
        for codec in [WireCodec::V2, WireCodec::V3] {
            let (a, b) = channel_pair(NetworkModel::instant());
            let mut tx = ChunkSender::new(&a).with_codec(codec);
            for part in image.chunks(512) {
                tx.send(part).unwrap();
            }
            tx.finish().unwrap();
            let mut rx = ChunkReceiver::new(b);
            let mut shipped = Vec::new();
            while let Some(c) = rx.recv_chunk().unwrap() {
                shipped.extend_from_slice(&c);
            }
            assert_eq!(
                shipped, image,
                "{} via {codec:?}: wire changed the image bytes",
                arch.name
            );
        }
    }
}

/// Driver-level sweep: all 16 preset pairs, each shipped stored and
/// compressed, diffed against the plain sequential driver on the same
/// pair. The stored arm must never rewrite payload bytes; the
/// compressed arm must never *expand* them (stored fallback).
#[test]
fn every_preset_pair_roundtrips_stored_and_compressed() {
    for src in presets() {
        for dst in presets() {
            let seq = run_migrating(
                TestPointer::new,
                src.clone(),
                dst.clone(),
                NetworkModel::instant(),
                Trigger::AtPollCount(8),
            )
            .unwrap();
            for codec in [WireCodec::V2, WireCodec::V3] {
                let run = run_migrating_planned(
                    TestPointer::new,
                    src.clone(),
                    dst.clone(),
                    NetworkModel::instant(),
                    Trigger::AtPollCount(8),
                    MigrationPlan::forced(1, codec),
                )
                .unwrap();
                let tag = format!("{} -> {} via {codec:?}", src.name, dst.name);
                assert_eq!(run.results, seq.results, "{tag}: answers diverge");
                assert_eq!(
                    run.report.image_bytes, seq.report.image_bytes,
                    "{tag}: image size changed"
                );
                assert_eq!(
                    run.report.collect_stats.bytes_out, seq.report.collect_stats.bytes_out,
                    "{tag}: collected payload size changed"
                );
                let t = &run.report.transfer;
                assert_eq!(
                    t.raw_payload_bytes, run.report.image_bytes,
                    "{tag}: every image byte crosses the wire exactly once"
                );
                match codec {
                    WireCodec::V2 => {
                        assert_eq!(t.chunks_compressed, 0, "{tag}: v2 never compresses");
                        assert_eq!(t.raw_payload_bytes, t.wire_payload_bytes, "{tag}");
                    }
                    WireCodec::V3 => {
                        assert!(
                            t.wire_payload_bytes <= t.raw_payload_bytes,
                            "{tag}: the stored fallback must keep v3 from expanding \
                             ({} wire vs {} raw)",
                            t.wire_payload_bytes,
                            t.raw_payload_bytes
                        );
                    }
                }
            }
        }
    }
}
