//! Integration test: the full pre-compiler pipeline — parse → safety
//! screen → liveness → bytecode → heterogeneous migration — on programs
//! exercising the language end to end.

use hpm::annotate::{annotate_source, check_migration_safety, parse, MiniCProcess};
use hpm::arch::Architecture;
use hpm::migrate::{run_migrating, run_straight, Trigger};
use hpm::net::NetworkModel;

fn straight(src: &str) -> Vec<(String, String)> {
    let mut p = MiniCProcess::from_source(src).unwrap();
    run_straight(&mut p, Architecture::dec5000()).unwrap().0
}

fn migrated(src: &str, at: u64) -> Vec<(String, String)> {
    run_migrating(
        || MiniCProcess::from_source(src).unwrap(),
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::instant(),
        Trigger::AtPollCount(at),
    )
    .unwrap()
    .results
}

#[test]
fn binary_tree_program_migrates() {
    let src = r#"
        struct node { int v; struct node *l; struct node *r; };
        struct node *root;
        unsigned int rng;

        int next_random() {
            rng = rng * 1664525 + 1013904223;
            return (rng / 256) % 100000;
        }

        int insert(int value) {
            struct node *n;
            struct node *cur;
            n = (struct node *) malloc(sizeof(struct node));
            n->v = value;
            n->l = 0;
            n->r = 0;
            if (root == 0) { root = n; return 0; }
            cur = root;
            while (1) {
                if (value < cur->v) {
                    if (cur->l == 0) { cur->l = n; return 0; }
                    cur = cur->l;
                } else {
                    if (cur->r == 0) { cur->r = n; return 0; }
                    cur = cur->r;
                }
            }
        }

        int main() {
            int i;
            int v;
            int count;
            int prev;
            int ok;
            struct node *stackless;
            rng = 12345;
            root = 0;
            for (i = 0; i < 800; i++) {
                v = next_random();
                v = insert(v);
            }
            print("done", 1);
            return 0;
        }
    "#;
    let expect = straight(src);
    // Migrate mid-build: some tree on the source, the rest grown on the
    // destination with the migrated RNG state.
    for at in [50, 400, 1200] {
        assert_eq!(expect, migrated(src, at), "trigger at poll {at}");
    }
}

#[test]
fn recursion_chain_migration() {
    // Migration fires deep inside a recursive call chain: the execution
    // state records one frame per recursion level and re-entry rebuilds
    // the whole chain.
    let src = r#"
        int depth_sum(int d) {
            int i;
            int acc;
            int sub;
            acc = 0;
            for (i = 0; i < 40; i++) { acc = acc + i; }
            if (d == 0) { return acc; }
            sub = depth_sum(d - 1);
            return acc + sub;
        }
        int main() {
            int r;
            r = depth_sum(12);
            print("r", r);
            return 0;
        }
    "#;
    let expect = straight(src);
    let run = run_migrating(
        || MiniCProcess::from_source(src).unwrap(),
        Architecture::dec5000(),
        Architecture::x86_64_sim(),
        NetworkModel::instant(),
        Trigger::AtPollCount(300),
    )
    .unwrap();
    assert_eq!(expect, run.results);
    assert!(
        run.report.chain_depth > 3,
        "migration should fire deep in the recursion: depth {}",
        run.report.chain_depth
    );
}

#[test]
fn arrays_and_doubles_migrate() {
    let src = r#"
        int main() {
            double acc[8];
            int i;
            int k;
            double total;
            for (i = 0; i < 8; i++) { acc[i] = 0.0; }
            for (k = 0; k < 500; k++) {
                acc[k % 8] = acc[k % 8] + 0.125 * k;
            }
            total = 0.0;
            for (i = 0; i < 8; i++) { total = total + acc[i]; }
            print("total", total);
            return 0;
        }
    "#;
    let expect = straight(src);
    assert_eq!(expect, migrated(src, 250));
}

#[test]
fn dead_variables_not_saved() {
    // The pre-compiler's liveness analysis keeps dead locals out of the
    // migration image — check via the annotated listing.
    let src = "int main() { int live; int dead; dead = 1; live = 2; \
               while (live < 1000) { live = live + 1; } print(\"v\", live); return 0; }";
    let (_, sites) = annotate_source(src).unwrap();
    let lh = sites.iter().find(|s| s.kind == "loop-header").unwrap();
    assert!(lh.live.contains(&"live".to_string()));
    assert!(!lh.live.contains(&"dead".to_string()), "{lh:?}");
    // And the program still migrates correctly.
    let expect = straight(src);
    assert_eq!(expect, migrated(src, 500));
}

#[test]
fn unsafe_programs_are_screened_out() {
    // Parse-level rejections.
    for bad in [
        "union u { int a; float b; };",
        "int main() { goto x; }",
        "int f(int a, ...) { return a; }",
        "int main() { int (*fp)(int); return 0; }",
    ] {
        assert!(parse(bad).is_err(), "{bad}");
    }
    // Cast-screen rejections compile-stop via MiniCProcess.
    let bad = "int main() { int x; int *p; p = &x; x = (int) p; return x; }";
    let ast = parse(bad).unwrap();
    assert!(!check_migration_safety(&ast).is_empty());
    assert!(MiniCProcess::from_source(bad).is_err());
}

#[test]
fn free_and_reuse_across_migration() {
    // Freed blocks must not be collected; reallocation reuses space.
    let src = r#"
        struct cell { int v; struct cell *next; };
        struct cell *keep;
        int main() {
            int i;
            struct cell *tmp;
            keep = 0;
            for (i = 0; i < 400; i++) {
                tmp = (struct cell *) malloc(sizeof(struct cell));
                tmp->v = i;
                if (i % 2 == 0) {
                    tmp->next = keep;
                    keep = tmp;
                } else {
                    free(tmp);
                }
            }
            i = 0;
            tmp = keep;
            while (tmp != 0) { i = i + 1; tmp = tmp->next; }
            print("kept", i);
            return 0;
        }
    "#;
    let expect = straight(src);
    assert_eq!(expect, migrated(src, 200));
    let kept = expect.iter().find(|(k, _)| k == "kept").unwrap();
    assert_eq!(kept.1, "200");
}

#[test]
fn sizeof_is_architecture_dependent_but_results_agree() {
    // sizeof(long) differs across machines; programs that *branch* on it
    // still produce consistent results when the logic is
    // size-independent.
    let src = "int main() { int s; s = sizeof(double) + sizeof(int); print(\"s\", s); return 0; }";
    let r = straight(src);
    assert_eq!(r.iter().find(|(k, _)| k == "s").unwrap().1, "12");
}

#[test]
fn annotation_matches_execution_sites() {
    let src = "int work(int n) { int i; int a; a = 0; for (i = 0; i < n; i++) { a = a + 1; } return a; }\n\
               int main() { int x; x = work(50000); print(\"x\", x); return 0; }";
    let (listing, sites) = annotate_source(src).unwrap();
    assert!(listing.contains("MIG_POLL"));
    let p = MiniCProcess::from_source(src).unwrap();
    // Compiled sites mirror the annotated sites (minus function entries,
    // which the bytecode does not poll).
    let compiled = p.program().sites.len();
    let annotated_non_entry = sites.iter().filter(|s| s.kind != "entry").count();
    assert_eq!(compiled, annotated_non_entry, "{sites:?}");
}

#[test]
fn figure1_program_runs_in_minic() {
    // The paper's Figure 1 program, almost verbatim, through the whole
    // pre-compiler pipeline. (The VM's pre-compiler places poll-points at
    // loop headers, so migration fires at main's `for` header rather than
    // inside `foo` — a policy difference, not a mechanism one.)
    let src = r#"
        struct node { float data; struct node *link; };
        struct node *first;
        struct node *last;

        void foo(struct node **p, int **q) {
            *p = (struct node *) malloc(sizeof(struct node));
            (*p)->data = 10.5;
            (**q)++;
        }

        int main() {
            int i;
            int a;
            int *b;
            struct node *parray[10];
            int hops;
            struct node *cur;
            a = 1;
            b = &a;
            for (i = 0; i < 10; i++) {
                foo(&parray[i], &b);
                first = parray[0];
                last = parray[i];
                first->link = last;
                if (i > 0) parray[i]->link = parray[i - 1];
            }
            print("a", a);
            hops = 0;
            cur = first;
            while (cur != 0 && hops < 10) {
                print("data", cur->data);
                cur = cur->link;
                hops = hops + 1;
            }
            print("hops", hops);
            return 0;
        }
    "#;
    let expect = straight(src);
    let a = expect.iter().find(|(k, _)| k == "a").unwrap();
    assert_eq!(a.1, "11", "ten (**q)++ increments");
    let hops = expect.iter().find(|(k, _)| k == "hops").unwrap();
    assert_eq!(hops.1, "10", "first reaches all ten nodes");
    // Migrate at several loop iterations across the mixed-endian pair.
    for at in [2u64, 5, 9] {
        assert_eq!(expect, migrated(src, at), "migrated at poll {at}");
    }
}
