//! Integration test: migration-image robustness — monolithic and
//! chunk-streamed — and seed-driven round-trips of arbitrary object
//! graphs.

use hpm::arch::Architecture;
use hpm::core::image::unframe_image;
use hpm::core::stream::VecChunks;
use hpm::core::{ChunkPayload, ChunkSource, Collector, CoreError, Msrlt, Restorer};
use hpm::memory::AddressSpace;
use hpm::migrate::{
    resume_from_image, run_to_migration, ExecutionState, Flow, MigCtx, MigError, MigratableProgram,
    MigratedSource, Process, Trigger,
};
use hpm::net::{channel_pair, ChunkReceiver, NetworkModel};
use hpm::types::Field;
use hpm::workloads::{BitonicSort, TestPointer};

#[test]
fn truncated_images_are_rejected_not_misread() {
    let mut p = TestPointer::new();
    let mut src =
        run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(5)).unwrap();
    let image = src.to_image().unwrap();
    for cut in [1usize, 4, 16, image.len() / 2, image.len() - 4] {
        let mut dst = TestPointer::new();
        let r = resume_from_image(&mut dst, Architecture::sparc20(), &image[..cut]);
        assert!(r.is_err(), "truncation at {cut} must fail loudly");
    }
}

#[test]
fn cross_program_images_are_rejected() {
    let mut p = TestPointer::new();
    let mut src =
        run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(5)).unwrap();
    let image = src.to_image().unwrap();
    let mut wrong = BitonicSort::new(100);
    let r = resume_from_image(&mut wrong, Architecture::sparc20(), &image);
    assert!(
        r.is_err(),
        "a bitonic process must refuse a test_pointer image"
    );
}

#[test]
fn corrupted_header_is_rejected() {
    let mut p = TestPointer::new();
    let mut src =
        run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(5)).unwrap();
    let mut image = src.to_image().unwrap();
    image[0] ^= 0xFF;
    let mut dst = TestPointer::new();
    assert!(resume_from_image(&mut dst, Architecture::sparc20(), &image).is_err());
}

// ---------------------------------------------------------------------
// Streaming counterparts: the same failures injected into the chunked
// path, where the destination is already restoring when damage shows up.
// ---------------------------------------------------------------------

fn freeze_test_pointer() -> MigratedSource {
    let mut p = TestPointer::new();
    run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(8)).unwrap()
}

/// What the migration driver's destination thread does with a chunk
/// stream: parse the prefix, refuse foreign programs, then restore over
/// the remaining chunks.
fn streaming_resume<P: MigratableProgram>(
    dst_prog: &mut P,
    arch: Architecture,
    prefix: &[u8],
    rest: Box<dyn ChunkSource + Send>,
) -> Result<(), MigError> {
    let (header, exec_bytes, leftover) = unframe_image(prefix)?;
    if header.program != dst_prog.name() {
        return Err(MigError::Protocol(format!(
            "image is for program '{}', not '{}'",
            header.program,
            dst_prog.name()
        )));
    }
    let exec = ExecutionState::decode(&exec_bytes)?;
    let mut proc = Process::new(dst_prog.name(), arch);
    dst_prog.setup(&mut proc)?;
    let chunks = ChunkPayload::with_initial(rest, leftover);
    let mut ctx = MigCtx::new_resume_streaming(&mut proc, exec, chunks);
    match dst_prog.run(&mut ctx)? {
        Flow::Done => Ok(()),
        Flow::Migrate => Err(MigError::Protocol("resumed program migrated again".into())),
    }
}

/// A chunk arriving truncated mid-stream must fail the restore loudly —
/// not silently restore garbage into live data.
#[test]
fn truncated_chunk_mid_stream_is_rejected() {
    let mut src = freeze_test_pointer();
    let (mut chunks, _) = src.to_chunks(64).unwrap();
    assert!(chunks.len() >= 4, "need several chunks to damage one");
    let prefix = chunks.remove(0);
    // Cut a middle chunk short (keeping 4-byte alignment so the failure
    // is the missing data, not a framing artifact).
    let victim = chunks.len() / 2;
    let cut = (chunks[victim].len() / 2) & !3;
    chunks[victim].truncate(cut);
    chunks.truncate(victim + 1); // nothing after the damage arrives

    let mut dst = TestPointer::new();
    let err = streaming_resume(
        &mut dst,
        Architecture::sparc20(),
        &prefix,
        Box::new(VecChunks::new(chunks)),
    )
    .unwrap_err();
    match err {
        MigError::Core(m) | MigError::Protocol(m) | MigError::Xdr(m) => {
            assert!(
                m.contains("truncated") || m.contains("ran dry") || m.contains("chunk"),
                "error must say the stream ran short: {m}"
            );
        }
        other => panic!("expected a loud truncation failure, got {other:?}"),
    }
}

/// Adapter: net-layer chunk receiver as a restorer chunk source (what
/// the migration driver uses internally).
struct NetSource {
    rx: ChunkReceiver,
}

impl ChunkSource for NetSource {
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, CoreError> {
        self.rx
            .recv_chunk()
            .map_err(|e| CoreError::Source(e.to_string()))
    }
}

/// A payload corrupted on the wire under a still-valid frame header is
/// caught by the per-chunk CRC and surfaces mid-restore with the chunk
/// index — the header-corruption counterpart for the streamed path.
#[test]
fn corrupted_payload_mid_stream_is_caught_by_crc() {
    let mut src = freeze_test_pointer();
    let (chunks, _) = src.to_chunks(64).unwrap();
    assert!(chunks.len() >= 4, "need several chunks to damage one");
    let victim = 2u32;

    let (a, b) = channel_pair(NetworkModel::instant());
    for (i, c) in chunks.iter().enumerate() {
        let mut frame = hpm::xdr::frame_chunk_v2(i as u32, false, c);
        if i as u32 == victim {
            let n = frame.len();
            frame[n - 2] ^= 0x40; // payload byte; header left intact
        }
        a.send(frame).unwrap();
    }
    a.send(hpm::xdr::frame_chunk_v2(chunks.len() as u32, true, &[]))
        .unwrap();

    let mut rx = ChunkReceiver::new(b);
    let prefix = rx.recv_chunk().unwrap().expect("prefix chunk");
    let mut dst = TestPointer::new();
    let err = streaming_resume(
        &mut dst,
        Architecture::sparc20(),
        &prefix,
        Box::new(NetSource { rx }),
    )
    .unwrap_err();
    match err {
        MigError::Core(m) => {
            assert!(
                m.contains(&format!("chunk {victim} corrupt")),
                "CRC failure must name chunk {victim}: {m}"
            );
        }
        other => panic!("expected the CRC to catch the damage, got {other:?}"),
    }
}

/// The same wire damage on a *compressed* v3 chunk: the CRC is stamped
/// over the compressed bytes, so corruption is caught by the checksum —
/// named by chunk index — before any decompression is attempted, never
/// surfacing as a garbled token stream.
#[test]
fn corrupted_compressed_chunk_is_caught_by_crc() {
    let mut src = freeze_test_pointer();
    let (chunks, _) = src.to_chunks(64).unwrap();
    assert!(chunks.len() >= 4, "need several chunks to damage one");

    let mut frames: Vec<Vec<u8>> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| hpm::xdr::frame_chunk_v3(i as u32, false, c).0)
        .collect();
    // Pick a mid-stream chunk the codec actually compressed, so the
    // flipped byte lands inside token data rather than stored payload.
    let victim = frames
        .iter()
        .enumerate()
        .skip(1)
        .find(|(_, f)| hpm::xdr::unframe_chunk_any(f).unwrap().compressed)
        .map(|(i, _)| i as u32)
        .expect("64-byte image chunks must include a compressible one");
    // The v3 header is 24 bytes (magic, seq, flags, raw_len, crc, payload
    // length), so byte 24 is the first byte of the compressed payload.
    frames[victim as usize][24] ^= 0x40;

    let (a, b) = channel_pair(NetworkModel::instant());
    for f in frames {
        a.send(f).unwrap();
    }
    a.send(hpm::xdr::frame_chunk_v3(chunks.len() as u32, true, &[]).0)
        .unwrap();

    let mut rx = ChunkReceiver::new(b);
    let prefix = rx.recv_chunk().unwrap().expect("prefix chunk");
    let mut dst = TestPointer::new();
    let err = streaming_resume(
        &mut dst,
        Architecture::sparc20(),
        &prefix,
        Box::new(NetSource { rx }),
    )
    .unwrap_err();
    match err {
        MigError::Core(m) => {
            assert!(
                m.contains(&format!("chunk {victim} corrupt")),
                "CRC failure must name chunk {victim}: {m}"
            );
        }
        other => panic!("expected the CRC to catch the damage, got {other:?}"),
    }
}

/// Program identity travels in chunk 0: a destination running a
/// different program refuses the stream before touching any state.
#[test]
fn cross_program_chunk_stream_is_rejected() {
    let mut src = freeze_test_pointer();
    let (mut chunks, _) = src.to_chunks(64).unwrap();
    let prefix = chunks.remove(0);
    let mut wrong = BitonicSort::new(100);
    let err = streaming_resume(
        &mut wrong,
        Architecture::sparc20(),
        &prefix,
        Box::new(VecChunks::new(chunks)),
    )
    .unwrap_err();
    match err {
        MigError::Protocol(m) => {
            assert!(
                m.contains("test_pointer") && m.contains(wrong.name()),
                "refusal must name both programs: {m}"
            );
        }
        other => panic!("expected a program-identity refusal, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Seed-driven round-trip of arbitrary object graphs.
//
// A pseudo-random graph of `node { long tag; node *a; node *b; }` blocks with
// arbitrary edges (including cycles, sharing, and NULLs) is built on a
// random source architecture, collected from a root pointer, restored on
// a random destination architecture, and compared up to isomorphism by
// parallel traversal.
// ---------------------------------------------------------------------

fn build_space(
    arch: Architecture,
    tags: &[i64],
    edges: &[(usize, usize, bool)],
) -> (AddressSpace, Msrlt, u64, Vec<u64>) {
    let mut space = AddressSpace::new(arch);
    let node = space.types_mut().declare_struct("gnode");
    let pn = space.types_mut().pointer_to(node);
    let long = space.types_mut().scalar(hpm::arch::CScalar::Long);
    space
        .types_mut()
        .define_struct(
            node,
            vec![
                Field::new("tag", long),
                Field::new("a", pn),
                Field::new("b", pn),
            ],
        )
        .unwrap();
    let root = space.define_global("groot", pn, 1).unwrap();
    let mut msrlt = Msrlt::new();
    for info in space.block_infos() {
        msrlt.register(&info);
    }
    let mut nodes = Vec::new();
    for &tag in tags {
        let n = space.malloc(node, 1).unwrap();
        msrlt.register(&space.info_at(n).unwrap());
        let t = space.elem_addr(n, 0).unwrap();
        space.store_int(t, tag).unwrap();
        nodes.push(n);
    }
    for &(from, to, which_b) in edges {
        let slot = space
            .elem_addr(nodes[from], if which_b { 2 } else { 1 })
            .unwrap();
        space.store_ptr(slot, nodes[to]).unwrap();
    }
    if !nodes.is_empty() {
        space.store_ptr(root, nodes[0]).unwrap();
    }
    (space, msrlt, root, nodes)
}

/// Canonical serialization of the graph reachable from `root`: DFS with
/// first-visit numbering — isomorphic graphs produce identical strings.
fn canon(space: &mut AddressSpace, root_ptr_block: u64) -> String {
    let mut out = String::new();
    let mut ids: std::collections::HashMap<u64, usize> = Default::default();
    let root = space.load_ptr(root_ptr_block).unwrap();
    let mut stack = vec![root];
    // Pre-order with explicit numbering.
    fn visit(
        space: &mut AddressSpace,
        addr: u64,
        ids: &mut std::collections::HashMap<u64, usize>,
        out: &mut String,
    ) {
        if addr == 0 {
            out.push_str("_,");
            return;
        }
        if let Some(&n) = ids.get(&addr) {
            out.push_str(&format!("@{n},"));
            return;
        }
        let n = ids.len();
        ids.insert(addr, n);
        let t = space.elem_addr(addr, 0).unwrap();
        let tag = space.load_int(t).unwrap();
        out.push_str(&format!("#{n}:{tag}("));
        let a_slot = space.elem_addr(addr, 1).unwrap();
        let a = space.load_ptr(a_slot).unwrap();
        visit(space, a, ids, out);
        let b_slot = space.elem_addr(addr, 2).unwrap();
        let b = space.load_ptr(b_slot).unwrap();
        visit(space, b, ids, out);
        out.push_str("),");
    }
    let r = stack.pop().unwrap();
    visit(space, r, &mut ids, &mut out);
    out
}

/// Deterministic splitmix64 driving the graph sweeps (replaces the
/// external property-testing RNG).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[test]
fn arbitrary_graphs_roundtrip() {
    let archs = Architecture::presets();
    let mut s = 0x6ea4_0001u64;
    for case in 0..48 {
        // Tags fit an i32: `long` narrows to 4 bytes on the ILP32
        // presets, so — exactly like real C source-level migration —
        // values wider than the destination's `long` are truncated
        // (covered by `long_width_conversion_sound` below).
        let n = 1 + (next(&mut s) % 23) as usize;
        let tags: Vec<i64> = (0..n).map(|_| next(&mut s) as i32 as i64).collect();
        let n_edges = (next(&mut s) % 48) as usize;
        let edges: Vec<(usize, usize, bool)> = (0..n_edges)
            .map(|_| {
                (
                    next(&mut s) as usize % n,
                    next(&mut s) as usize % n,
                    next(&mut s).is_multiple_of(2),
                )
            })
            .collect();
        let src_pick = (next(&mut s) % 4) as usize;
        let dst_pick = (next(&mut s) % 4) as usize;

        let (mut src, mut src_lt, root, _) = build_space(archs[src_pick].clone(), &tags, &edges);
        let expected = canon(&mut src, root);

        let mut collector = Collector::new(&mut src, &mut src_lt);
        collector.save_variable(root).unwrap();
        let (payload, _) = collector.finish();

        let (mut dst, mut dst_lt, droot, _) = build_space(archs[dst_pick].clone(), &[], &[]);
        let mut restorer = Restorer::new(&mut dst, &mut dst_lt, &payload);
        restorer.restore_variable(droot).unwrap();
        restorer.finish().unwrap();

        let got = canon(&mut dst, droot);
        assert_eq!(
            got, expected,
            "case {case}: graph must restore isomorphically"
        );
    }
}

/// Long values (which travel as 8-byte hypers) survive ILP32 → LP64
/// and back without sign damage when they fit the source width.
#[test]
fn long_width_conversion_sound() {
    let mut s = 0x6ea4_0002u64;
    let mut cases: Vec<i32> = vec![0, 1, -1, i32::MIN, i32::MAX];
    cases.extend((0..32).map(|_| next(&mut s) as i32));
    for v in cases {
        let (mut src, mut src_lt, root, nodes) =
            build_space(Architecture::dec5000(), &[v as i64], &[]);
        let _ = root;
        let t = src.elem_addr(nodes[0], 0).unwrap();
        src.store_int(t, v as i64).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(root).unwrap();
        let (payload, _) = c.finish();

        let (mut dst, mut dst_lt, droot, _) = build_space(Architecture::x86_64_sim(), &[], &[]);
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(droot).unwrap();
        r.finish().unwrap();
        let dn = dst.load_ptr(droot).unwrap();
        let dt = dst.elem_addr(dn, 0).unwrap();
        assert_eq!(dst.load_int(dt).unwrap(), v as i64);
    }
}
