//! Integration test: the §4.1 heterogeneity matrix — every workload
//! migrates correctly between every ordered pair of architectures,
//! including the truly mixed-endian DEC↔SPARC pair and the 32↔64-bit
//! pointer-width pairs the paper's model permits.

use hpm::arch::Architecture;
use hpm::migrate::{run_migrating, run_straight, Trigger};
use hpm::net::NetworkModel;
use hpm::workloads::{diff_results, BitonicSort, Linpack, TestPointer};

fn archs() -> Vec<Architecture> {
    vec![
        Architecture::dec5000(),
        Architecture::sparc20(),
        Architecture::x86_64_sim(),
    ]
}

#[test]
fn test_pointer_full_matrix() {
    let mut p = TestPointer::new();
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    for src in archs() {
        for dst in archs() {
            let run = run_migrating(
                TestPointer::new,
                src.clone(),
                dst.clone(),
                NetworkModel::instant(),
                Trigger::AtPollCount(6),
            )
            .unwrap();
            assert_eq!(
                diff_results(&expect, &run.results),
                None,
                "{} → {}",
                src.name,
                dst.name
            );
        }
    }
}

#[test]
fn linpack_bitwise_float_accuracy_across_endianness() {
    // §4.1: "The data collection and restoration process preserves the
    // high-order floating point accuracy." We check bit-exactness: the
    // migrated solve produces the same IEEE-754 bit patterns.
    let n = 48;
    let mut p = Linpack::full(n);
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    let bits = expect
        .iter()
        .find(|(k, _)| k == "solution_bits")
        .unwrap()
        .1
        .clone();
    for (src, dst) in [
        (Architecture::dec5000(), Architecture::sparc20()),
        (Architecture::sparc20(), Architecture::x86_64_sim()),
        (Architecture::x86_64_sim(), Architecture::dec5000()),
    ] {
        let run = run_migrating(
            move || Linpack::full(n),
            src,
            dst,
            NetworkModel::instant(),
            Trigger::AtPollCount(n / 3),
        )
        .unwrap();
        let got = run
            .results
            .iter()
            .find(|(k, _)| k == "solution_bits")
            .unwrap();
        assert_eq!(
            got.1, bits,
            "float bits must survive the format conversions"
        );
    }
}

#[test]
fn bitonic_random_stream_continues_on_destination() {
    // The LCG state lives in simulated memory, so the destination draws
    // the same numbers the source would have.
    let n = 3_000;
    let mut p = BitonicSort::new(n);
    let (expect, _) = run_straight(&mut p, Architecture::sparc20()).unwrap();
    let run = run_migrating(
        move || BitonicSort::new(n),
        Architecture::sparc20(),
        Architecture::dec5000(),
        NetworkModel::instant(),
        Trigger::AtPollCount(n / 4),
    )
    .unwrap();
    assert_eq!(diff_results(&expect, &run.results), None);
}

#[test]
fn pooled_bitonic_migrates_between_pointer_widths() {
    // Interior pointers into the pool block must retarget correctly when
    // the element stride changes (12 bytes on ILP32, 24 on LP64).
    let n = 2_000;
    let mut p = BitonicSort::pooled(n);
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    for (src, dst) in [
        (Architecture::dec5000(), Architecture::x86_64_sim()),
        (Architecture::x86_64_sim(), Architecture::sparc20()),
    ] {
        let run = run_migrating(
            move || BitonicSort::pooled(n),
            src,
            dst,
            NetworkModel::instant(),
            Trigger::AtPollCount(n / 2),
        )
        .unwrap();
        assert_eq!(diff_results(&expect, &run.results), None);
        assert!(
            run.report.collect_stats.blocks_saved < 20,
            "the pool travels as a handful of blocks: {:?}",
            run.report.collect_stats
        );
    }
}

#[test]
fn migration_image_is_identical_regardless_of_source_arch() {
    // The wire format is fully machine-independent: the same program
    // state produces byte-identical memory payloads on different
    // machines (header differs; payload must not).
    use hpm::migrate::run_to_migration;
    let make = || TestPointer::new();
    let mut a = run_to_migration(
        &mut make(),
        Architecture::dec5000(),
        Trigger::AtPollCount(6),
    )
    .unwrap();
    let mut b = run_to_migration(
        &mut make(),
        Architecture::sparc20(),
        Trigger::AtPollCount(6),
    )
    .unwrap();
    let (pa, ea, _) = a.collect().unwrap();
    let (pb, eb, _) = b.collect().unwrap();
    assert_eq!(ea, eb, "execution state identical");
    assert_eq!(pa, pb, "memory payload byte-identical across architectures");
}

#[test]
fn tx_time_reflects_link_speed() {
    let n = 2_000;
    let slow = run_migrating(
        move || BitonicSort::new(n),
        Architecture::ultra5(),
        Architecture::ultra5(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(n),
    )
    .unwrap();
    let fast = run_migrating(
        move || BitonicSort::new(n),
        Architecture::ultra5(),
        Architecture::ultra5(),
        NetworkModel::ethernet_100(),
        Trigger::AtPollCount(n),
    )
    .unwrap();
    let ratio = slow.report.tx_time.as_secs_f64() / fast.report.tx_time.as_secs_f64();
    assert!(
        ratio > 5.0,
        "10 Mb/s should be ~10x slower than 100 Mb/s, got {ratio}"
    );
}
