//! Integration test: the paper's Figure 1 illustrative example,
//! reproduced end to end — snapshot shape, collection behavior, and a
//! full heterogeneous migration resuming mid-loop.

use hpm::arch::Architecture;
use hpm::core::MsrGraph;
use hpm::migrate::{run_migrating, run_straight, run_to_migration, Trigger};
use hpm::net::NetworkModel;
use hpm::workloads::{diff_results, Figure1};

/// Figure 1(b): at the snapshot (fifth `foo` call, before `malloc`) the
/// memory space holds exactly the 12 blocks the paper draws: `first`,
/// `last`, `i`, `a`, `b`, `parray`, four heap nodes, `p`, `q`.
#[test]
fn figure1_snapshot_has_twelve_vertices() {
    let mut program = Figure1::new();
    let mut src = run_to_migration(
        &mut program,
        Architecture::dec5000(),
        Trigger::AtPollCount(5),
    )
    .unwrap();
    let g = MsrGraph::snapshot(&mut src.proc.space, &mut src.proc.msrlt).unwrap();
    assert_eq!(g.vertex_count(), 12);

    let labels: Vec<&str> = g.vertices.iter().map(|v| v.label.as_str()).collect();
    for name in ["first", "last", "i", "a", "b", "parray", "p", "q"] {
        assert!(labels.contains(&name), "missing {name} in {labels:?}");
    }
    let heap_nodes = g.vertices.iter().filter(|v| v.segment == "heap").count();
    assert_eq!(
        heap_nodes, 4,
        "four foo() calls completed before the snapshot"
    );

    // Segments match the figure: 2 globals, 4 heap, 6 stack (i, a, b,
    // parray in main; p, q in foo).
    let stack_nodes = g.vertices.iter().filter(|v| v.segment == "stack").count();
    assert_eq!(stack_nodes, 6);
}

/// §3.2 walkthrough: collecting `p` (v11) first drags in `parray` (v6)
/// and all four nodes inline; `first` afterwards contributes only a
/// visited reference.
#[test]
fn figure1_collection_order_and_no_duplication() {
    let mut program = Figure1::new();
    let mut src = run_to_migration(
        &mut program,
        Architecture::dec5000(),
        Trigger::AtPollCount(5),
    )
    .unwrap();
    let (_payload, exec, stats) = src.collect().unwrap();
    assert_eq!(exec.depth(), 2, "main → foo");
    assert_eq!(exec.frames[0].function, "main");
    assert_eq!(exec.frames[1].function, "foo");
    assert_eq!(stats.blocks_saved, 12, "every vertex saved exactly once");
    // first→node1, last→node4, the parray slots already covered, and the
    // node back-links produce visited references rather than re-saves.
    assert!(stats.ptr_ref >= 4, "{stats:?}");
    // parray has 6 NULL slots at i == 4 (indices 4..9; slot 4 is written
    // only after foo returns).
    assert_eq!(stats.ptr_null, 6, "{stats:?}");
}

/// Migrating at the paper's exact point, across the true-heterogeneity
/// pair, and resuming to completion produces the same final state as an
/// unmigrated run.
#[test]
fn figure1_migration_resumes_mid_loop() {
    let mut p = Figure1::new();
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    for (src, dst) in [
        (Architecture::dec5000(), Architecture::sparc20()),
        (Architecture::sparc20(), Architecture::dec5000()),
        (Architecture::dec5000(), Architecture::x86_64_sim()),
    ] {
        let run = run_migrating(
            Figure1::new,
            src.clone(),
            dst.clone(),
            NetworkModel::ethernet_10(),
            Trigger::AtPollCount(5),
        )
        .unwrap();
        assert_eq!(
            diff_results(&expect, &run.results),
            None,
            "{} → {}",
            src.name,
            dst.name
        );
    }
}

/// The DOT export is syntactically plausible and complete.
#[test]
fn figure1_dot_export() {
    let mut program = Figure1::new();
    let mut src = run_to_migration(
        &mut program,
        Architecture::dec5000(),
        Trigger::AtPollCount(5),
    )
    .unwrap();
    let g = MsrGraph::snapshot(&mut src.proc.space, &mut src.proc.msrlt).unwrap();
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph msr {"));
    assert!(dot.trim_end().ends_with('}'));
    assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    for seg in ["cluster_global", "cluster_heap", "cluster_stack"] {
        assert!(dot.contains(seg));
    }
}

/// Migrating at *every* possible poll count produces consistent results:
/// the migration point placement never changes program semantics.
#[test]
fn figure1_every_migration_point_is_safe() {
    let mut p = Figure1::new();
    let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
    for at in 1..=10 {
        let run = run_migrating(
            Figure1::new,
            Architecture::dec5000(),
            Architecture::sparc20(),
            NetworkModel::instant(),
            Trigger::AtPollCount(at),
        )
        .unwrap();
        assert_eq!(diff_results(&expect, &run.results), None, "poll count {at}");
    }
}
