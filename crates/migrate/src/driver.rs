//! Single-pair migration driver: run, migrate, resume, report.
//!
//! Produces the paper's headline measurement triplet — **Collect**, **Tx**,
//! **Restore** (Table 1: "We define process migration time as the total of
//! data collection (Collect), transmission (Tx), and restoration (Restore)
//! time") — plus every §4.2 instrumentation counter.

use crate::ctx::{collect_pending, collect_pending_traced, MigCtx, MigratableProgram};
use crate::exec::ExecutionState;
use crate::process::{Process, Trigger};
use crate::{Flow, MigError};
use hpm_arch::Architecture;
use hpm_core::image::{frame_image, unframe_image, ImageHeader};
use hpm_core::{CollectStats, MsrltStats, RestoreStats, IMAGE_VERSION};
use hpm_net::{channel_pair, NetworkModel, TransferSnapshot};
use hpm_obs::{render_groups, snapshot, StatField, StatGroup, TraceLog, Tracer};
use std::time::{Duration, Instant};

/// Everything measured about one migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Total migration image size in bytes (header + exec + memory).
    pub image_bytes: u64,
    /// Memory-state payload bytes (the ΣDᵢ quantity of §4.2).
    pub memory_bytes: u64,
    /// Wall time of the data-collection phase.
    pub collect_time: Duration,
    /// Modeled transmission time over the chosen link.
    pub tx_time: Duration,
    /// Wall time of the restoration phase (sum over `restore_frame`s).
    pub restore_time: Duration,
    /// Collection counters.
    pub collect_stats: CollectStats,
    /// Source MSRLT counters during collection (searches, steps, time).
    pub src_msrlt: MsrltStats,
    /// Restoration counters.
    pub restore_stats: RestoreStats,
    /// Destination MSRLT counters during restoration + resumed run.
    pub dst_msrlt: MsrltStats,
    /// Poll-points executed on the source before migration.
    pub src_polls: u64,
    /// Call-chain depth at the migration point.
    pub chain_depth: usize,
    /// Wire-level transfer accounting (the `Tx` column comes from here).
    pub transfer: TransferSnapshot,
    /// Full event trace of the migration, when one was requested via
    /// [`run_migrating_traced`]; `None` for untraced runs.
    pub trace: Option<TraceLog>,
}

impl MigrationReport {
    /// Total migration time: Collect + Tx + Restore (Table 1's metric).
    pub fn migration_time(&self) -> Duration {
        self.collect_time + self.tx_time + self.restore_time
    }

    /// Modeled transmission time in nanoseconds, from the wire accounting.
    pub fn modeled_tx_nanos(&self) -> u64 {
        self.transfer.modeled_tx_nanos
    }

    /// Every counter group in the report, in render order.
    pub fn stat_groups(&self) -> Vec<(String, Vec<StatField>)> {
        vec![
            snapshot(&self.collect_stats),
            ("msrlt.src".to_string(), self.src_msrlt.fields()),
            snapshot(&self.transfer),
            snapshot(&self.restore_stats),
            ("msrlt.dst".to_string(), self.dst_msrlt.fields()),
        ]
    }

    /// Human-readable rendering of every counter group (one aligned
    /// table, shared with `paper_tables` output).
    pub fn render(&self) -> String {
        render_groups(&self.stat_groups())
    }
}

/// Result of a migrated run.
#[derive(Debug, Clone)]
pub struct MigrationRun {
    /// Measurements.
    pub report: MigrationReport,
    /// Result digest produced by the destination process.
    pub results: Vec<(String, String)>,
}

/// Run a program to completion with no migration; returns its results.
pub fn run_straight<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
) -> Result<(Vec<(String, String)>, Process), MigError> {
    let mut proc = Process::new(program.name(), arch);
    program.setup(&mut proc)?;
    let mut ctx = MigCtx::new_run(&mut proc);
    match program.run(&mut ctx)? {
        Flow::Done => {}
        Flow::Migrate => {
            return Err(MigError::Protocol(
                "program migrated with Trigger::Never".into(),
            ))
        }
    }
    let results = program.results(&mut proc)?;
    Ok((results, proc))
}

/// A source process stopped at its migration point, ready to collect.
///
/// Benchmarks use this to measure collection repeatedly over one frozen
/// process image (collection does not modify the process).
#[derive(Debug)]
pub struct MigratedSource {
    /// The frozen source process.
    pub proc: Process,
    /// The recorded unwind frames, innermost first.
    pub pending: Vec<crate::ctx::PendingFrame>,
}

/// Run a program until its trigger fires, returning the frozen process
/// and the pending frames (without collecting yet).
pub fn run_to_migration<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    trigger: Trigger,
) -> Result<MigratedSource, MigError> {
    let mut proc = Process::new(program.name(), arch);
    proc.set_trigger(trigger);
    program.setup(&mut proc)?;
    let mut ctx = MigCtx::new_run(&mut proc);
    let flow = program.run(&mut ctx)?;
    if flow == Flow::Done {
        return Err(MigError::Protocol("trigger never fired".into()));
    }
    let pending = ctx.into_pending_frames()?;
    Ok(MigratedSource { proc, pending })
}

impl MigratedSource {
    /// Collect the memory-state payload once (repeatable).
    pub fn collect(&mut self) -> Result<(Vec<u8>, ExecutionState, CollectStats), MigError> {
        collect_pending(&mut self.proc, &self.pending)
    }

    /// Frame a complete migration image from a fresh collection.
    pub fn to_image(&mut self) -> Result<Vec<u8>, MigError> {
        let (payload, exec, _) = self.collect()?;
        let header = ImageHeader {
            version: IMAGE_VERSION,
            source_arch: self.proc.space.arch().name.to_string(),
            source_pointer_size: self.proc.space.arch().pointer_size as u32,
            program: self.proc.program().to_string(),
        };
        Ok(frame_image(&header, &exec.encode(), &payload))
    }
}

/// Collect a migration image from a process that has unwound for
/// migration. Returns (image bytes, collect wall time, stats, exec).
pub fn collect_image(
    ctx: MigCtx<'_>,
) -> Result<(Vec<u8>, Duration, CollectStats, ExecutionState), MigError> {
    collect_image_traced(ctx, &Tracer::disabled())
}

/// [`collect_image`] with the collection DFS traced (`msrlt.search`
/// spans, `collect.block` instants) on `tracer`.
pub fn collect_image_traced(
    ctx: MigCtx<'_>,
    tracer: &Tracer,
) -> Result<(Vec<u8>, Duration, CollectStats, ExecutionState), MigError> {
    let (proc, pending) = ctx.into_parts()?;
    proc.msrlt.reset_stats();
    let t0 = Instant::now();
    let (payload, exec, stats) = collect_pending_traced(proc, &pending, tracer)?;
    let collect_time = t0.elapsed();
    let header = ImageHeader {
        version: IMAGE_VERSION,
        source_arch: proc.space.arch().name.to_string(),
        source_pointer_size: proc.space.arch().pointer_size as u32,
        program: proc.program().to_string(),
    };
    let image = frame_image(&header, &exec.encode(), &payload);
    Ok((image, collect_time, stats, exec))
}

/// What [`resume_from_image`] yields: results, the completed process,
/// restoration stats, and restoration wall time.
pub type ResumeOutcome = (Vec<(String, String)>, Process, RestoreStats, Duration);

/// Resume a program from a migration image on a fresh process.
///
/// Returns the completed program's results plus restoration measurements.
pub fn resume_from_image<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    image: &[u8],
) -> Result<ResumeOutcome, MigError> {
    resume_from_image_traced(program, arch, image, &Tracer::disabled())
}

/// [`resume_from_image`] with restoration traced: each `restore_frame`
/// emits a `restore` span carrying nested block/alloc events.
pub fn resume_from_image_traced<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    image: &[u8],
    tracer: &Tracer,
) -> Result<ResumeOutcome, MigError> {
    let (header, exec_bytes, payload) = unframe_image(image)?;
    if header.program != program.name() {
        return Err(MigError::Protocol(format!(
            "image is for program '{}', not '{}'",
            header.program,
            program.name()
        )));
    }
    let exec = ExecutionState::decode(&exec_bytes)?;
    let mut proc = Process::new(program.name(), arch);
    program.setup(&mut proc)?;
    proc.msrlt.reset_stats();
    let mut ctx = MigCtx::new_resume(&mut proc, exec, payload);
    ctx.set_tracer(tracer.clone());
    match program.run(&mut ctx)? {
        Flow::Done => {}
        Flow::Migrate => return Err(MigError::Protocol("resumed program migrated again".into())),
    }
    let (rstats, rtime) = ctx.restore_totals().ok_or_else(|| {
        MigError::Protocol("program finished without restoring all frames".into())
    })?;
    let results = program.results(&mut proc)?;
    Ok((results, proc, rstats, rtime))
}

/// Full migration experiment: run on `src_arch`, migrate at `trigger`
/// over `link`, resume on `dst_arch`, return results + report.
///
/// `make` constructs a fresh program value for each side (the two sides
/// are separate processes running the same executable).
pub fn run_migrating<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
) -> Result<MigrationRun, MigError> {
    run_migrating_traced(make, src_arch, dst_arch, link, trigger, &Tracer::disabled())
}

/// [`run_migrating`] with a [`Tracer`] attached to every phase.
///
/// With an enabled tracer, the run emits nested phase spans — `collect`
/// (containing `msrlt.search` spans and `collect.block` instants), `tx`
/// (containing the channel's `net.send`/`net.recv` spans), and `restore`
/// per frame (containing `restore.block`/`restore.alloc` instants) — and
/// the report carries the drained [`TraceLog`] with every counter group
/// attached, ready for [`hpm_obs::chrome_trace_json`].
pub fn run_migrating_traced<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    tracer: &Tracer,
) -> Result<MigrationRun, MigError> {
    // --- source side ---
    let mut src_prog = make();
    let mut src = Process::new(src_prog.name(), src_arch);
    src.set_trigger(trigger);
    src_prog.setup(&mut src)?;
    let mut ctx = MigCtx::new_run(&mut src);
    let flow = src_prog.run(&mut ctx)?;
    if flow == Flow::Done {
        return Err(MigError::Protocol(
            "trigger never fired; program completed on the source".into(),
        ));
    }
    tracer.begin("collect");
    let (image, collect_time, collect_stats, exec) = collect_image_traced(ctx, tracer)?;
    tracer.end_args("collect", &[("image_bytes", image.len() as f64)]);
    let src_msrlt = src.msrlt.stats();
    let src_polls = src.poll_count();
    let chain_depth = exec.depth();
    let memory_bytes = collect_stats.bytes_out;

    // --- the wire: ship the image through a modeled channel so the Tx
    // column comes from the same accounting the cluster path uses ---
    tracer.begin("tx");
    let (src_end, dst_end) = channel_pair(link);
    let src_end = src_end.with_tracer(tracer.clone());
    let dst_end = dst_end.with_tracer(tracer.clone());
    src_end.send(image)?;
    let image = dst_end.recv()?;
    let transfer = src_end.stats().snapshot();
    let tx_time = transfer.modeled_tx_time();
    tracer.end_args("tx", &[("modeled_ns", transfer.modeled_tx_nanos as f64)]);

    // --- destination side ---
    let mut dst_prog = make();
    let (results, dst, restore_stats, restore_time) =
        resume_from_image_traced(&mut dst_prog, dst_arch, &image, tracer)?;
    let dst_msrlt = dst.msrlt.stats();

    let mut report = MigrationReport {
        image_bytes: image.len() as u64,
        memory_bytes,
        collect_time,
        tx_time,
        restore_time,
        collect_stats,
        src_msrlt,
        restore_stats,
        dst_msrlt,
        src_polls,
        chain_depth,
        transfer,
        trace: None,
    };
    if tracer.enabled() {
        let mut log = tracer.take_log();
        for (group, fields) in report.stat_groups() {
            log.attach_stats(group, fields);
        }
        report.trace = Some(log);
    }
    Ok(MigrationRun { report, results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Flow;
    use hpm_arch::Architecture;
    use hpm_types::TypeId;

    /// A minimal migratable program: sum 0..limit with one local, one
    /// global accumulator, polling every iteration.
    struct Summer {
        limit: i64,
        result: Option<i64>,
    }

    const PP_LOOP: u32 = 1;

    impl Summer {
        fn new(limit: i64) -> Self {
            Summer {
                limit,
                result: None,
            }
        }

        fn int(proc: &mut Process) -> TypeId {
            proc.space.types_mut().int()
        }

        fn acc_addr(proc: &mut Process) -> u64 {
            proc.space
                .block_infos()
                .into_iter()
                .find(|b| b.name.as_deref() == Some("acc"))
                .unwrap()
                .addr
        }
    }

    impl MigratableProgram for Summer {
        fn name(&self) -> &'static str {
            "summer"
        }

        fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
            let int = Self::int(proc);
            proc.define_global("acc", int, 1)?;
            Ok(())
        }

        fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
            let int = Self::int(ctx.proc());
            let acc = Self::acc_addr(ctx.proc());
            let f = ctx.enter("main")?;
            let i = ctx.local(f, "i", int, 1)?;
            let live = [i, acc];
            let mut iv;
            if ctx.resume_point() == Some(PP_LOOP) {
                ctx.restore_frame(&live)?;
                iv = ctx.proc().space.load_int(i)?;
            } else {
                iv = 0;
            }
            while iv < self.limit {
                ctx.proc().space.store_int(i, iv)?;
                if ctx.poll() {
                    ctx.save_frame(PP_LOOP, &live)?;
                    return Ok(Flow::Migrate);
                }
                let a = ctx.proc().space.load_int(acc)?;
                // acc is a C int: keep the sum 32-bit-safe.
                ctx.proc().space.store_int(acc, a + iv % 3)?;
                iv += 1;
            }
            self.result = Some(ctx.proc().space.load_int(acc)?);
            ctx.leave(f)?;
            Ok(Flow::Done)
        }

        fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
            Ok(vec![("sum".into(), self.result.unwrap_or(-1).to_string())])
        }
    }

    fn expected_sum(limit: i64) -> String {
        (0..limit).map(|i| i % 3).sum::<i64>().to_string()
    }

    #[test]
    fn straight_summer() {
        let mut p = Summer::new(100);
        let (r, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        assert_eq!(r[0].1, expected_sum(100));
    }

    #[test]
    fn migrated_summer_every_point() {
        for at in [1u64, 37, 99] {
            let run = run_migrating(
                || Summer::new(100),
                Architecture::dec5000(),
                Architecture::sparc20(),
                hpm_net::NetworkModel::instant(),
                Trigger::AtPollCount(at),
            )
            .unwrap();
            assert_eq!(run.results[0].1, expected_sum(100), "trigger at {at}");
            assert_eq!(run.report.chain_depth, 1);
        }
    }

    #[test]
    fn trigger_never_fires_is_an_error_for_run_migrating() {
        // Limit reached before the trigger: the driver reports it.
        let r = run_migrating(
            || Summer::new(5),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::instant(),
            Trigger::AtPollCount(1000),
        );
        assert!(matches!(r, Err(MigError::Protocol(_))));
    }

    #[test]
    fn run_to_migration_freezes_state() {
        let mut p = Summer::new(100);
        let mut src =
            run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(50)).unwrap();
        assert_eq!(src.pending.len(), 1);
        assert_eq!(src.pending[0].function, "main");
        assert_eq!(src.pending[0].poll_point, PP_LOOP);
        // Collection is repeatable.
        let (p1, e1, _) = src.collect().unwrap();
        let (p2, e2, _) = src.collect().unwrap();
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
        assert_eq!(e1.frames[0].live_count, 2);
    }

    #[test]
    fn resume_from_corrupt_image_fails() {
        let mut p = Summer::new(100);
        let mut src =
            run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(50)).unwrap();
        let image = src.to_image().unwrap();
        let mut dst = Summer::new(100);
        assert!(resume_from_image(&mut dst, Architecture::sparc20(), &image[..8]).is_err());
    }

    #[test]
    fn cluster_runs_summer() {
        use crate::cluster::TwoMachineCluster;
        let cluster = TwoMachineCluster::paper_heterogeneous();
        // Large limit so the request (delivered immediately) lands while
        // the loop is still running.
        let report = cluster.run(|| Summer::new(2_000_000), 0).unwrap();
        assert_eq!(report.results[0].1, expected_sum(2_000_000));
        assert!(report.image_bytes > 0);
        assert!(report.src_polls >= 1);
    }
}
