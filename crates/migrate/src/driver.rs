//! Single-pair migration driver: run, migrate, resume, report.
//!
//! Produces the paper's headline measurement triplet — **Collect**, **Tx**,
//! **Restore** (Table 1: "We define process migration time as the total of
//! data collection (Collect), transmission (Tx), and restoration (Restore)
//! time") — plus every §4.2 instrumentation counter.

use crate::ctx::{
    collect_pending, collect_pending_parallel, collect_pending_parallel_flight,
    collect_pending_streamed, collect_pending_streamed_flight, collect_pending_traced,
    pending_exec_state, MigCtx, MigratableProgram, PendingFrame,
};
use crate::exec::ExecutionState;
use crate::process::{Process, Trigger};
use crate::{Flow, MigError};
use hpm_arch::Architecture;
use hpm_core::image::{frame_image, frame_image_prefix, unframe_image, ImageHeader};
use hpm_core::{
    audit_registry, ChunkPayload, ChunkSource, CollectStats, CoreError, MsrltStats,
    RegistryAuditStats, RegistryFinding, RestoreStats, ShardReport, IMAGE_VERSION,
};
use hpm_net::{
    channel_pair, ArqConfig, ArqSenderStats, ChunkReceiver, ChunkSender, FaultPlan, FaultStats,
    FaultyEndpoint, NetError, NetworkModel, ReliableChunkReceiver, ReliableChunkSender,
    TransferSnapshot, WireCodec,
};
use hpm_obs::{
    render_groups, snapshot, FlightDump, FlightRecorder, Histogram, HistogramSnapshot, StatField,
    StatGroup, TraceLog, Tracer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything measured about one migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Total migration image size in bytes (header + exec + memory).
    pub image_bytes: u64,
    /// Memory-state payload bytes (the ΣDᵢ quantity of §4.2).
    pub memory_bytes: u64,
    /// Wall time of the data-collection phase.
    pub collect_time: Duration,
    /// Modeled transmission time over the chosen link.
    pub tx_time: Duration,
    /// Wall time of the restoration phase (sum over `restore_frame`s).
    pub restore_time: Duration,
    /// Collection counters.
    pub collect_stats: CollectStats,
    /// Source MSRLT counters during collection (searches, steps, time).
    pub src_msrlt: MsrltStats,
    /// Restoration counters.
    pub restore_stats: RestoreStats,
    /// Destination MSRLT counters during restoration + resumed run.
    pub dst_msrlt: MsrltStats,
    /// Poll-points executed on the source before migration.
    pub src_polls: u64,
    /// Call-chain depth at the migration point.
    pub chain_depth: usize,
    /// Wire-level transfer accounting (the `Tx` column comes from here).
    pub transfer: TransferSnapshot,
    /// Full event trace of the migration, when one was requested via
    /// [`run_migrating_traced`]; `None` for untraced runs.
    pub trace: Option<TraceLog>,
    /// Pipeline measurements, for runs through
    /// [`run_migrating_pipelined`]; `None` for monolithic runs.
    pub pipeline: Option<PipelineStats>,
    /// Fault-recovery measurements, for runs through
    /// [`run_migrating_resilient`]; `None` otherwise.
    pub recovery: Option<RecoveryStats>,
    /// Pre-flight registry-audit counters, for drivers that audit the
    /// MSRLT snapshot before collecting; `None` for paths that skip it.
    pub registry_audit: Option<RegistryAuditStats>,
    /// Per-shard parallel-collection accounting, for runs through
    /// [`run_migrating_parallel`]; `None` for sequential collection.
    pub shards: Option<ShardReport>,
    /// Per-shard parallel-restoration accounting; `None` when every
    /// frame restored sequentially.
    pub restore_shards: Option<ShardReport>,
    /// What the adaptive planner decided for this run; `None` for
    /// drivers that don't consult it.
    pub plan: Option<MigrationPlan>,
    /// Flight-recorder dump captured when the run hit a fallback path;
    /// `None` for clean runs (the recorder stays bounded and unread).
    pub flight: Option<FlightDump>,
}

impl MigrationReport {
    /// Total migration time: Collect + Tx + Restore (Table 1's metric).
    pub fn migration_time(&self) -> Duration {
        self.collect_time + self.tx_time + self.restore_time
    }

    /// Modeled transmission time in nanoseconds, from the wire accounting.
    pub fn modeled_tx_nanos(&self) -> u64 {
        self.transfer.modeled_tx_nanos
    }

    /// Every counter group in the report, in render order.
    pub fn stat_groups(&self) -> Vec<(String, Vec<StatField>)> {
        let mut groups = vec![
            snapshot(&self.collect_stats),
            ("msrlt.src".to_string(), self.src_msrlt.fields()),
            snapshot(&self.transfer),
            snapshot(&self.restore_stats),
            ("msrlt.dst".to_string(), self.dst_msrlt.fields()),
        ];
        if let Some(p) = &self.pipeline {
            groups.push(snapshot(p));
        }
        if let Some(r) = &self.recovery {
            groups.push(snapshot(r));
        }
        if let Some(a) = &self.registry_audit {
            groups.push(snapshot(a));
        }
        if let Some(s) = &self.shards {
            groups.push(snapshot(s));
        }
        if let Some(s) = &self.restore_shards {
            // Rename the group so collect- and restore-side shard
            // accounting stay distinguishable in one report.
            groups.push(("parallel.restore".to_string(), s.fields()));
        }
        groups
    }

    /// Human-readable rendering of every counter group (one aligned
    /// table, shared with `paper_tables` output).
    pub fn render(&self) -> String {
        render_groups(&self.stat_groups())
    }
}

/// Result of a migrated run.
#[derive(Debug, Clone)]
pub struct MigrationRun {
    /// Measurements.
    pub report: MigrationReport,
    /// Result digest produced by the destination process.
    pub results: Vec<(String, String)>,
}

/// Shared tail of every driver: attach each of the report's StatGroups
/// to the trace log when a tracer ran, then wrap up the run. The four
/// drivers all finish through here instead of hand-rolling attachment.
fn report_migration(
    tracer: &Tracer,
    mut report: MigrationReport,
    results: Vec<(String, String)>,
) -> MigrationRun {
    if tracer.enabled() {
        let mut log = tracer.take_log();
        for (group, fields) in report.stat_groups() {
            log.attach_stats(group, fields);
        }
        report.trace = Some(log);
    }
    MigrationRun { report, results }
}

/// The migration-image header for a frozen process (shared by every
/// driver and by [`MigratedSource`]).
fn image_header(proc: &Process) -> ImageHeader {
    ImageHeader {
        version: IMAGE_VERSION,
        source_arch: proc.space.arch().name.to_string(),
        source_pointer_size: proc.space.arch().pointer_size as u32,
        program: proc.program().to_string(),
        registered_bytes: proc.msrlt.registered_bytes(),
    }
}

/// Shared driver preamble: run `prog` on `proc` until its trigger fires,
/// returning the frozen process and the recorded unwind frames.
fn run_to_parts<'p, P: MigratableProgram>(
    prog: &mut P,
    proc: &'p mut Process,
) -> Result<(&'p mut Process, Vec<PendingFrame>), MigError> {
    let mut ctx = MigCtx::new_run(proc);
    let flow = prog.run(&mut ctx)?;
    if flow == Flow::Done {
        return Err(MigError::Protocol(
            "trigger never fired; program completed on the source".into(),
        ));
    }
    ctx.into_parts()
}

/// Best-effort persistence of a flight dump for CI forensics: when
/// `HPM_FLIGHT_DUMP` names a path, the dump's JSONL is written there.
/// Failures are swallowed — the dump is diagnostic, never load-bearing.
fn persist_flight_dump(dump: &FlightDump) {
    if let Ok(path) = std::env::var("HPM_FLIGHT_DUMP") {
        if !path.is_empty() {
            let _ = std::fs::write(path, dump.to_jsonl());
        }
    }
}

/// Run a program to completion with no migration; returns its results.
pub fn run_straight<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
) -> Result<(Vec<(String, String)>, Process), MigError> {
    let mut proc = Process::new(program.name(), arch);
    program.setup(&mut proc)?;
    let mut ctx = MigCtx::new_run(&mut proc);
    match program.run(&mut ctx)? {
        Flow::Done => {}
        Flow::Migrate => {
            return Err(MigError::Protocol(
                "program migrated with Trigger::Never".into(),
            ))
        }
    }
    let results = program.results(&mut proc)?;
    Ok((results, proc))
}

/// A source process stopped at its migration point, ready to collect.
///
/// Benchmarks use this to measure collection repeatedly over one frozen
/// process image (collection does not modify the process).
#[derive(Debug)]
pub struct MigratedSource {
    /// The frozen source process.
    pub proc: Process,
    /// The recorded unwind frames, innermost first.
    pub pending: Vec<crate::ctx::PendingFrame>,
}

/// Run a program until its trigger fires, returning the frozen process
/// and the pending frames (without collecting yet).
pub fn run_to_migration<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    trigger: Trigger,
) -> Result<MigratedSource, MigError> {
    let mut proc = Process::new(program.name(), arch);
    proc.set_trigger(trigger);
    program.setup(&mut proc)?;
    let mut ctx = MigCtx::new_run(&mut proc);
    let flow = program.run(&mut ctx)?;
    if flow == Flow::Done {
        return Err(MigError::Protocol("trigger never fired".into()));
    }
    let pending = ctx.into_pending_frames()?;
    Ok(MigratedSource { proc, pending })
}

impl MigratedSource {
    /// Collect the memory-state payload once (repeatable).
    pub fn collect(&mut self) -> Result<(Vec<u8>, ExecutionState, CollectStats), MigError> {
        collect_pending(&mut self.proc, &self.pending)
    }

    /// Collect with `workers` parallel shards; byte-identical to
    /// [`MigratedSource::collect`] and equally repeatable.
    pub fn collect_parallel(
        &mut self,
        workers: usize,
    ) -> Result<(Vec<u8>, ExecutionState, CollectStats), MigError> {
        collect_pending_parallel(&mut self.proc, &self.pending, workers)
    }

    /// Audit the frozen process's MSRLT snapshot without collecting —
    /// the same pre-flight check the migrating drivers run, exposed for
    /// benchmarks and `hpm-lint`'s runtime-registry pass.
    pub fn preflight_audit(
        &mut self,
    ) -> Result<(Vec<RegistryFinding>, RegistryAuditStats), MigError> {
        preflight_audit(&mut self.proc)
    }

    /// Frame a complete migration image from a fresh collection.
    pub fn to_image(&mut self) -> Result<Vec<u8>, MigError> {
        let (payload, exec, _) = self.collect()?;
        let header = ImageHeader {
            version: IMAGE_VERSION,
            source_arch: self.proc.space.arch().name.to_string(),
            source_pointer_size: self.proc.space.arch().pointer_size as u32,
            program: self.proc.program().to_string(),
            registered_bytes: self.proc.msrlt.registered_bytes(),
        };
        Ok(frame_image(&header, &exec.encode(), &payload))
    }

    /// The same migration image as [`MigratedSource::to_image`], but as
    /// the pipelined path would ship it: the image prefix (header + exec
    /// state) as chunk 0, then the payload in `chunk_bytes`-sized chunks.
    /// Concatenating the chunks reproduces `to_image` byte-for-byte.
    pub fn to_chunks(
        &mut self,
        chunk_bytes: usize,
    ) -> Result<(Vec<Vec<u8>>, CollectStats), MigError> {
        let header = ImageHeader {
            version: IMAGE_VERSION,
            source_arch: self.proc.space.arch().name.to_string(),
            source_pointer_size: self.proc.space.arch().pointer_size as u32,
            program: self.proc.program().to_string(),
            registered_bytes: self.proc.msrlt.registered_bytes(),
        };
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        let exec = pending_exec_state(&self.proc, &self.pending);
        chunks.push(frame_image_prefix(&header, &exec.encode()));
        let (exec2, stats) = collect_pending_streamed(
            &mut self.proc,
            &self.pending,
            chunk_bytes,
            &Tracer::disabled(),
            Box::new(|c| {
                chunks.push(c);
                Ok(())
            }),
        )?;
        debug_assert_eq!(exec, exec2);
        Ok((chunks, stats))
    }
}

/// Run the registry audit over a process's MSRLT snapshot, surfacing
/// the findings instead of failing. Audit lookups run *before* the
/// per-migration stat reset, so they never pollute `msrlt.src` counters.
pub fn preflight_audit(
    proc: &mut Process,
) -> Result<(Vec<RegistryFinding>, RegistryAuditStats), MigError> {
    Ok(audit_registry(&mut proc.space, &mut proc.msrlt)?)
}

/// Pre-flight gate used by the migrating drivers: audit the registry and
/// refuse to collect (with [`MigError::Preflight`]) if it is incoherent.
fn require_clean_registry(proc: &mut Process) -> Result<RegistryAuditStats, MigError> {
    let (findings, stats) = preflight_audit(proc)?;
    if findings.is_empty() {
        Ok(stats)
    } else {
        let msg = findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        Err(MigError::Preflight(msg))
    }
}

/// Collect a migration image from a process that has unwound for
/// migration. Returns (image bytes, collect wall time, stats, exec,
/// pre-flight audit stats).
pub fn collect_image(
    ctx: MigCtx<'_>,
) -> Result<
    (
        Vec<u8>,
        Duration,
        CollectStats,
        ExecutionState,
        RegistryAuditStats,
    ),
    MigError,
> {
    collect_image_traced(ctx, &Tracer::disabled())
}

/// [`collect_image`] with the collection DFS traced (`msrlt.search`
/// spans, `collect.block` instants) on `tracer`.
pub fn collect_image_traced(
    ctx: MigCtx<'_>,
    tracer: &Tracer,
) -> Result<
    (
        Vec<u8>,
        Duration,
        CollectStats,
        ExecutionState,
        RegistryAuditStats,
    ),
    MigError,
> {
    let (proc, pending) = ctx.into_parts()?;
    let audit = require_clean_registry(proc)?;
    proc.msrlt.reset_stats();
    let t0 = Instant::now();
    let (payload, exec, stats) = collect_pending_traced(proc, &pending, tracer)?;
    let collect_time = t0.elapsed();
    let header = ImageHeader {
        version: IMAGE_VERSION,
        source_arch: proc.space.arch().name.to_string(),
        source_pointer_size: proc.space.arch().pointer_size as u32,
        program: proc.program().to_string(),
        registered_bytes: proc.msrlt.registered_bytes(),
    };
    let image = frame_image(&header, &exec.encode(), &payload);
    Ok((image, collect_time, stats, exec, audit))
}

/// What [`resume_from_image`] yields: results, the completed process,
/// restoration stats, and restoration wall time.
pub type ResumeOutcome = (Vec<(String, String)>, Process, RestoreStats, Duration);

/// Resume a program from a migration image on a fresh process.
///
/// Returns the completed program's results plus restoration measurements.
pub fn resume_from_image<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    image: &[u8],
) -> Result<ResumeOutcome, MigError> {
    resume_from_image_traced(program, arch, image, &Tracer::disabled())
}

/// [`resume_from_image`] with restoration traced: each `restore_frame`
/// emits a `restore` span carrying nested block/alloc events.
pub fn resume_from_image_traced<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    image: &[u8],
    tracer: &Tracer,
) -> Result<ResumeOutcome, MigError> {
    let (header, exec_bytes, payload) = unframe_image(image)?;
    if header.program != program.name() {
        return Err(MigError::Protocol(format!(
            "image is for program '{}', not '{}'",
            header.program,
            program.name()
        )));
    }
    let exec = ExecutionState::decode(&exec_bytes)?;
    let mut proc = Process::new(program.name(), arch);
    proc.space.reserve_heap_bytes(header.registered_bytes);
    program.setup(&mut proc)?;
    proc.msrlt.reset_stats();
    let mut ctx = MigCtx::new_resume(&mut proc, exec, payload);
    ctx.set_tracer(tracer.clone());
    match program.run(&mut ctx)? {
        Flow::Done => {}
        Flow::Migrate => return Err(MigError::Protocol("resumed program migrated again".into())),
    }
    let (rstats, rtime) = ctx.restore_totals().ok_or_else(|| {
        MigError::Protocol("program finished without restoring all frames".into())
    })?;
    let results = program.results(&mut proc)?;
    Ok((results, proc, rstats, rtime))
}

/// Full migration experiment: run on `src_arch`, migrate at `trigger`
/// over `link`, resume on `dst_arch`, return results + report.
///
/// `make` constructs a fresh program value for each side (the two sides
/// are separate processes running the same executable).
pub fn run_migrating<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
) -> Result<MigrationRun, MigError> {
    run_migrating_traced(make, src_arch, dst_arch, link, trigger, &Tracer::disabled())
}

/// [`run_migrating`] with a [`Tracer`] attached to every phase.
///
/// With an enabled tracer, the run emits nested phase spans — `collect`
/// (containing `msrlt.search` spans and `collect.block` instants), `tx`
/// (containing the channel's `net.send`/`net.recv` spans), and `restore`
/// per frame (containing `restore.block`/`restore.alloc` instants) — and
/// the report carries the drained [`TraceLog`] with every counter group
/// attached, ready for [`hpm_obs::chrome_trace_json`].
pub fn run_migrating_traced<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    tracer: &Tracer,
) -> Result<MigrationRun, MigError> {
    let recorder = FlightRecorder::new();
    run_migrating_recorded(make, src_arch, dst_arch, link, trigger, tracer, &recorder)
        .inspect_err(|_| persist_flight_dump(&recorder.dump()))
}

/// [`run_migrating_traced`] with a caller-supplied [`FlightRecorder`], so
/// the caller can inspect (or dump) the recorded events even when the run
/// fails — the post-mortem entry point the fault soak uses.
pub fn run_migrating_recorded<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    tracer: &Tracer,
    recorder: &FlightRecorder,
) -> Result<MigrationRun, MigError> {
    let driver_track = recorder.track("driver");
    // --- source side ---
    let mut src_prog = make();
    let mut src = Process::new(src_prog.name(), src_arch);
    src.set_trigger(trigger);
    src_prog.setup(&mut src)?;
    let mut ctx = MigCtx::new_run(&mut src);
    let flow = src_prog.run(&mut ctx)?;
    if flow == Flow::Done {
        return Err(MigError::Protocol(
            "trigger never fired; program completed on the source".into(),
        ));
    }
    tracer.begin("collect");
    let (image, collect_time, collect_stats, exec, registry_audit) =
        collect_image_traced(ctx, tracer)?;
    tracer.end_args("collect", &[("image_bytes", image.len() as f64)]);
    driver_track.event(
        "phase.collect",
        &[
            ("image_bytes", image.len() as u64),
            ("blocks", collect_stats.blocks_saved),
        ],
    );
    let src_msrlt = src.msrlt.stats();
    driver_track.event("msrlt.evictions", &[("count", src_msrlt.cache_evictions)]);
    let src_polls = src.poll_count();
    let chain_depth = exec.depth();
    let memory_bytes = collect_stats.bytes_out;

    // --- the wire: ship the image through a modeled channel so the Tx
    // column comes from the same accounting the cluster path uses ---
    tracer.begin("tx");
    let (src_end, dst_end) = channel_pair(link);
    let src_end = src_end.with_tracer(tracer.clone());
    let dst_end = dst_end.with_tracer(tracer.clone());
    src_end.send(image)?;
    let image = dst_end.recv()?;
    let transfer = src_end.stats().snapshot();
    let tx_time = transfer.modeled_tx_time();
    tracer.end_args("tx", &[("modeled_ns", transfer.modeled_tx_nanos as f64)]);
    driver_track.event("phase.tx", &[("bytes", transfer.bytes_sent)]);

    // --- destination side ---
    let mut dst_prog = make();
    let (results, dst, restore_stats, restore_time) =
        resume_from_image_traced(&mut dst_prog, dst_arch, &image, tracer)?;
    let dst_msrlt = dst.msrlt.stats();
    driver_track.event(
        "phase.restore",
        &[
            ("bytes_in", restore_stats.bytes_in),
            ("blocks", restore_stats.blocks_restored),
        ],
    );

    let report = MigrationReport {
        image_bytes: image.len() as u64,
        memory_bytes,
        collect_time,
        tx_time,
        restore_time,
        collect_stats,
        src_msrlt,
        restore_stats,
        dst_msrlt,
        src_polls,
        chain_depth,
        transfer,
        trace: None,
        pipeline: None,
        recovery: None,
        registry_audit: Some(registry_audit),
        shards: None,
        restore_shards: None,
        plan: None,
        flight: None,
    };
    Ok(report_migration(tracer, report, results))
}

/// Registered-bytes floor for sharded collection *and* restoration.
///
/// Calibrated from the checked-in benchmarks: with 4 workers, thread
/// spawn plus the claim pre-pass and deterministic splice cost more
/// than the whole sequential DFS on every paper workload (all well
/// under this mark) — `BENCH_2e672c5` records 4-shard collection losing
/// to sequential across the board. Above the cutoff, per-block encode
/// work dominates and sharding wins.
pub const PARALLEL_BYTES_CUTOFF: u64 = 8 * 1024 * 1024;

/// Registered-bytes floor for v3 (compressed) framing: an image smaller
/// than this saves too few wire bytes to pay the per-frame `raw_len`
/// header and compressor latency.
pub const COMPRESS_BYTES_CUTOFF: u64 = 4 * 1024;

/// Payload bytes per wire frame on the monolithic chunked path.
pub const WIRE_CHUNK_BYTES: usize = 32 * 1024;

/// What the adaptive planner decided for one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Registered bytes the decision was made from (known before
    /// collection starts; the image header carries the same number).
    pub registered_bytes: u64,
    /// Collection/restoration shards (1 = sequential).
    pub workers: usize,
    /// Frame codec for the shipped image.
    pub codec: WireCodec,
}

impl MigrationPlan {
    /// A fixed plan that bypasses the adaptive cutoffs — benchmarks and
    /// tests use this to exercise a specific arm (e.g. forced 4-shard
    /// compressed) regardless of workload size.
    pub fn forced(workers: usize, codec: WireCodec) -> Self {
        MigrationPlan {
            registered_bytes: 0,
            workers: workers.max(1),
            codec,
        }
    }
}

/// The adaptive planner: choose sequential-vs-sharded and
/// stored-vs-compressed per migration from the registered-byte count.
pub fn plan_migration(registered_bytes: u64, requested_workers: usize) -> MigrationPlan {
    let workers = if registered_bytes >= PARALLEL_BYTES_CUTOFF {
        requested_workers.max(1)
    } else {
        1
    };
    let codec = if registered_bytes >= COMPRESS_BYTES_CUTOFF {
        WireCodec::V3
    } else {
        WireCodec::V2
    };
    MigrationPlan {
        registered_bytes,
        workers,
        codec,
    }
}

/// [`resume_from_image`] with monolithic restoration sharded across
/// `workers` threads (see [`MigCtx::set_restore_workers`]); the restored
/// process is byte-identical to the sequential path's. Also returns the
/// per-shard accounting when any frame actually sharded.
pub fn resume_from_image_parallel<P: MigratableProgram>(
    program: &mut P,
    arch: Architecture,
    image: &[u8],
    workers: usize,
) -> Result<(ResumeOutcome, Option<ShardReport>), MigError> {
    let (header, exec_bytes, payload) = unframe_image(image)?;
    if header.program != program.name() {
        return Err(MigError::Protocol(format!(
            "image is for program '{}', not '{}'",
            header.program,
            program.name()
        )));
    }
    let exec = ExecutionState::decode(&exec_bytes)?;
    let mut proc = Process::new(program.name(), arch);
    proc.space.reserve_heap_bytes(header.registered_bytes);
    program.setup(&mut proc)?;
    proc.msrlt.reset_stats();
    let mut ctx = MigCtx::new_resume(&mut proc, exec, payload);
    ctx.set_restore_workers(workers);
    match program.run(&mut ctx)? {
        Flow::Done => {}
        Flow::Migrate => return Err(MigError::Protocol("resumed program migrated again".into())),
    }
    let (rstats, rtime) = ctx.restore_totals().ok_or_else(|| {
        MigError::Protocol("program finished without restoring all frames".into())
    })?;
    let shards = ctx.restore_shards();
    let results = program.results(&mut proc)?;
    Ok(((results, proc, rstats, rtime), shards))
}

/// [`run_migrating`] with sharded parallel collection *and* restoration,
/// gated by the adaptive planner: below [`PARALLEL_BYTES_CUTOFF`] both
/// phases fall back to the sequential path (where sharding's spawn and
/// splice overhead loses), and the image ships v3-compressed once past
/// [`COMPRESS_BYTES_CUTOFF`]. The shipped image and the restored process
/// are byte-identical to the sequential driver's in every configuration.
pub fn run_migrating_parallel<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    workers: usize,
) -> Result<MigrationRun, MigError> {
    let recorder = FlightRecorder::new();
    run_migrating_parallel_recorded(make, src_arch, dst_arch, link, trigger, workers, &recorder)
        .inspect_err(|_| persist_flight_dump(&recorder.dump()))
}

/// [`run_migrating_parallel`] with a caller-supplied [`FlightRecorder`].
pub fn run_migrating_parallel_recorded<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    workers: usize,
    recorder: &FlightRecorder,
) -> Result<MigrationRun, MigError> {
    run_migrating_with_plan(
        make,
        src_arch,
        dst_arch,
        link,
        trigger,
        workers,
        plan_migration,
        recorder,
    )
}

/// [`run_migrating_parallel`] with a caller-fixed [`MigrationPlan`]
/// instead of the adaptive planner: benchmarks and tests use this to
/// measure or exercise one specific arm regardless of workload size.
/// The plan's `registered_bytes` is replaced with the actual count.
pub fn run_migrating_planned<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    plan: MigrationPlan,
) -> Result<MigrationRun, MigError> {
    let recorder = FlightRecorder::new();
    run_migrating_planned_recorded(make, src_arch, dst_arch, link, trigger, plan, &recorder)
        .inspect_err(|_| persist_flight_dump(&recorder.dump()))
}

/// [`run_migrating_planned`] with a caller-supplied [`FlightRecorder`].
pub fn run_migrating_planned_recorded<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    plan: MigrationPlan,
    recorder: &FlightRecorder,
) -> Result<MigrationRun, MigError> {
    run_migrating_with_plan(
        make,
        src_arch,
        dst_arch,
        link,
        trigger,
        plan.workers,
        move |bytes, _| MigrationPlan {
            registered_bytes: bytes,
            ..plan
        },
        recorder,
    )
}

/// Shared body of the adaptive/planned monolithic drivers.
#[allow(clippy::too_many_arguments)]
fn run_migrating_with_plan<P: MigratableProgram>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    workers: usize,
    planner: impl FnOnce(u64, usize) -> MigrationPlan,
    recorder: &FlightRecorder,
) -> Result<MigrationRun, MigError> {
    let driver_track = recorder.track("driver");
    let collect_track = recorder.track("collect");
    // --- source side ---
    let mut src_prog = make();
    let mut src = Process::new(src_prog.name(), src_arch);
    src.set_trigger(trigger);
    src_prog.setup(&mut src)?;
    let (proc, pending) = run_to_parts(&mut src_prog, &mut src)?;
    let registry_audit = require_clean_registry(proc)?;
    proc.msrlt.reset_stats();
    let plan = planner(proc.msrlt.registered_bytes(), workers);
    driver_track.event(
        "plan",
        &[
            ("registered_bytes", plan.registered_bytes),
            ("workers", plan.workers as u64),
            ("compressed", (plan.codec == WireCodec::V3) as u64),
        ],
    );
    let t0 = Instant::now();
    let (payload, exec, collect_stats, shards) = if plan.workers > 1 {
        let (p, e, c, s) =
            collect_pending_parallel_flight(proc, &pending, plan.workers, Some(&collect_track))?;
        (p, e, c, Some(s))
    } else {
        // Below the planner's cutoff the sharded path loses to the
        // plain DFS: collect sequentially.
        let (p, e, c) = collect_pending(proc, &pending)?;
        (p, e, c, None)
    };
    let collect_time = t0.elapsed();
    let header = image_header(proc);
    let image = frame_image(&header, &exec.encode(), &payload);
    driver_track.event(
        "phase.collect",
        &[
            ("image_bytes", image.len() as u64),
            ("workers", plan.workers as u64),
        ],
    );
    let src_msrlt = src.msrlt.stats();
    let src_polls = src.poll_count();
    let chain_depth = exec.depth();
    let memory_bytes = collect_stats.bytes_out;

    // --- the wire: the image ships in fixed-size chunks so the plan's
    // codec applies per frame; concatenating the received chunks
    // reproduces the image byte-for-byte. ---
    let (src_end, dst_end) = channel_pair(link);
    let mut sender = ChunkSender::new(&src_end).with_codec(plan.codec);
    for part in image.chunks(WIRE_CHUNK_BYTES) {
        sender.send(part)?;
    }
    sender.finish()?;
    let mut rx = ChunkReceiver::new(dst_end);
    let mut shipped = Vec::with_capacity(image.len());
    while let Some(chunk) = rx.recv_chunk().map_err(MigError::from)? {
        shipped.extend_from_slice(&chunk);
    }
    let transfer = src_end.stats().snapshot();
    let tx_time = transfer.modeled_tx_time();
    driver_track.event(
        "phase.tx",
        &[
            ("bytes", transfer.bytes_sent),
            ("raw_payload", transfer.raw_payload_bytes),
            ("wire_payload", transfer.wire_payload_bytes),
        ],
    );

    // --- destination side ---
    let mut dst_prog = make();
    let ((results, dst, restore_stats, restore_time), restore_shards) =
        resume_from_image_parallel(&mut dst_prog, dst_arch, &shipped, plan.workers)?;
    let dst_msrlt = dst.msrlt.stats();
    driver_track.event("phase.restore", &[("bytes_in", restore_stats.bytes_in)]);

    let report = MigrationReport {
        image_bytes: shipped.len() as u64,
        memory_bytes,
        collect_time,
        tx_time,
        restore_time,
        collect_stats,
        src_msrlt,
        restore_stats,
        dst_msrlt,
        src_polls,
        chain_depth,
        transfer,
        trace: None,
        pipeline: None,
        recovery: None,
        registry_audit: Some(registry_audit),
        shards,
        restore_shards,
        plan: Some(plan),
        flight: None,
    };
    Ok(report_migration(&Tracer::disabled(), report, results))
}

/// Tunables for the pipelined migration path.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Payload bytes per chunk — the collector's flush watermark.
    pub chunk_bytes: usize,
    /// Pace the wire in real time: each chunk's modeled transmission
    /// time is slept before delivery, so the destination experiences the
    /// link and wall-clock overlap becomes observable.
    pub pace: bool,
    /// Scale on the per-chunk pacing sleep (`0.01` runs a 10 Mb/s
    /// experiment 100× faster while preserving relative timing).
    pub pace_scale: f64,
    /// Frame codec for the chunk stream (default v2/stored; pass
    /// [`WireCodec::V3`] to compress each chunk on the wire).
    pub codec: WireCodec,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunk_bytes: 32 * 1024,
            pace: true,
            pace_scale: 1.0,
            codec: WireCodec::default(),
        }
    }
}

impl PipelineConfig {
    /// This configuration with v3 (compressed) framing.
    pub fn compressed(mut self) -> Self {
        self.codec = WireCodec::V3;
        self
    }
}

/// Measurements specific to a pipelined (chunk-streamed) migration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Frames on the wire: image prefix + payload chunks + terminator.
    pub chunks: u64,
    /// Configured payload bytes per chunk.
    pub chunk_bytes: u64,
    /// Wall time of the collection DFS (source thread busy time).
    pub collect_time: Duration,
    /// Modeled transmission time over the link.
    pub tx_time: Duration,
    /// Wall time inside `restore_frame`, stall included.
    pub restore_time: Duration,
    /// Portion of `restore_time` spent blocked waiting for chunks.
    pub restore_stall: Duration,
    /// Wall time from the start of collection until the final
    /// `restore_frame` completed on the destination.
    pub e2e_time: Duration,
    /// Per-chunk encode latency (nanoseconds between successive chunks
    /// leaving the collector), as a log-bucketed distribution.
    pub encode_lat: HistogramSnapshot,
    /// Per-chunk decode latency (nanoseconds the restorer spent between
    /// finishing one chunk and requesting the next).
    pub decode_lat: HistogramSnapshot,
}

impl PipelineStats {
    /// Restoration time actually spent decoding (stall excluded).
    pub fn restore_busy(&self) -> Duration {
        self.restore_time.saturating_sub(self.restore_stall)
    }

    /// What the monolithic path would cost: Collect + Tx + Restore run
    /// strictly one after another (Table 1's sum).
    pub fn serial_time(&self) -> Duration {
        self.collect_time + self.tx_time + self.restore_busy()
    }

    /// How much of the serial sum the pipeline hid by overlapping:
    /// `1 − e2e/serial`, clamped at 0. Only meaningful for paced runs
    /// (unpaced runs hide the whole modeled Tx trivially).
    pub fn overlap_ratio(&self) -> f64 {
        let serial = self.serial_time().as_secs_f64();
        if serial <= 0.0 {
            return 0.0;
        }
        (1.0 - self.e2e_time.as_secs_f64() / serial).max(0.0)
    }
}

impl StatGroup for PipelineStats {
    fn group(&self) -> &'static str {
        "pipeline"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("chunks", self.chunks),
            StatField::bytes("chunk_bytes", self.chunk_bytes),
            StatField::duration("collect_time", self.collect_time),
            StatField::duration("tx_time", self.tx_time),
            StatField::duration("restore_time", self.restore_time),
            StatField::duration("restore_stall", self.restore_stall),
            StatField::duration("e2e_time", self.e2e_time),
            StatField::ratio("overlap_ratio", self.overlap_ratio()),
            StatField::duration("encode_p50", Duration::from_nanos(self.encode_lat.p50())),
            StatField::duration("encode_p99", Duration::from_nanos(self.encode_lat.p99())),
            StatField::duration("decode_p50", Duration::from_nanos(self.decode_lat.p50())),
            StatField::duration("decode_p99", Duration::from_nanos(self.decode_lat.p99())),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.chunks += other.chunks;
        self.chunk_bytes = self.chunk_bytes.max(other.chunk_bytes);
        self.collect_time += other.collect_time;
        self.tx_time += other.tx_time;
        self.restore_time += other.restore_time;
        self.restore_stall += other.restore_stall;
        self.e2e_time += other.e2e_time;
        self.encode_lat.merge(&other.encode_lat);
        self.decode_lat.merge(&other.decode_lat);
    }
}

/// Adapter: a net-layer [`ChunkReceiver`] as the restorer's
/// [`ChunkSource`], mapping transport failures into the stream layer.
/// The gap between returning one chunk and being asked for the next is
/// the restorer's per-chunk decode latency — observed into `decode_lat`.
struct NetChunkSource {
    rx: ChunkReceiver,
    decode_lat: Arc<Histogram>,
    last_return: Option<Instant>,
}

impl ChunkSource for NetChunkSource {
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, CoreError> {
        if let Some(t) = self.last_return.take() {
            self.decode_lat.observe(t.elapsed().as_nanos() as u64);
        }
        let r = self
            .rx
            .recv_chunk()
            .map_err(|e| CoreError::Source(e.to_string()));
        self.last_return = Some(Instant::now());
        r
    }
}

/// What the destination thread hands back to the driver.
struct DstOutcome {
    results: Vec<(String, String)>,
    restore_stats: RestoreStats,
    restore_time: Duration,
    restore_stall: Duration,
    msrlt: MsrltStats,
    done_at: Option<Instant>,
}

/// [`run_migrating`], pipelined: collection, transmission, and
/// restoration overlap instead of running strictly in sequence.
///
/// Three stages run concurrently — the source thread flushes the DFS
/// stream in [`PipelineConfig::chunk_bytes`]-sized chunks as it
/// traverses, a wire thread paces each chunk by its modeled transmission
/// time, and the destination thread restores frame *k* while chunk *k+1*
/// is still in flight. The image prefix (header + execution state)
/// travels as chunk 0, before any payload exists, so the destination
/// re-enters the call chain while the source is still collecting.
///
/// The report carries the usual Collect/Tx/Restore triplet plus
/// [`PipelineStats`], whose `overlap_ratio` compares the pipelined
/// end-to-end wall time against the serial sum.
pub fn run_migrating_pipelined<P: MigratableProgram + Send>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    config: PipelineConfig,
) -> Result<MigrationRun, MigError> {
    let recorder = FlightRecorder::new();
    run_migrating_pipelined_recorded(make, src_arch, dst_arch, link, trigger, config, &recorder)
        .inspect_err(|_| persist_flight_dump(&recorder.dump()))
}

/// [`run_migrating_pipelined`] with a caller-supplied [`FlightRecorder`]:
/// the collector's flushes, both wire ends, and the restorer each log to
/// their own single-writer track, and per-chunk encode/decode latency is
/// observed into the report's [`PipelineStats`] histograms.
pub fn run_migrating_pipelined_recorded<P: MigratableProgram + Send>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    config: PipelineConfig,
    recorder: &FlightRecorder,
) -> Result<MigrationRun, MigError> {
    let driver_track = recorder.track("driver");
    let collect_track = recorder.track("collect");
    let tx_track = recorder.track("net.tx");
    let rx_track = recorder.track("net.rx");
    let restore_track = recorder.track("restore");
    let encode_lat = Arc::new(Histogram::new());
    let decode_lat = Arc::new(Histogram::new());

    // --- source side: run to the migration point ---
    let mut src_prog = make();
    let mut src = Process::new(src_prog.name(), src_arch);
    src.set_trigger(trigger);
    src_prog.setup(&mut src)?;
    let (proc, pending) = run_to_parts(&mut src_prog, &mut src)?;
    let registry_audit = require_clean_registry(proc)?;
    proc.msrlt.reset_stats();

    let header = image_header(proc);
    let exec = pending_exec_state(proc, &pending);
    let chain_depth = exec.depth();
    let prefix = frame_image_prefix(&header, &exec.encode());
    let prefix_len = prefix.len() as u64;
    driver_track.event(
        "phase.collect",
        &[
            ("prefix_bytes", prefix_len),
            ("chain_depth", exec.depth() as u64),
        ],
    );

    let (src_end, dst_end) = channel_pair(link);
    let mut dst_prog = make();
    let (chunk_tx, chunk_rx) = std::sync::mpsc::channel::<Vec<u8>>();

    let t_start = Instant::now();
    let (collect_time, collect_stats, wire_frames, transfer, dst_out) =
        std::thread::scope(|s| -> Result<_, MigError> {
            // Wire stage: pace each chunk by its modeled transmission
            // time, then frame and forward it.
            let wire = s.spawn(move || -> Result<(u32, TransferSnapshot), NetError> {
                let mut sender = ChunkSender::new(&src_end)
                    .with_codec(config.codec)
                    .with_flight(tx_track);
                while let Ok(chunk) = chunk_rx.recv() {
                    if config.pace {
                        let d = link.tx_time(chunk.len() as u64).mul_f64(config.pace_scale);
                        if !d.is_zero() {
                            std::thread::sleep(d);
                        }
                    }
                    sender.send(&chunk)?;
                }
                let frames = sender.finish()?;
                Ok((frames, src_end.stats().snapshot()))
            });

            // Destination stage: parse the prefix, then resume over the
            // still-arriving chunk stream.
            let dst_decode_lat = Arc::clone(&decode_lat);
            let dst = s.spawn(move || -> Result<DstOutcome, MigError> {
                let mut rx = ChunkReceiver::new(dst_end).with_flight(rx_track);
                let first = rx
                    .recv_chunk()
                    .map_err(MigError::from)?
                    .ok_or_else(|| MigError::Protocol("empty migration stream".into()))?;
                let (header, exec_bytes, leftover) = unframe_image(&first)?;
                if header.program != dst_prog.name() {
                    return Err(MigError::Protocol(format!(
                        "image is for program '{}', not '{}'",
                        header.program,
                        dst_prog.name()
                    )));
                }
                let exec = ExecutionState::decode(&exec_bytes)?;
                let mut proc = Process::new(dst_prog.name(), dst_arch);
                proc.space.reserve_heap_bytes(header.registered_bytes);
                dst_prog.setup(&mut proc)?;
                proc.msrlt.reset_stats();
                let chunks = ChunkPayload::with_initial(
                    Box::new(NetChunkSource {
                        rx,
                        decode_lat: dst_decode_lat,
                        last_return: None,
                    }),
                    leftover,
                );
                let mut ctx = MigCtx::new_resume_streaming(&mut proc, exec, chunks);
                ctx.set_flight(restore_track);
                match dst_prog.run(&mut ctx)? {
                    Flow::Done => {}
                    Flow::Migrate => {
                        return Err(MigError::Protocol("resumed program migrated again".into()))
                    }
                }
                let (restore_stats, restore_time) = ctx.restore_totals().ok_or_else(|| {
                    MigError::Protocol("program finished without restoring all frames".into())
                })?;
                let restore_stall = ctx.restore_stall();
                let done_at = ctx.restore_completed_at();
                let results = dst_prog.results(&mut proc)?;
                Ok(DstOutcome {
                    results,
                    restore_stats,
                    restore_time,
                    restore_stall,
                    msrlt: proc.msrlt.stats(),
                    done_at,
                })
            });

            // Source stage (this thread): prefix first, then the
            // collection DFS flushing through the sink. A failed prefix
            // send is folded into the sink-disconnect shape so it flows
            // through the same triage as a mid-collection disconnect.
            let mut collect_time = Duration::ZERO;
            let collect_res = if chunk_tx.send(prefix).is_err() {
                Err(MigError::from(CoreError::Source(
                    "chunk sink disconnected".into(),
                )))
            } else {
                let enc = Arc::clone(&encode_lat);
                let t_collect = Instant::now();
                // Per-chunk encode latency: the gap between successive
                // chunks leaving the collector is the time the DFS spent
                // filling (encoding) the chunk that just flushed.
                let mut last_flush = Instant::now();
                let r = collect_pending_streamed_flight(
                    proc,
                    &pending,
                    config.chunk_bytes,
                    &Tracer::disabled(),
                    Box::new(|c| {
                        enc.observe(last_flush.elapsed().as_nanos() as u64);
                        last_flush = Instant::now();
                        chunk_tx
                            .send(c)
                            .map_err(|_| CoreError::Source("chunk sink disconnected".into()))
                    }),
                    Some(collect_track),
                );
                collect_time = t_collect.elapsed();
                r
            };
            drop(chunk_tx); // end of stream: the wire thread sends LAST

            // Join BOTH workers on every path — before any early return —
            // so no exit leaks a blocked thread or discards its error.
            let dst_res = dst
                .join()
                .map_err(|_| MigError::Protocol("destination thread panicked".into()))?;
            let wire_res = wire
                .join()
                .map_err(|_| MigError::Protocol("wire thread panicked".into()))?;

            // Error priority: a collection failure that is not a mere
            // sink disconnect is the root cause; otherwise the receiving
            // side's error explains why the sink vanished, and only then
            // does a wire-thread failure get the blame.
            let sink_gone = matches!(
                &collect_res,
                Err(MigError::Core(m)) if m.contains("chunk sink disconnected")
            );
            if let Err(e) = &collect_res {
                if !sink_gone {
                    return Err(e.clone());
                }
            }
            let dst_out = dst_res?;
            let (wire_frames, transfer) = wire_res.map_err(MigError::from)?;
            let (_, collect_stats) = collect_res?;
            Ok((collect_time, collect_stats, wire_frames, transfer, dst_out))
        })?;

    let e2e_time = dst_out
        .done_at
        .map(|t| t.saturating_duration_since(t_start))
        .unwrap_or_default();
    let tx_time = transfer.modeled_tx_time();
    driver_track.event("phase.tx", &[("bytes", transfer.bytes_sent)]);
    driver_track.event(
        "phase.restore",
        &[
            ("bytes_in", dst_out.restore_stats.bytes_in),
            ("blocks", dst_out.restore_stats.blocks_restored),
        ],
    );
    let pipeline = PipelineStats {
        chunks: wire_frames as u64,
        chunk_bytes: config.chunk_bytes as u64,
        collect_time,
        tx_time,
        restore_time: dst_out.restore_time,
        restore_stall: dst_out.restore_stall,
        e2e_time,
        encode_lat: encode_lat.snapshot(),
        decode_lat: decode_lat.snapshot(),
    };
    let report = MigrationReport {
        image_bytes: prefix_len + collect_stats.bytes_out,
        memory_bytes: collect_stats.bytes_out,
        collect_time,
        tx_time,
        restore_time: dst_out.restore_time,
        collect_stats,
        src_msrlt: src.msrlt.stats(),
        restore_stats: dst_out.restore_stats,
        dst_msrlt: dst_out.msrlt,
        src_polls: src.poll_count(),
        chain_depth,
        transfer,
        trace: None,
        pipeline: Some(pipeline),
        recovery: None,
        registry_audit: Some(registry_audit),
        shards: None,
        restore_shards: None,
        plan: None,
        flight: None,
    };
    Ok(report_migration(
        &Tracer::disabled(),
        report,
        dst_out.results,
    ))
}

/// What to do when the migration stream cannot be repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Discard the partial destination and resume execution on the
    /// source from the annotation poll point (whose state collection
    /// never touched).
    SourceResume,
    /// Surface the transport error to the caller.
    Fail,
}

/// Recovery tuning for [`run_migrating_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retransmissions allowed per chunk before the stream is declared dead.
    pub max_retries: u32,
    /// First retransmission backoff; doubles per silent round.
    pub backoff: Duration,
    /// What to do once retries are exhausted.
    pub fallback: FallbackPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 8,
            backoff: Duration::from_millis(4),
            fallback: FallbackPolicy::SourceResume,
        }
    }
}

/// What the recovery machinery did during one resilient migration.
///
/// Every field is a deterministic function of the [`FaultPlan`] and the
/// chunk stream — no wall-clock quantity lives here — so rerunning a
/// seed reproduces the struct exactly (the soak sweep asserts this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Whether the migration fell back to resuming on the source.
    pub fallback_taken: bool,
    /// Chunk retransmissions (NACK- plus timeout-triggered).
    pub retransmits: u64,
    /// Silent rounds that triggered a timeout retransmission.
    pub timeouts: u64,
    /// Frames whose payload failed its CRC-32 on arrival.
    pub corrupt_caught: u64,
    /// Extra valid copies the destination absorbed silently.
    pub dups_absorbed: u64,
    /// Frames the destination accepted out of order and re-sequenced.
    pub reorders_absorbed: u64,
    /// Cumulative ACK frames the destination sent.
    pub acks_sent: u64,
    /// NACK frames the destination sent.
    pub nacks_sent: u64,
    /// Fault events the injector reports (soak bookkeeping).
    pub faults_injected: u64,
    /// Modeled time charged to retransmission backoff.
    pub modeled_backoff_nanos: u64,
    /// Modeled time charged to injected link delays.
    pub modeled_delay_nanos: u64,
    /// Distribution of per-chunk retransmission counts (observed when a
    /// chunk leaves the send window, or when retries are exhausted).
    /// Seed-deterministic like every other field here.
    pub retry_hist: HistogramSnapshot,
}

impl RecoveryStats {
    /// Modeled recovery overhead vs a clean run: backoff plus injected
    /// delay. Wire-byte overhead (retransmits, acks) is visible in the
    /// transfer accounting instead.
    pub fn recovery_overhead(&self) -> Duration {
        Duration::from_nanos(self.modeled_backoff_nanos + self.modeled_delay_nanos)
    }

    fn from_parts(
        sender: ArqSenderStats,
        receiver: hpm_net::ArqReceiverSnapshot,
        faults: FaultStats,
        fallback_taken: bool,
    ) -> Self {
        RecoveryStats {
            fallback_taken,
            retransmits: sender.retransmits,
            timeouts: sender.timeouts,
            corrupt_caught: receiver.corrupt_caught,
            dups_absorbed: receiver.dups_absorbed,
            reorders_absorbed: receiver.reorders_absorbed,
            acks_sent: receiver.acks_sent,
            nacks_sent: receiver.nacks_sent,
            faults_injected: faults.faults_injected(),
            modeled_backoff_nanos: sender.modeled_backoff_nanos,
            modeled_delay_nanos: faults.modeled_delay_nanos,
            retry_hist: sender.retry_hist,
        }
    }
}

impl StatGroup for RecoveryStats {
    fn group(&self) -> &'static str {
        "recovery"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("fallback_taken", self.fallback_taken as u64),
            StatField::count("retransmits", self.retransmits),
            StatField::count("timeouts", self.timeouts),
            StatField::count("corrupt_caught", self.corrupt_caught),
            StatField::count("dups_absorbed", self.dups_absorbed),
            StatField::count("reorders_absorbed", self.reorders_absorbed),
            StatField::count("acks_sent", self.acks_sent),
            StatField::count("nacks_sent", self.nacks_sent),
            StatField::count("faults_injected", self.faults_injected),
            StatField::duration("recovery_overhead", self.recovery_overhead()),
            StatField::count("retry_p50", self.retry_hist.p50()),
            StatField::count("retry_p99", self.retry_hist.p99()),
            StatField::count("retry_max", self.retry_hist.max),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.fallback_taken |= other.fallback_taken;
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.corrupt_caught += other.corrupt_caught;
        self.dups_absorbed += other.dups_absorbed;
        self.reorders_absorbed += other.reorders_absorbed;
        self.acks_sent += other.acks_sent;
        self.nacks_sent += other.nacks_sent;
        self.faults_injected += other.faults_injected;
        self.modeled_backoff_nanos += other.modeled_backoff_nanos;
        self.modeled_delay_nanos += other.modeled_delay_nanos;
        self.retry_hist.merge(&other.retry_hist);
    }
}

/// Adapter: the ARQ receiver as the restorer's [`ChunkSource`], with the
/// same per-chunk decode-latency accounting as [`NetChunkSource`].
struct ReliableNetChunkSource {
    rx: ReliableChunkReceiver,
    decode_lat: Arc<Histogram>,
    last_return: Option<Instant>,
}

impl ChunkSource for ReliableNetChunkSource {
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, CoreError> {
        if let Some(t) = self.last_return.take() {
            self.decode_lat.observe(t.elapsed().as_nanos() as u64);
        }
        let r = self
            .rx
            .recv_chunk()
            .map_err(|e| CoreError::Source(e.to_string()));
        self.last_return = Some(Instant::now());
        r
    }
}

/// What one resilient migration attempt produced.
struct AttemptOutcome {
    collect_time: Duration,
    collect_stats: Option<CollectStats>,
    wire_frames: u32,
    sender_stats: ArqSenderStats,
    fault_stats: FaultStats,
    transfer: TransferSnapshot,
    dst: Option<DstOutcome>,
    /// The failure that killed the attempt, if any.
    error: Option<MigError>,
}

/// [`run_migrating_pipelined`] over a lossy link: chunks carry CRC-32,
/// an ack/nack protocol retransmits damaged or dropped frames under
/// `policy`, and — when the stream cannot be repaired — the partial
/// destination is discarded and the program resumes **on the source**
/// from its annotation poll point, which collection never mutated.
///
/// `plan` drives the deterministic fault injector; pass
/// [`FaultPlan::none`] for a clean (but still CRC- and ack-protected)
/// run. The report's [`RecoveryStats`] group records what the machinery
/// did; all of its fields are reproducible from the plan's seed.
#[allow(clippy::too_many_arguments)]
pub fn run_migrating_resilient<P: MigratableProgram + Send>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    config: PipelineConfig,
    plan: FaultPlan,
    policy: RecoveryPolicy,
) -> Result<MigrationRun, MigError> {
    let recorder = FlightRecorder::new();
    run_migrating_resilient_recorded(
        make, src_arch, dst_arch, link, trigger, config, plan, policy, &recorder,
    )
    .inspect_err(|_| persist_flight_dump(&recorder.dump()))
}

/// [`run_migrating_resilient`] with a caller-supplied [`FlightRecorder`].
///
/// Every recovery component logs to its own track (`arq.tx`, `arq.rx`,
/// `fault`, `collect`, `restore`, `driver`), and when the attempt dies
/// the driver notes the failure and — on a source-resume fallback —
/// attaches the full [`FlightDump`] to the report, so the failing seed
/// itself names the exact chunk, attempt, and phase.
#[allow(clippy::too_many_arguments)]
pub fn run_migrating_resilient_recorded<P: MigratableProgram + Send>(
    make: impl Fn() -> P,
    src_arch: Architecture,
    dst_arch: Architecture,
    link: NetworkModel,
    trigger: Trigger,
    config: PipelineConfig,
    plan: FaultPlan,
    policy: RecoveryPolicy,
    recorder: &FlightRecorder,
) -> Result<MigrationRun, MigError> {
    let driver_track = recorder.track("driver");
    let collect_track = recorder.track("collect");
    let arq_tx_track = recorder.track("arq.tx");
    let arq_rx_track = recorder.track("arq.rx");
    let fault_track = recorder.track("fault");
    let restore_track = recorder.track("restore");
    let encode_lat = Arc::new(Histogram::new());
    let decode_lat = Arc::new(Histogram::new());

    // --- source side: run to the migration point ---
    let mut src_prog = make();
    let mut src = Process::new(src_prog.name(), src_arch.clone());
    src.set_trigger(trigger);
    src_prog.setup(&mut src)?;
    let (proc, pending) = run_to_parts(&mut src_prog, &mut src)?;
    let registry_audit = require_clean_registry(proc)?;
    proc.msrlt.reset_stats();

    let header = image_header(proc);
    let exec = pending_exec_state(proc, &pending);
    let chain_depth = exec.depth();
    let prefix = frame_image_prefix(&header, &exec.encode());
    let prefix_len = prefix.len() as u64;
    driver_track.event(
        "phase.collect",
        &[
            ("prefix_bytes", prefix_len),
            ("chain_depth", chain_depth as u64),
        ],
    );

    let arq = ArqConfig {
        window: 32,
        max_retries: policy.max_retries,
        base_backoff: policy.backoff,
    };
    let (src_end, dst_end) = channel_pair(link);
    let endpoint = FaultyEndpoint::new(src_end, plan).with_flight(fault_track);
    let mut rx = ReliableChunkReceiver::new(dst_end, arq).with_flight(arq_rx_track);
    let rx_counters = rx.counters();
    let mut dst_prog = make();
    let (chunk_tx, chunk_rx) = std::sync::mpsc::channel::<Vec<u8>>();

    let t_start = Instant::now();
    let attempt = std::thread::scope(|s| -> Result<AttemptOutcome, MigError> {
        // Wire stage: pace, then push each chunk through the ARQ sender
        // over the fault-injected endpoint. Stats survive failure.
        let wire = s.spawn(move || {
            let mut tx = ReliableChunkSender::new(endpoint, arq)
                .with_codec(config.codec)
                .with_flight(arq_tx_track);
            let mut err = None;
            while let Ok(chunk) = chunk_rx.recv() {
                if config.pace {
                    let d = link.tx_time(chunk.len() as u64).mul_f64(config.pace_scale);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }
                if let Err(e) = tx.send(&chunk) {
                    err = Some(e);
                    break;
                }
            }
            let mut frames = tx.chunks_sent();
            if err.is_none() {
                match tx.finish() {
                    Ok(n) => frames = n,
                    Err(e) => err = Some(e),
                }
            }
            let stats = tx.stats();
            let endpoint = tx.into_link();
            let faults = endpoint.stats();
            let transfer = endpoint.channel().stats().snapshot();
            // Dropping the endpoint here severs the link and unblocks a
            // stalled destination with `Disconnected`.
            (err, frames, stats, faults, transfer)
        });

        // Destination stage: identical to the pipelined path but fed by
        // the ARQ receiver.
        let dst_decode_lat = Arc::clone(&decode_lat);
        let dst = s.spawn(move || -> Result<DstOutcome, MigError> {
            let first = rx
                .recv_chunk()
                .map_err(MigError::from)?
                .ok_or_else(|| MigError::Protocol("empty migration stream".into()))?;
            let (header, exec_bytes, leftover) = unframe_image(&first)?;
            if header.program != dst_prog.name() {
                return Err(MigError::Protocol(format!(
                    "image is for program '{}', not '{}'",
                    header.program,
                    dst_prog.name()
                )));
            }
            let exec = ExecutionState::decode(&exec_bytes)?;
            let mut proc = Process::new(dst_prog.name(), dst_arch);
            proc.space.reserve_heap_bytes(header.registered_bytes);
            dst_prog.setup(&mut proc)?;
            proc.msrlt.reset_stats();
            let chunks = ChunkPayload::with_initial(
                Box::new(ReliableNetChunkSource {
                    rx,
                    decode_lat: dst_decode_lat,
                    last_return: None,
                }),
                leftover,
            );
            let mut ctx = MigCtx::new_resume_streaming(&mut proc, exec, chunks);
            ctx.set_flight(restore_track);
            match dst_prog.run(&mut ctx)? {
                Flow::Done => {}
                Flow::Migrate => {
                    return Err(MigError::Protocol("resumed program migrated again".into()))
                }
            }
            let (restore_stats, restore_time) = ctx.restore_totals().ok_or_else(|| {
                MigError::Protocol("program finished without restoring all frames".into())
            })?;
            let restore_stall = ctx.restore_stall();
            let done_at = ctx.restore_completed_at();
            let results = dst_prog.results(&mut proc)?;
            Ok(DstOutcome {
                results,
                restore_stats,
                restore_time,
                restore_stall,
                msrlt: proc.msrlt.stats(),
                done_at,
            })
        });

        // Source stage (this thread): prefix, then the collection DFS.
        let mut collect_time = Duration::ZERO;
        let collect_res = if chunk_tx.send(prefix).is_err() {
            Err(MigError::from(CoreError::Source(
                "chunk sink disconnected".into(),
            )))
        } else {
            let enc = Arc::clone(&encode_lat);
            let t_collect = Instant::now();
            let mut last_flush = Instant::now();
            let r = collect_pending_streamed_flight(
                proc,
                &pending,
                config.chunk_bytes,
                &Tracer::disabled(),
                Box::new(|c| {
                    enc.observe(last_flush.elapsed().as_nanos() as u64);
                    last_flush = Instant::now();
                    chunk_tx
                        .send(c)
                        .map_err(|_| CoreError::Source("chunk sink disconnected".into()))
                }),
                Some(collect_track),
            );
            collect_time = t_collect.elapsed();
            r
        };
        drop(chunk_tx);

        // Join every worker on every path; no exit leaks a thread.
        let dst_res = dst
            .join()
            .map_err(|_| MigError::Protocol("destination thread panicked".into()))?;
        let (wire_err, wire_frames, sender_stats, fault_stats, transfer) = wire
            .join()
            .map_err(|_| MigError::Protocol("wire thread panicked".into()))?;

        // Triage mirrors the pipelined path: collect (unless the sink
        // merely vanished) > destination > wire.
        let sink_gone = matches!(
            &collect_res,
            Err(MigError::Core(m)) if m.contains("chunk sink disconnected")
        );
        let error = match &collect_res {
            Err(e) if !sink_gone => Some(e.clone()),
            _ => match (&dst_res, &wire_err) {
                // Exhausted retries are the root cause even though the
                // destination also observes the link going dead.
                (_, Some(e @ NetError::RetriesExhausted { .. })) => Some(MigError::from(e.clone())),
                (Err(e), _) => Some(e.clone()),
                (Ok(_), Some(e)) => Some(MigError::from(e.clone())),
                (Ok(_), None) => None,
            },
        };
        Ok(AttemptOutcome {
            collect_time,
            collect_stats: collect_res.ok().map(|(_, s)| s),
            wire_frames,
            sender_stats,
            fault_stats,
            transfer,
            dst: dst_res.ok(),
            error,
        })
    })?;

    let recovery_base = RecoveryStats::from_parts(
        attempt.sender_stats,
        rx_counters.snapshot(),
        attempt.fault_stats,
        false,
    );

    if let Some(err) = attempt.error {
        // Note the failure on the driver track, then freeze the recorder
        // state: every worker has joined, so the dump is complete and —
        // per-track — deterministic for a given fault-plan seed.
        driver_track.event_note("attempt.failed", &[], &err.to_string());
        let dump = recorder.dump();
        match policy.fallback {
            FallbackPolicy::Fail => {
                persist_flight_dump(&dump);
                return Err(err);
            }
            FallbackPolicy::SourceResume => {
                persist_flight_dump(&dump);
                // The source process was never mutated by collection:
                // collect locally and resume on the source architecture,
                // discarding whatever the destination half-built.
                let t_collect = Instant::now();
                let (payload, exec, collect_stats) = collect_pending(&mut src, &pending)?;
                let collect_time = t_collect.elapsed();
                let header = image_header(&src);
                let image = frame_image(&header, &exec.encode(), &payload);
                let mut resumed = make();
                let (results, local, restore_stats, restore_time) =
                    resume_from_image(&mut resumed, src_arch, &image)?;
                let report = MigrationReport {
                    image_bytes: image.len() as u64,
                    memory_bytes: collect_stats.bytes_out,
                    collect_time,
                    // The aborted attempt's wire traffic is the honest Tx
                    // cost of the failure; the local resume ships nothing.
                    tx_time: attempt.transfer.modeled_tx_time(),
                    restore_time,
                    collect_stats,
                    src_msrlt: src.msrlt.stats(),
                    restore_stats,
                    dst_msrlt: local.msrlt.stats(),
                    src_polls: src.poll_count(),
                    chain_depth,
                    transfer: attempt.transfer,
                    trace: None,
                    pipeline: None,
                    recovery: Some(RecoveryStats {
                        fallback_taken: true,
                        ..recovery_base
                    }),
                    registry_audit: Some(registry_audit),
                    shards: None,
                    restore_shards: None,
                    plan: None,
                    flight: Some(dump),
                };
                return Ok(MigrationRun { report, results });
            }
        }
    }

    let dst_out = attempt
        .dst
        .ok_or_else(|| MigError::Protocol("attempt succeeded without a destination".into()))?;
    let collect_stats = attempt
        .collect_stats
        .ok_or_else(|| MigError::Protocol("attempt succeeded without collection stats".into()))?;
    let e2e_time = dst_out
        .done_at
        .map(|t| t.saturating_duration_since(t_start))
        .unwrap_or_default();
    let tx_time = attempt.transfer.modeled_tx_time();
    driver_track.event("phase.tx", &[("bytes", attempt.transfer.bytes_sent)]);
    driver_track.event(
        "phase.restore",
        &[
            ("bytes_in", dst_out.restore_stats.bytes_in),
            ("blocks", dst_out.restore_stats.blocks_restored),
        ],
    );
    let pipeline = PipelineStats {
        chunks: attempt.wire_frames as u64,
        chunk_bytes: config.chunk_bytes as u64,
        collect_time: attempt.collect_time,
        tx_time,
        restore_time: dst_out.restore_time,
        restore_stall: dst_out.restore_stall,
        e2e_time,
        encode_lat: encode_lat.snapshot(),
        decode_lat: decode_lat.snapshot(),
    };
    let report = MigrationReport {
        image_bytes: prefix_len + collect_stats.bytes_out,
        memory_bytes: collect_stats.bytes_out,
        collect_time: attempt.collect_time,
        tx_time,
        restore_time: dst_out.restore_time,
        collect_stats,
        src_msrlt: src.msrlt.stats(),
        restore_stats: dst_out.restore_stats,
        dst_msrlt: dst_out.msrlt,
        src_polls: src.poll_count(),
        chain_depth,
        transfer: attempt.transfer,
        trace: None,
        pipeline: Some(pipeline),
        recovery: Some(recovery_base),
        registry_audit: Some(registry_audit),
        shards: None,
        restore_shards: None,
        plan: None,
        flight: None,
    };
    Ok(report_migration(
        &Tracer::disabled(),
        report,
        dst_out.results,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Flow;
    use hpm_arch::Architecture;
    use hpm_types::TypeId;

    /// A minimal migratable program: sum 0..limit with one local, one
    /// global accumulator, polling every iteration.
    struct Summer {
        limit: i64,
        result: Option<i64>,
    }

    const PP_LOOP: u32 = 1;

    impl Summer {
        fn new(limit: i64) -> Self {
            Summer {
                limit,
                result: None,
            }
        }

        fn int(proc: &mut Process) -> TypeId {
            proc.space.types_mut().int()
        }

        fn acc_addr(proc: &mut Process) -> u64 {
            proc.space
                .block_infos()
                .into_iter()
                .find(|b| b.name.as_deref() == Some("acc"))
                .unwrap()
                .addr
        }
    }

    impl MigratableProgram for Summer {
        fn name(&self) -> &'static str {
            "summer"
        }

        fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
            let int = Self::int(proc);
            proc.define_global("acc", int, 1)?;
            Ok(())
        }

        fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
            let int = Self::int(ctx.proc());
            let acc = Self::acc_addr(ctx.proc());
            let f = ctx.enter("main")?;
            let i = ctx.local(f, "i", int, 1)?;
            let live = [i, acc];
            let mut iv;
            if ctx.resume_point() == Some(PP_LOOP) {
                ctx.restore_frame(&live)?;
                iv = ctx.proc().space.load_int(i)?;
            } else {
                iv = 0;
            }
            while iv < self.limit {
                ctx.proc().space.store_int(i, iv)?;
                if ctx.poll() {
                    ctx.save_frame(PP_LOOP, &live)?;
                    return Ok(Flow::Migrate);
                }
                let a = ctx.proc().space.load_int(acc)?;
                // acc is a C int: keep the sum 32-bit-safe.
                ctx.proc().space.store_int(acc, a + iv % 3)?;
                iv += 1;
            }
            self.result = Some(ctx.proc().space.load_int(acc)?);
            ctx.leave(f)?;
            Ok(Flow::Done)
        }

        fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
            Ok(vec![("sum".into(), self.result.unwrap_or(-1).to_string())])
        }
    }

    fn expected_sum(limit: i64) -> String {
        (0..limit).map(|i| i % 3).sum::<i64>().to_string()
    }

    #[test]
    fn straight_summer() {
        let mut p = Summer::new(100);
        let (r, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        assert_eq!(r[0].1, expected_sum(100));
    }

    #[test]
    fn migrated_summer_every_point() {
        for at in [1u64, 37, 99] {
            let run = run_migrating(
                || Summer::new(100),
                Architecture::dec5000(),
                Architecture::sparc20(),
                hpm_net::NetworkModel::instant(),
                Trigger::AtPollCount(at),
            )
            .unwrap();
            assert_eq!(run.results[0].1, expected_sum(100), "trigger at {at}");
            assert_eq!(run.report.chain_depth, 1);
        }
    }

    #[test]
    fn pipelined_summer_matches_straight() {
        let cfg = PipelineConfig {
            chunk_bytes: 64,
            pace: false,
            pace_scale: 0.0,
            codec: WireCodec::default(),
        };
        let run = run_migrating_pipelined(
            || Summer::new(500),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(250),
            cfg,
        )
        .unwrap();
        assert_eq!(run.results[0].1, expected_sum(500));
        let p = run.report.pipeline.expect("pipelined run carries stats");
        // Prefix + at least one payload chunk + terminator.
        assert!(p.chunks >= 3, "got {} chunks", p.chunks);
        assert_eq!(p.chunk_bytes, 64);
        assert!(run.report.image_bytes > 0);
        assert!(
            run.report.transfer.bytes_sent > run.report.memory_bytes,
            "framing overhead must be accounted"
        );
    }

    #[test]
    fn trigger_never_fires_is_an_error_for_run_migrating() {
        // Limit reached before the trigger: the driver reports it.
        let r = run_migrating(
            || Summer::new(5),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::instant(),
            Trigger::AtPollCount(1000),
        );
        assert!(matches!(r, Err(MigError::Protocol(_))));
    }

    #[test]
    fn run_to_migration_freezes_state() {
        let mut p = Summer::new(100);
        let mut src =
            run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(50)).unwrap();
        assert_eq!(src.pending.len(), 1);
        assert_eq!(src.pending[0].function, "main");
        assert_eq!(src.pending[0].poll_point, PP_LOOP);
        // Collection is repeatable.
        let (p1, e1, _) = src.collect().unwrap();
        let (p2, e2, _) = src.collect().unwrap();
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
        assert_eq!(e1.frames[0].live_count, 2);
    }

    #[test]
    fn resume_from_corrupt_image_fails() {
        let mut p = Summer::new(100);
        let mut src =
            run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(50)).unwrap();
        let image = src.to_image().unwrap();
        let mut dst = Summer::new(100);
        assert!(resume_from_image(&mut dst, Architecture::sparc20(), &image[..8]).is_err());
    }

    #[test]
    fn cluster_runs_summer() {
        use crate::cluster::TwoMachineCluster;
        let cluster = TwoMachineCluster::paper_heterogeneous();
        // Large limit so the request (delivered immediately) lands while
        // the loop is still running.
        let report = cluster.run(|| Summer::new(2_000_000), 0).unwrap();
        assert_eq!(report.results[0].1, expected_sum(2_000_000));
        assert!(report.image_bytes > 0);
        assert!(report.src_polls >= 1);
    }

    fn quick_cfg() -> PipelineConfig {
        PipelineConfig {
            chunk_bytes: 64,
            pace: false,
            pace_scale: 0.0,
            codec: WireCodec::default(),
        }
    }

    fn quick_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 6,
            backoff: Duration::from_millis(1),
            fallback: FallbackPolicy::SourceResume,
        }
    }

    #[test]
    fn resilient_zero_fault_matches_pipelined() {
        let pipelined = run_migrating_pipelined(
            || Summer::new(500),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(250),
            quick_cfg(),
        )
        .unwrap();
        let resilient = run_migrating_resilient(
            || Summer::new(500),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(250),
            quick_cfg(),
            FaultPlan::none(),
            quick_policy(),
        )
        .unwrap();
        assert_eq!(resilient.results, pipelined.results);
        assert_eq!(resilient.report.image_bytes, pipelined.report.image_bytes);
        assert_eq!(resilient.report.memory_bytes, pipelined.report.memory_bytes);
        let r = resilient.report.recovery.expect("resilient carries stats");
        assert!(!r.fallback_taken);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.corrupt_caught, 0);
        assert_eq!(r.faults_injected, 0);
        assert!(r.acks_sent > 0, "receiver must have acknowledged");
        assert!(resilient.report.pipeline.is_some());
    }

    #[test]
    fn resilient_heals_a_faulty_link() {
        let plan = FaultPlan {
            seed: 0xFA_57_11,
            drop_per_mille: 150,
            corrupt_per_mille: 150,
            duplicate_per_mille: 150,
            reorder_per_mille: 100,
            delay_per_mille: 100,
            disconnect_at: None,
        };
        let run = run_migrating_resilient(
            || Summer::new(500),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(250),
            quick_cfg(),
            plan,
            quick_policy(),
        )
        .unwrap();
        assert_eq!(run.results[0].1, expected_sum(500));
        let r = run.report.recovery.unwrap();
        assert!(!r.fallback_taken, "a lossy-but-alive link must heal");
        assert!(r.faults_injected > 0, "plan injected nothing: {r:?}");
    }

    #[test]
    fn resilient_falls_back_to_source_on_a_dead_link() {
        let plan = FaultPlan {
            disconnect_at: Some(1), // everything after the prefix chunk
            ..FaultPlan::none()
        };
        let run = run_migrating_resilient(
            || Summer::new(500),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(250),
            quick_cfg(),
            plan,
            quick_policy(),
        )
        .unwrap();
        // The answer is still right — computed on the source.
        assert_eq!(run.results[0].1, expected_sum(500));
        let r = run.report.recovery.unwrap();
        assert!(r.fallback_taken);
        assert!(r.retransmits > 0, "the sender must have tried: {r:?}");
        assert!(run.report.pipeline.is_none(), "no pipeline stats survive");
    }

    #[test]
    fn resilient_fail_policy_surfaces_the_transport_error() {
        let plan = FaultPlan {
            disconnect_at: Some(1),
            ..FaultPlan::none()
        };
        let policy = RecoveryPolicy {
            fallback: FallbackPolicy::Fail,
            ..quick_policy()
        };
        let err = run_migrating_resilient(
            || Summer::new(500),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(250),
            quick_cfg(),
            plan,
            policy,
        )
        .unwrap_err();
        match err {
            MigError::Net(m) => assert!(m.contains("retries exhausted"), "{m}"),
            other => panic!("expected the wire's error, got {other:?}"),
        }
    }

    #[test]
    fn resilient_recovery_stats_are_reproducible() {
        let plan = FaultPlan::from_seed(0x1CEB00DA);
        let go = || {
            run_migrating_resilient(
                || Summer::new(500),
                Architecture::dec5000(),
                Architecture::sparc20(),
                hpm_net::NetworkModel::ethernet_10(),
                Trigger::AtPollCount(250),
                quick_cfg(),
                plan,
                quick_policy(),
            )
            .unwrap()
        };
        let first = go();
        assert_eq!(first.results[0].1, expected_sum(500));
        for _ in 0..2 {
            let again = go();
            assert_eq!(again.results, first.results);
            assert_eq!(again.report.recovery, first.report.recovery);
        }
    }

    /// A program whose destination side dies as soon as it tries to
    /// resume: the chunk stream is abandoned mid-flight while the source
    /// is still collecting.
    struct PoisonedResume {
        limit: i64,
    }

    impl MigratableProgram for PoisonedResume {
        fn name(&self) -> &'static str {
            "poisoned"
        }

        fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
            let int = proc.space.types_mut().int();
            proc.define_global("acc", int, 1)?;
            Ok(())
        }

        fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
            let int = ctx.proc().space.types_mut().int();
            let acc = Summer::acc_addr(ctx.proc());
            let f = ctx.enter("main")?;
            let i = ctx.local(f, "i", int, 1)?;
            let live = [i, acc];
            if ctx.resume_point().is_some() {
                return Err(MigError::Protocol("poisoned resume".into()));
            }
            let mut iv = 0;
            while iv < self.limit {
                ctx.proc().space.store_int(i, iv)?;
                if ctx.poll() {
                    ctx.save_frame(PP_LOOP, &live)?;
                    return Ok(Flow::Migrate);
                }
                iv += 1;
            }
            ctx.leave(f)?;
            Ok(Flow::Done)
        }

        fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
            Ok(vec![])
        }
    }

    /// Satellite 6: a destination that dies mid-stream must not hang the
    /// pipelined driver — all three stage threads join and the poison
    /// error surfaces.
    #[test]
    fn poisoned_chunk_does_not_hang_the_pipelined_driver() {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let r = run_migrating_pipelined(
                || PoisonedResume { limit: 50_000 },
                Architecture::dec5000(),
                Architecture::sparc20(),
                hpm_net::NetworkModel::ethernet_10(),
                Trigger::AtPollCount(25_000),
                PipelineConfig {
                    chunk_bytes: 128,
                    pace: false,
                    pace_scale: 0.0,
                    codec: WireCodec::default(),
                },
            );
            let _ = done_tx.send(r);
        });
        let r = done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("pipelined driver hung on a poisoned destination");
        match r {
            Err(MigError::Protocol(m)) => assert!(m.contains("poisoned"), "{m}"),
            other => panic!("expected the poison to surface, got {other:?}"),
        }
    }

    /// The resilient driver holds the same no-hang property — and then
    /// salvages the run on the source.
    #[test]
    fn poisoned_chunk_does_not_hang_the_resilient_driver() {
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let r = run_migrating_resilient(
                || PoisonedResume { limit: 50_000 },
                Architecture::dec5000(),
                Architecture::sparc20(),
                hpm_net::NetworkModel::ethernet_10(),
                Trigger::AtPollCount(25_000),
                PipelineConfig {
                    chunk_bytes: 128,
                    pace: false,
                    pace_scale: 0.0,
                    codec: WireCodec::default(),
                },
                FaultPlan::none(),
                quick_policy(),
            );
            let _ = done_tx.send(r);
        });
        let r = done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("resilient driver hung on a poisoned destination");
        // SourceResume salvages the run: the poisoned program also
        // refuses to resume locally, so the fallback surfaces ITS error
        // rather than hanging or fabricating results.
        match r {
            Err(MigError::Protocol(m)) => assert!(m.contains("poisoned"), "{m}"),
            other => panic!("expected the poison to surface, got {other:?}"),
        }
    }
}
