//! The migration context: what the inserted poll-point macros expand to.
//!
//! An annotated function follows this shape (compare the paper's §2):
//!
//! ```text
//! fn foo(ctx, args…) -> Flow {
//!     let f = ctx.enter("foo");
//!     let x = ctx.local(f, "x", ty, 1);           // declare ALL locals first
//!     if let Some(pp) = ctx.resume_point() {
//!         // jump to the recorded poll-point; the innermost frame
//!         // restores its live data here and resumes computing
//!         ctx.restore_frame(&[x, …])?;
//!         … continue from pp …
//!     }
//!     …
//!     if ctx.poll() {                              // a poll-point
//!         ctx.save_frame(PP_1, &[x, …])?;          // collect live data
//!         return Ok(Flow::Migrate);                // unwind (no leave)
//!     }
//!     …
//!     ctx.leave(f)?;
//!     Ok(Flow::Done)
//! }
//! ```
//!
//! Callers propagate `Flow::Migrate` upward, contributing their own
//! `save_frame` at the call-site poll-point — the paper's "process
//! migration can occur in a nested function call".

use crate::exec::{ExecutionState, FrameState};
use crate::process::Process;
use crate::MigError;
use hpm_core::{
    collect_parallel_flight, restore_parallel_section, ChunkPayload, ChunkSink, CollectStats,
    Collector, CoreError, RestoreStats, Restorer, ShardReport, TranslationMode,
};
use hpm_memory::FrameId;
use hpm_obs::{StatGroup, Tracer};
use hpm_types::TypeId;
use std::time::{Duration, Instant};

/// Outcome of an annotated function: ran to completion, or is unwinding
/// for migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// The function completed normally.
    Done,
    /// A migration request fired; the stack is unwinding.
    Migrate,
}

/// The shape of a program in migratable format.
pub trait MigratableProgram {
    /// Program name (must match between source and destination).
    fn name(&self) -> &'static str;
    /// Register types and global variables — runs identically on both
    /// machines, so both sides assign identical logical ids.
    fn setup(&mut self, proc: &mut Process) -> Result<(), MigError>;
    /// Execute (or resume) the program.
    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError>;
    /// Extract a result digest after a completed run, used to verify that
    /// migrated and unmigrated executions agree.
    fn results(&self, proc: &mut Process) -> Result<Vec<(String, String)>, MigError>;
}

impl<T: MigratableProgram + ?Sized> MigratableProgram for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
        (**self).setup(proc)
    }
    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
        (**self).run(ctx)
    }
    fn results(&self, proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
        (**self).results(proc)
    }
}

/// A frame recorded while unwinding toward migration.
#[derive(Debug, Clone)]
pub struct PendingFrame {
    /// Function name.
    pub function: String,
    /// Poll-point at which the frame stopped.
    pub poll_point: u32,
    /// Live-variable block addresses, in save order.
    pub live: Vec<u64>,
}

/// Where a resuming process's memory-state payload comes from.
enum PayloadSource {
    /// The complete payload arrived up front (monolithic image).
    Whole {
        /// Memory-state payload.
        payload: Vec<u8>,
        /// Consumed prefix of `payload`.
        pos: usize,
    },
    /// The payload is still arriving as chunks (pipelined migration);
    /// each `restore_frame` pulls exactly what it needs.
    Chunked(ChunkPayload),
}

struct ResumeState {
    /// Outermost-first recorded frames.
    frames: Vec<FrameState>,
    /// Memory-state payload source.
    source: PayloadSource,
    /// Index of the shallowest frame already restored; `frames.len()`
    /// when none is. Restoration consumes frames innermost-first.
    restored_down_to: usize,
    /// Frames entered so far along the re-entry path.
    entered: usize,
    /// Accumulated restoration statistics.
    stats: RestoreStats,
    /// Wall time spent inside `restore_frame`.
    restore_time: Duration,
}

enum Mode {
    Run,
    Unwind(Vec<PendingFrame>),
    Resume(Box<ResumeState>),
}

/// The migration context threaded through annotated code.
pub struct MigCtx<'p> {
    proc: &'p mut Process,
    mode: Mode,
    func_stack: Vec<String>,
    /// Set when the final `restore_frame` completes: (stats, wall time).
    finished_restore: Option<(RestoreStats, Duration)>,
    /// Time spent blocked waiting on the chunk source (streamed resumes).
    finished_stall: Duration,
    /// Chunks pulled from the source during restoration (streamed resumes).
    finished_chunks: u64,
    /// Instant the final `restore_frame` completed.
    finished_at: Option<Instant>,
    tracer: Tracer,
    /// Flight-recorder track attached to every [`Restorer`] this context
    /// creates (post-mortem restore progress); `None` is free.
    flight: Option<hpm_obs::FlightTrack>,
    /// Shards for monolithic (`Whole`) restoration; 1 = sequential.
    restore_workers: usize,
    /// Per-shard accounting accumulated by parallel `restore_frame`s.
    restore_shards: Option<ShardReport>,
}

impl<'p> MigCtx<'p> {
    /// Context for a fresh (source-side) run.
    pub fn new_run(proc: &'p mut Process) -> Self {
        MigCtx {
            proc,
            mode: Mode::Run,
            func_stack: Vec::new(),
            finished_restore: None,
            finished_stall: Duration::ZERO,
            finished_chunks: 0,
            finished_at: None,
            tracer: Tracer::disabled(),
            flight: None,
            restore_workers: 1,
            restore_shards: None,
        }
    }

    /// Attach a tracer: every `restore_frame` emits a `restore` span (with
    /// nested block/alloc events from the [`Restorer`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Shard monolithic restoration across `workers` threads (skim /
    /// fill / splice — see [`hpm_core::restore_parallel`]); the restored
    /// image stays byte-identical to the sequential path. Streamed
    /// (chunked) resumes ignore this and stay sequential, as do frames
    /// with a single live variable (nothing to shard).
    pub fn set_restore_workers(&mut self, workers: usize) {
        self.restore_workers = workers.max(1);
    }

    /// Per-shard accounting from parallel `restore_frame`s; `None` when
    /// every frame restored sequentially.
    pub fn restore_shards(&self) -> Option<ShardReport> {
        self.restore_shards.clone()
    }

    /// Attach a flight-recorder track: every restored variable leaves a
    /// `var.restored` event on it (see [`Restorer::with_flight`]).
    pub fn set_flight(&mut self, flight: hpm_obs::FlightTrack) {
        self.flight = Some(flight);
    }

    /// Context for a destination-side resume.
    ///
    /// Reserves the source's heap-index high-water mark so blocks
    /// allocated by resumed execution never collide with ids still
    /// referenced by un-restored outer-frame sections.
    pub fn new_resume(proc: &'p mut Process, exec: ExecutionState, payload: Vec<u8>) -> Self {
        Self::resume_with_source(proc, exec, PayloadSource::Whole { payload, pos: 0 })
    }

    /// Context for a destination-side resume over a chunk stream still
    /// arriving (pipelined migration). Each `restore_frame` pulls chunks
    /// on demand, so the innermost frame restores — and resumed
    /// computation starts — while outer frames are still in flight.
    pub fn new_resume_streaming(
        proc: &'p mut Process,
        exec: ExecutionState,
        chunks: ChunkPayload,
    ) -> Self {
        Self::resume_with_source(proc, exec, PayloadSource::Chunked(chunks))
    }

    fn resume_with_source(
        proc: &'p mut Process,
        exec: ExecutionState,
        source: PayloadSource,
    ) -> Self {
        proc.msrlt.reserve_heap_indices(exec.heap_high_water);
        let n = exec.frames.len();
        MigCtx {
            proc,
            mode: Mode::Resume(Box::new(ResumeState {
                frames: exec.frames,
                source,
                restored_down_to: n,
                entered: 0,
                stats: RestoreStats::default(),
                restore_time: Duration::ZERO,
            })),
            func_stack: Vec::new(),
            finished_restore: None,
            finished_stall: Duration::ZERO,
            finished_chunks: 0,
            finished_at: None,
            tracer: Tracer::disabled(),
            flight: None,
            restore_workers: 1,
            restore_shards: None,
        }
    }

    /// The underlying process (workload computation goes through this).
    pub fn proc(&mut self) -> &mut Process {
        self.proc
    }

    /// Enter a function: frame push on both structures, plus re-entry
    /// validation when resuming.
    pub fn enter(&mut self, name: &str) -> Result<FrameId, MigError> {
        let f = self.proc.enter_function(name);
        self.func_stack.push(name.to_string());
        if let Mode::Resume(r) = &mut self.mode {
            if r.entered < r.frames.len() {
                let expect = &r.frames[r.entered];
                if expect.function != name {
                    return Err(MigError::Protocol(format!(
                        "re-entry expected function '{}', got '{name}'",
                        expect.function
                    )));
                }
                r.entered += 1;
            }
        }
        Ok(f)
    }

    /// Declare a local variable in the current frame.
    pub fn local(
        &mut self,
        frame: FrameId,
        name: &str,
        ty: TypeId,
        count: u64,
    ) -> Result<u64, MigError> {
        self.proc.declare_local(frame, name, ty, count)
    }

    /// Leave a function normally.
    pub fn leave(&mut self, frame: FrameId) -> Result<(), MigError> {
        self.func_stack.pop();
        self.proc.exit_function(frame)
    }

    /// The poll-point check. Returns `true` exactly once per migration:
    /// the caller must then `save_frame` and return [`Flow::Migrate`].
    #[inline]
    pub fn poll(&mut self) -> bool {
        match self.mode {
            Mode::Run => {
                if self.proc.poll() {
                    self.mode = Mode::Unwind(Vec::new());
                    true
                } else {
                    false
                }
            }
            // While unwinding or resuming, poll-points are inert.
            _ => {
                // Still count the poll for overhead accounting.
                let _ = self.proc.poll();
                false
            }
        }
    }

    /// Record this frame's resume point and live data while unwinding.
    ///
    /// Also pops the function-name stack: `save_frame` is the frame's
    /// exit on the unwind path (where `leave` is deliberately *not*
    /// called, so the frame's blocks stay alive for collection).
    pub fn save_frame(&mut self, poll_point: u32, live: &[u64]) -> Result<(), MigError> {
        match &mut self.mode {
            Mode::Unwind(frames) => {
                let function = self
                    .func_stack
                    .pop()
                    .ok_or_else(|| MigError::Protocol("save_frame outside any function".into()))?;
                frames.push(PendingFrame {
                    function,
                    poll_point,
                    live: live.to_vec(),
                });
                Ok(())
            }
            _ => Err(MigError::Protocol("save_frame while not unwinding".into())),
        }
    }

    /// If this frame is on the recorded call chain and not yet restored,
    /// the poll-point it must resume from.
    pub fn resume_point(&self) -> Option<u32> {
        match &self.mode {
            Mode::Resume(r) => {
                let depth = self.func_stack.len();
                if depth >= 1 && depth <= r.frames.len() && depth - 1 < r.restored_down_to {
                    Some(r.frames[depth - 1].poll_point)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Restore this frame's live data (paper: `Restore_variable` /
    /// `Restore_pointer` "operated at the same locations").
    ///
    /// Must be called innermost-frame-first — i.e. by the frame whose
    /// depth matches the next pending stream section — with the same
    /// variables, in the same order, as the matching `save_frame`.
    pub fn restore_frame(&mut self, live: &[u64]) -> Result<(), MigError> {
        let depth = self.func_stack.len();
        let Mode::Resume(r) = &mut self.mode else {
            return Err(MigError::Protocol(
                "restore_frame while not resuming".into(),
            ));
        };
        if depth != r.restored_down_to {
            return Err(MigError::Protocol(format!(
                "restore_frame at depth {depth}, but next pending frame is {}",
                r.restored_down_to
            )));
        }
        let frame = &r.frames[depth - 1];
        if frame.live_count as usize != live.len() {
            return Err(MigError::Protocol(format!(
                "frame '{}' saved {} variables but restores {}",
                frame.function,
                frame.live_count,
                live.len()
            )));
        }
        let function = frame.function.clone();
        let is_final = r.restored_down_to == 1;
        let t0 = Instant::now();
        self.tracer.begin_args(
            "restore",
            &[("frame_depth", depth as f64), ("live", live.len() as f64)],
        );
        // A monolithic payload with several live roots can shard: skim /
        // fill / splice, byte-identical to the sequential path. Streamed
        // payloads (no complete byte range) and single-root frames
        // (nothing to shard) fall through to the plain restorer.
        let use_parallel = self.restore_workers > 1
            && live.len() > 1
            && matches!(r.source, PayloadSource::Whole { .. });
        let (stats, consumed) = if use_parallel {
            let PayloadSource::Whole { payload, pos } = &mut r.source else {
                unreachable!("use_parallel checked the source shape");
            };
            let rest = &payload[*pos..];
            let (stats, consumed, shards) = restore_parallel_section(
                &mut self.proc.space,
                &mut self.proc.msrlt,
                rest,
                live,
                self.restore_workers,
                TranslationMode::default(),
                self.flight.as_ref(),
            )
            .map_err(|e| match &e {
                CoreError::TruncatedChunk { .. } => {
                    MigError::Protocol(format!("restoring frame '{function}' (depth {depth}): {e}"))
                }
                _ => MigError::from(e),
            })?;
            // The final frame must drain the stream exactly, same as the
            // sequential path's `finish`.
            if is_final && consumed != rest.len() {
                return Err(MigError::Protocol(format!(
                    "after final restore_frame ('{function}'): {} payload bytes after end of stream",
                    rest.len() - consumed
                )));
            }
            match &mut self.restore_shards {
                Some(acc) => acc.merge_from(&shards),
                None => self.restore_shards = Some(shards),
            }
            (stats, consumed)
        } else {
            let mut restorer = match &mut r.source {
                PayloadSource::Whole { payload, pos } => {
                    Restorer::new(&mut self.proc.space, &mut self.proc.msrlt, &payload[*pos..])
                }
                PayloadSource::Chunked(cp) => {
                    Restorer::from_chunks(&mut self.proc.space, &mut self.proc.msrlt, cp)
                }
            }
            .with_tracer(self.tracer.clone());
            if let Some(t) = &self.flight {
                restorer = restorer.with_flight(t.clone());
            }
            for &addr in live {
                restorer.restore_variable(addr).map_err(|e| match &e {
                    CoreError::TruncatedChunk { .. } => MigError::Protocol(format!(
                        "restoring frame '{function}' (depth {depth}): {e}"
                    )),
                    _ => MigError::from(e),
                })?;
            }
            let consumed = restorer.consumed();
            // The final frame must drain the stream exactly: leftover
            // payload (or, streamed, leftover chunks) means the call
            // sequences diverged — surface it with the offending frame
            // and chunk.
            let stats = if is_final {
                restorer.finish().map_err(|e| match &e {
                    CoreError::TrailingBytes { .. } => {
                        MigError::Protocol(format!("after final restore_frame ('{function}'): {e}"))
                    }
                    _ => MigError::from(e),
                })?
            } else {
                restorer.take_stats()
            };
            (stats, consumed)
        };
        self.tracer
            .end_args("restore", &[("bytes", consumed as f64)]);
        if let PayloadSource::Whole { pos, .. } = &mut r.source {
            *pos += consumed;
        }
        r.stats.merge_from(&stats);
        r.restore_time += t0.elapsed();
        r.restored_down_to -= 1;
        if r.restored_down_to == 0 {
            let stats = r.stats;
            let time = r.restore_time;
            let (stall, chunks) = match &r.source {
                PayloadSource::Chunked(cp) => (cp.stall_time(), cp.chunks_pulled()),
                PayloadSource::Whole { .. } => (Duration::ZERO, 0),
            };
            self.mode = Mode::Run;
            // Preserve totals for the driver.
            self.finished_restore = Some((stats, time));
            self.finished_stall = stall;
            self.finished_chunks = chunks;
            self.finished_at = Some(Instant::now());
        }
        Ok(())
    }

    /// Whether the context is currently resuming (restoration pending).
    pub fn is_resuming(&self) -> bool {
        matches!(self.mode, Mode::Resume(_))
    }

    /// Whether the *current* frame is the next one that must call
    /// [`MigCtx::restore_frame`] (its stream section is at the front).
    pub fn frame_is_next_to_restore(&self) -> bool {
        match &self.mode {
            Mode::Resume(r) => {
                r.restored_down_to >= 1 && self.func_stack.len() == r.restored_down_to
            }
            _ => false,
        }
    }

    /// After a migration unwind: the recorded frames, innermost first.
    pub fn into_pending_frames(self) -> Result<Vec<PendingFrame>, MigError> {
        match self.mode {
            Mode::Unwind(frames) => Ok(frames),
            _ => Err(MigError::Protocol(
                "program did not unwind for migration".into(),
            )),
        }
    }

    /// Split into the borrowed process and the recorded frames — the
    /// collection driver needs both at once.
    pub fn into_parts(self) -> Result<(&'p mut Process, Vec<PendingFrame>), MigError> {
        match self.mode {
            Mode::Unwind(frames) => Ok((self.proc, frames)),
            _ => Err(MigError::Protocol(
                "program did not unwind for migration".into(),
            )),
        }
    }

    /// Restoration totals once every frame has been restored.
    pub fn restore_totals(&self) -> Option<(RestoreStats, Duration)> {
        self.finished_restore
    }

    /// Time restoration spent blocked waiting for chunks to arrive
    /// (zero for monolithic resumes, or before restoration completes).
    pub fn restore_stall(&self) -> Duration {
        self.finished_stall
    }

    /// Chunks pulled from the stream during restoration (zero for
    /// monolithic resumes).
    pub fn restore_chunks(&self) -> u64 {
        self.finished_chunks
    }

    /// Instant the final `restore_frame` completed — the pipeline's
    /// end-to-end endpoint (resumed computation continues after it).
    pub fn restore_completed_at(&self) -> Option<Instant> {
        self.finished_at
    }
}

/// Collect the recorded frames into a memory-state payload plus the
/// execution state (outermost-first), using one MSRM collection session.
pub fn collect_pending(
    proc: &mut Process,
    pending: &[PendingFrame],
) -> Result<(Vec<u8>, ExecutionState, CollectStats), MigError> {
    collect_pending_traced(proc, pending, &Tracer::disabled())
}

/// [`collect_pending`] with a tracer attached to the [`Collector`]: the
/// DFS emits `msrlt.search` spans and `collect.block` instants.
pub fn collect_pending_traced(
    proc: &mut Process,
    pending: &[PendingFrame],
    tracer: &Tracer,
) -> Result<(Vec<u8>, ExecutionState, CollectStats), MigError> {
    let exec = pending_exec_state(proc, pending);
    let mut collector =
        Collector::new(&mut proc.space, &mut proc.msrlt).with_tracer(tracer.clone());
    for frame in pending {
        for &addr in &frame.live {
            collector.save_variable(addr).map_err(MigError::from)?;
        }
    }
    let (payload, stats) = collector.finish();
    Ok((payload, exec, stats))
}

/// [`collect_pending`] across `workers` shards: the recorded frames'
/// live variables become the parallel collector's roots, and the
/// spliced payload is byte-identical to the sequential one. Worker
/// search traffic is folded back into the process's MSRLT counters so
/// reports stay comparable.
pub fn collect_pending_parallel(
    proc: &mut Process,
    pending: &[PendingFrame],
    workers: usize,
) -> Result<(Vec<u8>, ExecutionState, CollectStats), MigError> {
    let (payload, exec, stats, _) = collect_pending_parallel_flight(proc, pending, workers, None)?;
    Ok((payload, exec, stats))
}

/// [`collect_pending_parallel`] plus the per-shard [`ShardReport`]
/// (imbalance telemetry) and optional flight-recorder events.
pub fn collect_pending_parallel_flight(
    proc: &mut Process,
    pending: &[PendingFrame],
    workers: usize,
    flight: Option<&hpm_obs::FlightTrack>,
) -> Result<(Vec<u8>, ExecutionState, CollectStats, ShardReport), MigError> {
    let exec = pending_exec_state(proc, pending);
    let roots: Vec<u64> = pending
        .iter()
        .flat_map(|f| f.live.iter().copied())
        .collect();
    let (payload, stats, msrlt_stats, shards) = collect_parallel_flight(
        &proc.space,
        &proc.msrlt,
        &roots,
        workers,
        TranslationMode::default(),
        flight,
    )
    .map_err(MigError::from)?;
    proc.msrlt.absorb_stats(&msrlt_stats);
    Ok((payload, exec, stats, shards))
}

/// The execution state the recorded frames will ship — computable before
/// collection runs, which is what lets the pipelined path send the image
/// prefix while `Save_pointer` is still traversing.
pub fn pending_exec_state(proc: &Process, pending: &[PendingFrame]) -> ExecutionState {
    ExecutionState {
        frames: pending
            .iter()
            .rev()
            .map(|p| FrameState {
                function: p.function.clone(),
                poll_point: p.poll_point,
                live_count: p.live.len() as u32,
            })
            .collect(),
        heap_high_water: proc.msrlt.heap_len(),
    }
}

/// [`collect_pending_traced`], but the payload leaves through `sink` in
/// `chunk_bytes`-sized chunks as the DFS produces it, instead of
/// accumulating in memory. Concatenating the chunks yields exactly the
/// monolithic payload.
pub fn collect_pending_streamed<'a>(
    proc: &'a mut Process,
    pending: &[PendingFrame],
    chunk_bytes: usize,
    tracer: &Tracer,
    sink: ChunkSink<'a>,
) -> Result<(ExecutionState, CollectStats), MigError> {
    collect_pending_streamed_flight(proc, pending, chunk_bytes, tracer, sink, None)
}

/// [`collect_pending_streamed`] with an optional flight-recorder track
/// on the collector: every flushed chunk leaves a `chunk.flush` event.
pub fn collect_pending_streamed_flight<'a>(
    proc: &'a mut Process,
    pending: &[PendingFrame],
    chunk_bytes: usize,
    tracer: &Tracer,
    sink: ChunkSink<'a>,
    flight: Option<hpm_obs::FlightTrack>,
) -> Result<(ExecutionState, CollectStats), MigError> {
    let exec = pending_exec_state(proc, pending);
    let mut collector = Collector::new(&mut proc.space, &mut proc.msrlt)
        .with_tracer(tracer.clone())
        .with_sink(chunk_bytes, sink);
    if let Some(t) = flight {
        collector = collector.with_flight(t);
    }
    for frame in pending {
        for &addr in &frame.live {
            collector.save_variable(addr).map_err(MigError::from)?;
        }
    }
    let (_, stats) = collector.finish();
    Ok((exec, stats))
}
