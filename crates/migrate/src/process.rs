//! A migratable process: address space + MSRLT, kept in lock-step.
//!
//! The paper's transformed programs route every allocation and frame
//! event through the migration runtime so the MSRLT always reflects the
//! live block population. That bookkeeping is the §4.3 execution-overhead
//! source: each `malloc` pays an MSRLT registration on top of the
//! allocation itself.

use crate::MigError;
use hpm_arch::Architecture;
use hpm_core::Msrlt;
use hpm_memory::{AddressSpace, BlockInfo, FrameId};
use hpm_types::TypeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// When a process should observe a migration request at a poll-point.
#[derive(Debug, Clone, Default)]
pub enum Trigger {
    /// Never migrate (baseline runs).
    #[default]
    Never,
    /// Migrate at the `n`-th poll-point execution (deterministic, used by
    /// the benchmarks).
    AtPollCount(u64),
    /// Migrate at the first poll-point at or after the `n`-th execution.
    /// Unlike [`Trigger::AtPollCount`], this cannot be "missed" when some
    /// polls run while restoration is still in progress — the scheduler
    /// uses it as a preemption quantum.
    AtLeastPollCount(u64),
    /// Migrate when an external scheduler sets the flag (used by the
    /// cluster).
    External(Arc<AtomicBool>),
}

/// A migratable process image on one machine.
#[derive(Debug)]
pub struct Process {
    /// The simulated address space (public: workload code computes in it).
    pub space: AddressSpace,
    /// The MSR lookup table, mirrored from allocation events.
    pub msrlt: Msrlt,
    program: String,
    trigger: Trigger,
    polls: u64,
}

impl Process {
    /// New process for `program` on `arch`.
    pub fn new(program: &str, arch: Architecture) -> Self {
        Process {
            space: AddressSpace::new(arch),
            msrlt: Msrlt::new(),
            program: program.to_string(),
            trigger: Trigger::Never,
            polls: 0,
        }
    }

    /// Program name (carried in image headers).
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Install the migration trigger.
    pub fn set_trigger(&mut self, t: Trigger) {
        self.trigger = t;
    }

    /// Number of poll-point executions so far (§4.3 instrumentation).
    pub fn poll_count(&self) -> u64 {
        self.polls
    }

    /// The poll-point check: increments the counter and reports whether a
    /// migration request is pending. This is the entire per-poll cost the
    /// annotation adds on the no-migration path.
    #[inline]
    pub fn poll(&mut self) -> bool {
        self.polls += 1;
        match &self.trigger {
            Trigger::Never => false,
            Trigger::AtPollCount(n) => self.polls == *n,
            Trigger::AtLeastPollCount(n) => self.polls >= *n,
            Trigger::External(flag) => flag.load(Ordering::Relaxed),
        }
    }

    fn info_at(&self, addr: u64) -> BlockInfo {
        BlockInfo::from(self.space.block_at(addr).expect("block just created"))
    }

    /// Define a global variable and register it in the MSRLT.
    pub fn define_global(&mut self, name: &str, ty: TypeId, count: u64) -> Result<u64, MigError> {
        let addr = self.space.define_global(name, ty, count)?;
        let info = self.info_at(addr);
        self.msrlt.register(&info);
        Ok(addr)
    }

    /// Enter a function: push an address-space frame and an MSRLT group.
    pub fn enter_function(&mut self, name: &str) -> FrameId {
        let f = self.space.push_frame(name);
        self.msrlt.begin_frame();
        f
    }

    /// Declare a local in the current function.
    pub fn declare_local(
        &mut self,
        frame: FrameId,
        name: &str,
        ty: TypeId,
        count: u64,
    ) -> Result<u64, MigError> {
        let addr = self.space.define_local(frame, name, ty, count)?;
        let info = self.info_at(addr);
        self.msrlt.register(&info);
        Ok(addr)
    }

    /// Leave a function: drop its locals from both structures.
    pub fn exit_function(&mut self, frame: FrameId) -> Result<(), MigError> {
        self.space.pop_frame(frame)?;
        self.msrlt.end_frame();
        Ok(())
    }

    /// `malloc` with MSRLT registration.
    pub fn malloc(&mut self, ty: TypeId, count: u64) -> Result<u64, MigError> {
        let addr = self.space.malloc(ty, count)?;
        let info = self.info_at(addr);
        self.msrlt.register(&info);
        Ok(addr)
    }

    /// `free` with MSRLT unregistration.
    pub fn free(&mut self, addr: u64) -> Result<(), MigError> {
        self.msrlt.unregister(addr);
        self.space.free(addr)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> Process {
        Process::new("test", Architecture::dec5000())
    }

    #[test]
    fn malloc_registers_free_unregisters() {
        let mut p = proc();
        let int = p.space.types_mut().int();
        let a = p.malloc(int, 4).unwrap();
        assert!(p.msrlt.lookup_addr(a + 4).is_some());
        p.free(a).unwrap();
        assert!(p.msrlt.lookup_addr(a + 4).is_none());
    }

    #[test]
    fn frames_mirror_into_msrlt() {
        let mut p = proc();
        let int = p.space.types_mut().int();
        let f = p.enter_function("main");
        let x = p.declare_local(f, "x", int, 1).unwrap();
        let (id, _) = p.msrlt.lookup_addr(x).unwrap();
        assert_eq!(id.group, 2, "first frame is group 2");
        p.exit_function(f).unwrap();
        assert!(p.msrlt.lookup_addr(x).is_none());
    }

    #[test]
    fn poll_triggers_exactly_once_at_count() {
        let mut p = proc();
        p.set_trigger(Trigger::AtPollCount(3));
        assert!(!p.poll());
        assert!(!p.poll());
        assert!(p.poll());
        assert!(!p.poll(), "AtPollCount fires only at the exact count");
        assert_eq!(p.poll_count(), 4);
    }

    #[test]
    fn external_trigger() {
        let mut p = proc();
        let flag = Arc::new(AtomicBool::new(false));
        p.set_trigger(Trigger::External(Arc::clone(&flag)));
        assert!(!p.poll());
        flag.store(true, Ordering::Relaxed);
        assert!(p.poll());
    }

    #[test]
    fn never_trigger_counts_polls() {
        let mut p = proc();
        for _ in 0..100 {
            assert!(!p.poll());
        }
        assert_eq!(p.poll_count(), 100);
    }
}
