//! # hpm-migrate — the process migration environment
//!
//! §2 of the paper: programs are transformed into a *migratable format* by
//! source-code annotation. At selected *poll-points* the program checks
//! for a migration request; when one is pending, the migration point
//! collects execution state (the call chain and each frame's resume
//! point) and live data (via the MSRM library), ships them to a waiting
//! process on the destination machine, and terminates. The destination
//! process re-enters the recorded call chain, restores live data at the
//! corresponding locations, and resumes.
//!
//! This crate is the runtime those annotations talk to:
//!
//! * [`Process`] — a migratable process: simulated address space + MSRLT,
//!   with allocation and frame events mirrored into the MSRLT (the
//!   runtime bookkeeping whose cost §4.3 measures);
//! * [`ExecutionState`] — the transmitted call-chain description;
//! * [`MigCtx`] / [`Flow`] — what annotated code uses: `enter`/`local`/
//!   `poll`/`save_frame`/`resume_point`/`restore_frame`/`leave` — the
//!   expansion of the paper's inserted macros;
//! * [`MigratableProgram`] — the shape of a transformed program;
//! * [`driver`] — single-process-pair migration driver producing a
//!   [`MigrationReport`] with the paper's Collect / Tx / Restore split;
//! * [`cluster`] — a two-machine scheduler running source and destination
//!   as real threads connected by an `hpm-net` channel.
//!
//! ## Restoration ordering (faithful to §3.2)
//!
//! Live data is collected innermost-frame-first as the stack unwinds, and
//! restored "at the same locations": the destination re-enters the call
//! chain, the innermost frame restores its locals at the migration point
//! and resumes computing; each outer frame restores its own locals when
//! control returns to it. Because resumed execution can `malloc` *before*
//! outer frames have consumed their stream sections, the image header
//! carries the source's heap-index high-water mark and the destination
//! reserves those indices — new allocations never collide with ids still
//! referenced by un-restored sections.

pub mod cluster;
pub mod ctx;
pub mod driver;
pub mod exec;
pub mod process;
pub mod sched;

pub use cluster::{ClusterReport, TwoMachineCluster};
pub use ctx::{
    collect_pending, collect_pending_parallel, collect_pending_parallel_flight,
    collect_pending_streamed, collect_pending_streamed_flight, collect_pending_traced,
    pending_exec_state, Flow, MigCtx, MigratableProgram, PendingFrame,
};
pub use driver::{
    collect_image, collect_image_traced, plan_migration, preflight_audit, resume_from_image,
    resume_from_image_parallel, resume_from_image_traced, run_migrating, run_migrating_parallel,
    run_migrating_parallel_recorded, run_migrating_pipelined, run_migrating_pipelined_recorded,
    run_migrating_planned, run_migrating_planned_recorded, run_migrating_recorded,
    run_migrating_resilient, run_migrating_resilient_recorded, run_migrating_traced, run_straight,
    run_to_migration, FallbackPolicy, MigratedSource, MigrationPlan, MigrationReport, MigrationRun,
    PipelineConfig, PipelineStats, RecoveryPolicy, RecoveryStats, COMPRESS_BYTES_CUTOFF,
    PARALLEL_BYTES_CUTOFF, WIRE_CHUNK_BYTES,
};
pub use exec::{ExecutionState, FrameState};
pub use process::{Process, Trigger};
pub use sched::{Job, SchedStats, Scheduler, SimMachine};

use hpm_core::CoreError;
use hpm_memory::MemError;
use hpm_net::NetError;
use hpm_xdr::XdrError;

/// Errors across the migration environment.
#[derive(Debug, Clone, PartialEq)]
pub enum MigError {
    /// Collection/restoration failure.
    Core(String),
    /// Address-space failure.
    Mem(String),
    /// Stream decoding failure.
    Xdr(String),
    /// Transport failure.
    Net(String),
    /// The annotated program misused the protocol (wrong enter/leave
    /// nesting, resume mismatch, …).
    Protocol(String),
    /// The pre-flight registry audit found the MSRLT snapshot incoherent;
    /// the migration was refused before collection started. The message
    /// lists every finding, one per line.
    Preflight(String),
}

impl From<CoreError> for MigError {
    fn from(e: CoreError) -> Self {
        MigError::Core(e.to_string())
    }
}

impl From<MemError> for MigError {
    fn from(e: MemError) -> Self {
        MigError::Mem(e.to_string())
    }
}

impl From<XdrError> for MigError {
    fn from(e: XdrError) -> Self {
        MigError::Xdr(e.to_string())
    }
}

impl From<NetError> for MigError {
    fn from(e: NetError) -> Self {
        MigError::Net(e.to_string())
    }
}

impl std::fmt::Display for MigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigError::Core(m) => write!(f, "core: {m}"),
            MigError::Mem(m) => write!(f, "memory: {m}"),
            MigError::Xdr(m) => write!(f, "xdr: {m}"),
            MigError::Net(m) => write!(f, "net: {m}"),
            MigError::Protocol(m) => write!(f, "protocol: {m}"),
            MigError::Preflight(m) => write!(f, "pre-flight registry audit failed: {m}"),
        }
    }
}

impl std::error::Error for MigError {}
