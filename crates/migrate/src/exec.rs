//! Execution state: the transmitted call-chain description.

use crate::MigError;
use hpm_xdr::{XdrDecoder, XdrEncoder};

/// One frame of the captured call chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameState {
    /// Function name (validates re-entry).
    pub function: String,
    /// The poll-point at which this frame stopped: the innermost frame's
    /// migration point, or the call-site poll-point of outer frames.
    pub poll_point: u32,
    /// How many live-variable items this frame contributed to the
    /// memory-state stream.
    pub live_count: u32,
}

/// The captured execution state: call chain outermost-first, plus the
/// source heap-index high-water mark (see crate docs on ordering).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionState {
    /// Frames, outermost (e.g. `main`) first.
    pub frames: Vec<FrameState>,
    /// Source MSRLT heap-group length at collection time; the destination
    /// reserves indices below this.
    pub heap_high_water: u32,
}

impl ExecutionState {
    /// Serialize to XDR bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_u32(self.heap_high_water);
        enc.put_u32(self.frames.len() as u32);
        for f in &self.frames {
            enc.put_string(&f.function);
            enc.put_u32(f.poll_point);
            enc.put_u32(f.live_count);
        }
        enc.into_bytes()
    }

    /// Deserialize from XDR bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, MigError> {
        let mut dec = XdrDecoder::new(bytes);
        let heap_high_water = dec.get_u32()?;
        let n = dec.get_u32()?;
        let mut frames = Vec::with_capacity(n as usize);
        for _ in 0..n {
            frames.push(FrameState {
                function: dec.get_string()?,
                poll_point: dec.get_u32()?,
                live_count: dec.get_u32()?,
            });
        }
        if !dec.is_empty() {
            return Err(MigError::Protocol(
                "trailing bytes in execution state".into(),
            ));
        }
        Ok(ExecutionState {
            frames,
            heap_high_water,
        })
    }

    /// Call-chain depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionState {
        ExecutionState {
            frames: vec![
                FrameState {
                    function: "main".into(),
                    poll_point: 3,
                    live_count: 4,
                },
                FrameState {
                    function: "foo".into(),
                    poll_point: 1,
                    live_count: 2,
                },
            ],
            heap_high_water: 17,
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        assert_eq!(ExecutionState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn empty_state() {
        let s = ExecutionState::default();
        let d = ExecutionState::decode(&s.encode()).unwrap();
        assert_eq!(d.depth(), 0);
        assert_eq!(d.heap_high_water, 0);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = sample().encode();
        b.extend_from_slice(&[0; 4]);
        assert!(matches!(
            ExecutionState::decode(&b),
            Err(MigError::Protocol(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let b = sample().encode();
        assert!(ExecutionState::decode(&b[..b.len() - 4]).is_err());
    }
}
