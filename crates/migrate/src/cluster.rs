//! A two-machine cluster: source and destination as real threads.
//!
//! §2: "We model a distributed environment to have a scheduler which
//! performs process management and sends a migration request to a
//! process. … First, the process on the destination machine is invoked to
//! wait for execution and memory states of the migrating process. Then,
//! the migrating process collects those information and sends them to the
//! waiting process. After successful transmission, the migrating process
//! terminates. At the same time, the new process restores the transmitted
//! execution and memory states, and resumes execution."
//!
//! The [`driver`](crate::driver) runs both sides in one thread for
//! deterministic measurement; this module runs them as genuinely
//! concurrent machines connected by an [`hpm_net::Channel`], with the
//! scheduler (the caller's thread) delivering the migration request.

use crate::ctx::{MigCtx, MigratableProgram};
use crate::driver::{collect_image, resume_from_image};
use crate::process::{Process, Trigger};
use crate::{Flow, MigError};
use hpm_arch::Architecture;
use hpm_net::{channel_pair, NetworkModel, TransferSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Result digest from the destination process.
    pub results: Vec<(String, String)>,
    /// Migration image size.
    pub image_bytes: u64,
    /// Collection wall time on the source machine.
    pub collect_time: Duration,
    /// Modeled transmission time over the cluster link.
    pub tx_time: Duration,
    /// Restoration wall time on the destination machine.
    pub restore_time: Duration,
    /// Poll-points the source executed before the request was observed.
    pub src_polls: u64,
    /// Wire-level transfer accounting for the cluster link.
    pub transfer: TransferSnapshot,
}

/// A pair of named machines joined by one link.
#[derive(Debug, Clone)]
pub struct TwoMachineCluster {
    /// Source machine architecture.
    pub src_arch: Architecture,
    /// Destination machine architecture.
    pub dst_arch: Architecture,
    /// The link between them.
    pub link: NetworkModel,
}

impl TwoMachineCluster {
    /// The paper's §4.1 testbed: DEC 5000/120 → SPARC 20 over 10 Mb/s.
    pub fn paper_heterogeneous() -> Self {
        TwoMachineCluster {
            src_arch: Architecture::dec5000(),
            dst_arch: Architecture::sparc20(),
            link: NetworkModel::ethernet_10(),
        }
    }

    /// The paper's Table 1 testbed: Ultra 5 → Ultra 5 over 100 Mb/s.
    pub fn paper_homogeneous() -> Self {
        TwoMachineCluster {
            src_arch: Architecture::ultra5(),
            dst_arch: Architecture::ultra5(),
            link: NetworkModel::ethernet_100(),
        }
    }

    /// Run `make()`-built programs on both machines, with the scheduler
    /// delivering the migration request `request_delay_ms` after launch
    /// (0 = before the source observes its first poll-point). The source
    /// program must run long enough to observe the request.
    ///
    /// The scheduler (this thread) invokes the destination first (it
    /// blocks waiting on the channel), starts the source, then raises the
    /// migration flag.
    pub fn run<P, F>(&self, make: F, request_delay_ms: u64) -> Result<ClusterReport, MigError>
    where
        P: MigratableProgram,
        F: Fn() -> P + Send + Sync + 'static,
    {
        let make = Arc::new(make);
        let (src_end, dst_end) = channel_pair(self.link);
        let flag = Arc::new(AtomicBool::new(false));

        // Destination machine: invoked first, waits for the image.
        let dst_arch = self.dst_arch.clone();
        let make_dst = Arc::clone(&make);
        let dst_thread = std::thread::spawn(move || -> Result<_, MigError> {
            let image = dst_end.recv()?;
            let mut prog = make_dst();
            let t0 = std::time::Instant::now();
            let (results, _proc, _stats, restore_time) =
                resume_from_image(&mut prog, dst_arch, &image)?;
            let _total = t0.elapsed();
            Ok((results, restore_time, image.len() as u64))
        });

        // Source machine.
        let src_arch = self.src_arch.clone();
        let src_flag = Arc::clone(&flag);
        let make_src = Arc::clone(&make);
        let src_thread = std::thread::spawn(move || -> Result<_, MigError> {
            let mut prog = make_src();
            let mut proc = Process::new(prog.name(), src_arch);
            proc.set_trigger(Trigger::External(src_flag));
            prog.setup(&mut proc)?;
            let mut ctx = MigCtx::new_run(&mut proc);
            let flow = prog.run(&mut ctx)?;
            if flow == Flow::Done {
                return Err(MigError::Protocol(
                    "source completed before the migration request arrived".into(),
                ));
            }
            let (image, collect_time, _stats, _exec, _audit) = collect_image(ctx)?;
            let polls = proc.poll_count();
            src_end.send(image)?;
            // "After successful transmission, the migrating process
            // terminates": the thread returns, dropping the process.
            Ok((collect_time, polls, src_end))
        });

        // The scheduler delivers the request.
        if request_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(request_delay_ms));
        }
        flag.store(true, Ordering::Relaxed);

        let (collect_time, src_polls, src_end) = src_thread
            .join()
            .map_err(|_| MigError::Protocol("source machine panicked".into()))??;
        let (results, restore_time, image_bytes) = dst_thread
            .join()
            .map_err(|_| MigError::Protocol("destination machine panicked".into()))??;
        let transfer = src_end.stats().snapshot();
        let tx_time = transfer.modeled_tx_time();

        Ok(ClusterReport {
            results,
            image_bytes,
            collect_time,
            tx_time,
            restore_time,
            src_polls,
            transfer,
        })
    }
}
