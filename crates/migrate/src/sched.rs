//! A checkpointing scheduler — the paper's §5 future work, built on the
//! §3 mechanisms.
//!
//! "Work remains to be done to develop a distributed system which can
//! support network process migration dynamically, transparently, and
//! efficiently. This includes the development of a scheduler which can
//! make optimal decisions on when and where to migrate …"
//!
//! The scheduler runs jobs in *slices*: each slice resumes a job (from
//! scratch or from its last migration image), lets it execute a quantum
//! of poll-points, and then preempts it **by migrating it to nowhere** —
//! the migration image doubles as a checkpoint. Because images are fully
//! machine-independent, rebalancing a job onto a different-architecture
//! machine is the same operation as resuming it locally. This is exactly
//! the paper's observation that data collection/restoration is "a basic
//! component of network process migration" from which schedulers can be
//! composed.

use crate::ctx::{collect_pending, MigCtx, MigratableProgram};
use crate::exec::ExecutionState;
use crate::process::{Process, Trigger};
use crate::{Flow, MigError};
use hpm_arch::Architecture;
use hpm_core::image::{frame_image, unframe_image, ImageHeader};
use hpm_core::IMAGE_VERSION;
use hpm_net::NetworkModel;
use hpm_obs::{StatField, StatGroup, Tracer};
use std::time::Duration;

/// Factory producing fresh program values for one job (each slice runs a
/// new process of "the same executable").
pub type ProgramFactory = Box<dyn Fn() -> Box<dyn MigratableProgram + Send> + Send>;

enum JobState {
    Fresh,
    Suspended(Vec<u8>),
    Finished(Vec<(String, String)>),
}

/// One schedulable job.
pub struct Job {
    /// Job label (unique per scheduler).
    pub label: String,
    factory: ProgramFactory,
    state: JobState,
    /// Slices executed so far.
    pub slices: u32,
    /// Inter-machine migrations performed on this job.
    pub migrations: u32,
    /// Modeled bytes shipped for this job (checkpoints + rebalances).
    pub bytes_moved: u64,
}

impl Job {
    /// Whether the job has completed.
    pub fn finished(&self) -> bool {
        matches!(self.state, JobState::Finished(_))
    }

    /// Results, once finished.
    pub fn results(&self) -> Option<&[(String, String)]> {
        match &self.state {
            JobState::Finished(r) => Some(r),
            _ => None,
        }
    }
}

/// A machine in the simulated cluster.
pub struct SimMachine {
    /// Machine name.
    pub name: String,
    /// Its architecture (jobs migrate freely across different ones).
    pub arch: Architecture,
    /// Job queue.
    pub jobs: Vec<Job>,
}

impl SimMachine {
    fn unfinished(&self) -> usize {
        self.jobs.iter().filter(|j| !j.finished()).count()
    }
}

/// Aggregate scheduler statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedStats {
    /// Slices executed.
    pub slices: u64,
    /// Checkpoints written (slice preemptions).
    pub checkpoints: u64,
    /// Jobs moved between machines.
    pub rebalances: u64,
    /// Modeled time spent transmitting rebalanced jobs.
    pub tx_time: Duration,
}

impl StatGroup for SchedStats {
    fn group(&self) -> &'static str {
        "sched"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("slices", self.slices),
            StatField::count("checkpoints", self.checkpoints),
            StatField::count("rebalances", self.rebalances),
            StatField::duration("tx_time", self.tx_time),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.slices += other.slices;
        self.checkpoints += other.checkpoints;
        self.rebalances += other.rebalances;
        self.tx_time += other.tx_time;
    }
}

/// The checkpointing scheduler.
pub struct Scheduler {
    /// Cluster machines.
    pub machines: Vec<SimMachine>,
    /// Poll-point quantum per slice.
    pub quantum: u64,
    /// Link model used for rebalancing transfers.
    pub link: NetworkModel,
    /// Counters.
    pub stats: SchedStats,
    tracer: Tracer,
}

impl Scheduler {
    /// New scheduler with the given preemption quantum.
    pub fn new(quantum: u64, link: NetworkModel) -> Self {
        Scheduler {
            machines: Vec::new(),
            quantum,
            link,
            stats: SchedStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer: every slice becomes a `scheduler.slice` span, and
    /// checkpoints/rebalances become `scheduler.checkpoint` /
    /// `scheduler.rebalance` instants carrying image sizes.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Add a machine; returns its index.
    pub fn add_machine(&mut self, name: &str, arch: Architecture) -> usize {
        self.machines.push(SimMachine {
            name: name.to_string(),
            arch,
            jobs: Vec::new(),
        });
        self.machines.len() - 1
    }

    /// Submit a job to machine `m`.
    pub fn submit(
        &mut self,
        m: usize,
        label: &str,
        factory: impl Fn() -> Box<dyn MigratableProgram + Send> + Send + 'static,
    ) {
        self.machines[m].jobs.push(Job {
            label: label.to_string(),
            factory: Box::new(factory),
            state: JobState::Fresh,
            slices: 0,
            migrations: 0,
            bytes_moved: 0,
        });
    }

    /// Run one slice of one job on machine `arch`, advancing its state.
    fn run_slice(arch: &Architecture, quantum: u64, job: &mut Job) -> Result<(), MigError> {
        job.slices += 1;
        match std::mem::replace(&mut job.state, JobState::Fresh) {
            JobState::Finished(r) => {
                job.state = JobState::Finished(r);
                Ok(())
            }
            JobState::Fresh => {
                let mut prog = (job.factory)();
                let mut proc = Process::new(prog.name(), arch.clone());
                proc.set_trigger(Trigger::AtLeastPollCount(quantum));
                prog.setup(&mut proc)?;
                let mut ctx = MigCtx::new_run(&mut proc);
                match prog.run(&mut ctx)? {
                    Flow::Done => {
                        let r = prog.results(&mut proc)?;
                        job.state = JobState::Finished(r);
                    }
                    Flow::Migrate => {
                        let image = Self::checkpoint(ctx)?;
                        job.bytes_moved += image.len() as u64;
                        job.state = JobState::Suspended(image);
                    }
                }
                Ok(())
            }
            JobState::Suspended(image) => {
                let mut prog = (job.factory)();
                let (header, exec_bytes, payload) = unframe_image(&image)?;
                if header.program != prog.name() {
                    return Err(MigError::Protocol("job image/program mismatch".into()));
                }
                let exec = ExecutionState::decode(&exec_bytes)?;
                let mut proc = Process::new(prog.name(), arch.clone());
                proc.space.reserve_heap_bytes(header.registered_bytes);
                proc.set_trigger(Trigger::AtLeastPollCount(quantum));
                prog.setup(&mut proc)?;
                let mut ctx = MigCtx::new_resume(&mut proc, exec, payload);
                match prog.run(&mut ctx)? {
                    Flow::Done => {
                        let r = prog.results(&mut proc)?;
                        job.state = JobState::Finished(r);
                    }
                    Flow::Migrate => {
                        let image = Self::checkpoint(ctx)?;
                        job.bytes_moved += image.len() as u64;
                        job.state = JobState::Suspended(image);
                    }
                }
                Ok(())
            }
        }
    }

    fn checkpoint(ctx: MigCtx<'_>) -> Result<Vec<u8>, MigError> {
        let (proc, pending) = ctx.into_parts()?;
        let (payload, exec, _) = collect_pending(proc, &pending)?;
        let header = ImageHeader {
            version: IMAGE_VERSION,
            source_arch: proc.space.arch().name.to_string(),
            source_pointer_size: proc.space.arch().pointer_size as u32,
            program: proc.program().to_string(),
            registered_bytes: proc.msrlt.registered_bytes(),
        };
        Ok(frame_image(&header, &exec.encode(), &payload))
    }

    /// One scheduling epoch: every machine runs one slice of each of its
    /// unfinished jobs, then the cluster rebalances.
    pub fn epoch(&mut self) -> Result<(), MigError> {
        let tracer = self.tracer.clone();
        for (mi, m) in self.machines.iter_mut().enumerate() {
            for (ji, job) in m.jobs.iter_mut().enumerate() {
                if !job.finished() {
                    let before = job.bytes_moved;
                    tracer.begin_args(
                        "scheduler.slice",
                        &[("machine", mi as f64), ("job", ji as f64)],
                    );
                    let r = Self::run_slice(&m.arch, self.quantum, job);
                    tracer.end("scheduler.slice");
                    r?;
                    self.stats.slices += 1;
                    if !job.finished() {
                        self.stats.checkpoints += 1;
                        tracer.instant_args(
                            "scheduler.checkpoint",
                            &[
                                ("machine", mi as f64),
                                ("bytes", (job.bytes_moved - before) as f64),
                            ],
                        );
                    }
                }
            }
        }
        self.rebalance();
        Ok(())
    }

    /// Greedy load balancing: move suspended jobs from the most-loaded to
    /// the least-loaded machine while their queue lengths differ by ≥ 2
    /// ("a scheduler which can make optimal decisions on … where to
    /// migrate").
    pub fn rebalance(&mut self) {
        loop {
            let (mut hi, mut lo) = (0usize, 0usize);
            for (i, m) in self.machines.iter().enumerate() {
                if m.unfinished() > self.machines[hi].unfinished() {
                    hi = i;
                }
                if m.unfinished() < self.machines[lo].unfinished() {
                    lo = i;
                }
            }
            if self.machines[hi].unfinished() < self.machines[lo].unfinished() + 2 {
                return;
            }
            // Move one suspended (or fresh) job hi → lo.
            let pos = self.machines[hi].jobs.iter().position(|j| !j.finished());
            let Some(pos) = pos else { return };
            let mut job = self.machines[hi].jobs.remove(pos);
            job.migrations += 1;
            let mut img_bytes = 0u64;
            if let JobState::Suspended(img) = &job.state {
                img_bytes = img.len() as u64;
                self.stats.tx_time += self.link.tx_time(img_bytes);
            }
            self.stats.rebalances += 1;
            self.tracer.instant_args(
                "scheduler.rebalance",
                &[
                    ("from", hi as f64),
                    ("to", lo as f64),
                    ("bytes", img_bytes as f64),
                ],
            );
            self.machines[lo].jobs.push(job);
        }
    }

    /// Run epochs until every job finishes (or the epoch budget runs out).
    pub fn run_to_completion(&mut self, max_epochs: u32) -> Result<(), MigError> {
        for _ in 0..max_epochs {
            if self.machines.iter().all(|m| m.unfinished() == 0) {
                return Ok(());
            }
            self.epoch()?;
        }
        if self.machines.iter().all(|m| m.unfinished() == 0) {
            Ok(())
        } else {
            Err(MigError::Protocol(
                "epoch budget exhausted with jobs unfinished".into(),
            ))
        }
    }

    /// All finished jobs' results, labelled.
    pub fn results(&self) -> Vec<(String, Vec<(String, String)>)> {
        let mut out = Vec::new();
        for m in &self.machines {
            for j in &m.jobs {
                if let Some(r) = j.results() {
                    out.push((j.label.clone(), r.to_vec()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_straight;
    use hpm_net::NetworkModel;

    // Reuse the workload-free Summer program shape via a tiny local job.
    struct Counter {
        limit: i64,
        result: Option<i64>,
    }

    impl Counter {
        fn boxed(limit: i64) -> Box<dyn MigratableProgram + Send> {
            Box::new(Counter {
                limit,
                result: None,
            })
        }
    }

    impl MigratableProgram for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
            let int = proc.space.types_mut().int();
            proc.define_global("acc", int, 1)?;
            Ok(())
        }
        fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
            let int = ctx.proc().space.types_mut().int();
            let acc = ctx.proc().space.block_infos()[0].addr;
            let f = ctx.enter("main")?;
            let i = ctx.local(f, "i", int, 1)?;
            let live = [i, acc];
            let mut iv;
            if ctx.resume_point() == Some(1) {
                ctx.restore_frame(&live)?;
                iv = ctx.proc().space.load_int(i)?;
            } else {
                iv = 0;
            }
            while iv < self.limit {
                ctx.proc().space.store_int(i, iv)?;
                if ctx.poll() {
                    ctx.save_frame(1, &live)?;
                    return Ok(Flow::Migrate);
                }
                let a = ctx.proc().space.load_int(acc)?;
                ctx.proc().space.store_int(acc, a + 1)?;
                iv += 1;
            }
            self.result = Some(ctx.proc().space.load_int(acc)?);
            ctx.leave(f)?;
            Ok(Flow::Done)
        }
        fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
            Ok(vec![(
                "count".into(),
                self.result.unwrap_or(-1).to_string(),
            )])
        }
    }

    #[test]
    fn single_job_runs_in_slices() {
        let mut s = Scheduler::new(100, NetworkModel::instant());
        let m = s.add_machine("m0", Architecture::dec5000());
        s.submit(m, "job", || Counter::boxed(450));
        s.run_to_completion(50).unwrap();
        let r = s.results();
        assert_eq!(r[0].1[0].1, "450");
        // 450 iterations at quantum 100 → ≥ 4 checkpoints.
        assert!(s.stats.checkpoints >= 4, "{:?}", s.stats);
    }

    #[test]
    fn slices_match_straight_run() {
        let mut p = Counter {
            limit: 777,
            result: None,
        };
        let (expect, _) = run_straight(&mut p, Architecture::sparc20()).unwrap();
        let mut s = Scheduler::new(50, NetworkModel::instant());
        let m = s.add_machine("m0", Architecture::sparc20());
        s.submit(m, "job", || Counter::boxed(777));
        s.run_to_completion(100).unwrap();
        assert_eq!(s.results()[0].1, expect);
    }

    #[test]
    fn rebalancing_moves_jobs_across_heterogeneous_machines() {
        let mut s = Scheduler::new(60, NetworkModel::ethernet_10());
        let m0 = s.add_machine("dec", Architecture::dec5000());
        let _m1 = s.add_machine("sparc", Architecture::sparc20());
        let _m2 = s.add_machine("x64", Architecture::x86_64_sim());
        // All six jobs start on one machine; rebalancing must spread them.
        for k in 0..6 {
            s.submit(m0, &format!("job{k}"), move || Counter::boxed(300 + k));
        }
        s.run_to_completion(60).unwrap();
        assert!(s.stats.rebalances >= 4, "{:?}", s.stats);
        assert!(s.stats.tx_time > Duration::ZERO);
        for (label, r) in s.results() {
            let k: i64 = label.trim_start_matches("job").parse().unwrap();
            assert_eq!(r[0].1, (300 + k).to_string(), "{label}");
        }
    }

    #[test]
    fn checkpoint_images_survive_arch_hops() {
        // A job sliced alternately on little- and big-endian machines:
        // every checkpoint crosses the representation boundary.
        let mut s = Scheduler::new(40, NetworkModel::instant());
        let m0 = s.add_machine("dec", Architecture::dec5000());
        s.submit(m0, "hopper", || Counter::boxed(500));
        for hop in 0..60 {
            if s.machines.iter().all(|m| m.unfinished() == 0) {
                break;
            }
            s.epoch().unwrap();
            // Force the job onto the other machine each epoch.
            if s.machines.len() == 1 {
                s.add_machine("sparc", Architecture::sparc20());
            }
            let from = hop % 2;
            let to = 1 - from;
            if from < s.machines.len() {
                if let Some(pos) = s.machines[from].jobs.iter().position(|j| !j.finished()) {
                    let job = s.machines[from].jobs.remove(pos);
                    s.machines[to].jobs.push(job);
                }
            }
        }
        let r = s.results();
        assert_eq!(r.len(), 1, "job must finish");
        assert_eq!(r[0].1[0].1, "500");
    }
}
