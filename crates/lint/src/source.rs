//! Per-unit front-end pass: parse, screen, and type-shape checks.
//!
//! The first pass family over a mini-C unit. Everything the
//! pre-compiler's own screens reject — at parse time (`union`, `goto`,
//! `switch`, varargs, function pointers) or in the cast screen
//! (pointer↔integer casts) — becomes a coded diagnostic instead of a
//! hard error, so one run reports *every* problem in the unit. On top
//! of those, this pass adds the pointer-compatibility check the cast
//! screen deliberately skips: casts between pointers to differently
//! shaped pointees (**HPM008**), which the TI table would mis-restore.

use crate::diag::{Diagnostic, LintCode, Report};
use hpm_annotate::ast::{Expr, Function, Program, Span, Stmt, TypeExpr};
use hpm_annotate::safety::{check_migration_safety, UnsafeFeature};
use hpm_annotate::{parse, CError};
use std::collections::BTreeMap;

/// Lint the front end of one unit. Returns the report plus the program
/// when it parsed (so later passes can run).
pub fn lint_front_end(unit: &str, src: &str) -> (Report, Option<Program>) {
    let mut report = Report::new();
    let program = match parse(src) {
        Ok(p) => p,
        Err(e) => {
            report.push(front_end_error(unit, &e));
            return (report, None);
        }
    };
    if let Err(e) = hpm_annotate::sema::check_names(&program) {
        report.push(front_end_error(unit, &e));
        return (report, Some(program));
    }
    for u in check_migration_safety(&program) {
        let (line, col) = u.position();
        let code = match u {
            UnsafeFeature::PointerToInt { .. } => LintCode::PointerToInt,
            UnsafeFeature::IntToPointer { .. } => LintCode::IntToPointer,
            UnsafeFeature::Union { .. } => LintCode::Union,
            UnsafeFeature::Goto { .. } => LintCode::Goto,
            UnsafeFeature::Switch { .. } => LintCode::Switch,
            UnsafeFeature::Varargs { .. } => LintCode::Varargs,
            UnsafeFeature::FunctionPointer { .. } => LintCode::FunctionPointer,
        };
        report.push(Diagnostic::new(
            code,
            unit,
            Some(Span::new(line, col)),
            format!("migration-unsafe feature: {u}"),
        ));
    }
    for f in &program.functions {
        check_pointer_casts(&program, f, unit, &mut report);
    }
    (report, Some(program))
}

/// Map a pre-compiler error to its stable code. Parse-level unsafe
/// rejections keep their feature codes; everything else is `HPM009`.
fn front_end_error(unit: &str, e: &CError) -> Diagnostic {
    match e {
        CError::Unsafe(u) => {
            let (line, col) = u.position();
            let code = match u {
                UnsafeFeature::Union { .. } => LintCode::Union,
                UnsafeFeature::Goto { .. } => LintCode::Goto,
                UnsafeFeature::Switch { .. } => LintCode::Switch,
                UnsafeFeature::Varargs { .. } => LintCode::Varargs,
                UnsafeFeature::FunctionPointer { .. } => LintCode::FunctionPointer,
                UnsafeFeature::PointerToInt { .. } => LintCode::PointerToInt,
                UnsafeFeature::IntToPointer { .. } => LintCode::IntToPointer,
            };
            Diagnostic::new(
                code,
                unit,
                Some(Span::new(line, col)),
                format!("migration-unsafe feature: {u}"),
            )
        }
        CError::Lex(m, line) | CError::Parse(m, line) => Diagnostic::new(
            LintCode::FrontEnd,
            unit,
            Some(Span::new(*line, 1)),
            m.clone(),
        ),
        other => Diagnostic::new(LintCode::FrontEnd, unit, None, other.to_string()),
    }
}

/// Declared types visible inside one function.
fn decl_types(program: &Program, f: &Function) -> BTreeMap<String, (TypeExpr, bool)> {
    let mut map = BTreeMap::new();
    for d in program.globals.iter().chain(&f.params).chain(&f.locals) {
        map.insert(d.name.clone(), (d.ty.clone(), d.array.is_some()));
    }
    map
}

/// HPM008: a cast between pointers whose pointee shapes differ.
fn check_pointer_casts(program: &Program, f: &Function, unit: &str, report: &mut Report) {
    let decls = decl_types(program, f);
    let mut visit = |e: &Expr| {
        if let Expr::Cast(to, inner, span) = e {
            if let (TypeExpr::Pointer(to_pointee), Some(from_pointee)) =
                (to, pointee_of(inner, &decls))
            {
                if **to_pointee != from_pointee {
                    report.push(Diagnostic::new(
                        LintCode::IncompatiblePointerCast,
                        unit,
                        Some(*span),
                        format!(
                            "cast between incompatible pointee shapes in {}: the TI table \
                             would restore the target block with the wrong plan",
                            f.name
                        ),
                    ));
                }
            }
        }
    };
    for s in &f.body {
        walk_stmt_exprs(s, &mut visit);
    }
}

/// The pointee type of a pointer-shaped expression, when statically
/// known from declarations. `malloc` is untyped (C's `void *`) and
/// never reported.
fn pointee_of(e: &Expr, decls: &BTreeMap<String, (TypeExpr, bool)>) -> Option<TypeExpr> {
    match e {
        Expr::Ident(n) => match decls.get(n) {
            Some((TypeExpr::Pointer(p), false)) => Some((**p).clone()),
            // An array decays to a pointer to its element type.
            Some((elem, true)) => Some(elem.clone()),
            _ => None,
        },
        Expr::AddrOf(inner) => match &**inner {
            Expr::Ident(n) => match decls.get(n) {
                Some((ty, false)) => Some(ty.clone()),
                _ => None,
            },
            _ => None,
        },
        Expr::Cast(TypeExpr::Pointer(p), _, _) => Some((**p).clone()),
        _ => None,
    }
}

/// Apply `visit` to every expression in `s`, recursively.
fn walk_stmt_exprs(s: &Stmt, visit: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Assign { target, value, .. } => {
            walk_expr(target, visit);
            walk_expr(value, visit);
        }
        Stmt::Expr { expr, .. } => walk_expr(expr, visit),
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            walk_expr(cond, visit);
            for s in then_body.iter().chain(else_body) {
                walk_stmt_exprs(s, visit);
            }
        }
        Stmt::While { cond, body, .. } => {
            walk_expr(cond, visit);
            for s in body {
                walk_stmt_exprs(s, visit);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(i) = init {
                walk_stmt_exprs(i, visit);
            }
            if let Some(c) = cond {
                walk_expr(c, visit);
            }
            if let Some(st) = step {
                walk_stmt_exprs(st, visit);
            }
            for s in body {
                walk_stmt_exprs(s, visit);
            }
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, visit);
            }
        }
        Stmt::Free { ptr, .. } => walk_expr(ptr, visit),
        Stmt::Print { value, .. } => walk_expr(value, visit),
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
    }
}

fn walk_expr(e: &Expr, visit: &mut impl FnMut(&Expr)) {
    visit(e);
    match e {
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            walk_expr(a, visit);
            walk_expr(b, visit);
        }
        Expr::Unary(_, a)
        | Expr::Deref(a)
        | Expr::AddrOf(a)
        | Expr::Cast(_, a, _)
        | Expr::Malloc(a, _)
        | Expr::Member(a, _)
        | Expr::Arrow(a, _) => walk_expr(a, visit),
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, visit);
            }
        }
        Expr::Int(_) | Expr::Float(_) | Expr::Ident(_) | Expr::Sizeof(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Report {
        let (mut r, _) = lint_front_end("t.c", src);
        r.finish();
        r
    }

    #[test]
    fn union_maps_to_hpm001() {
        let r = lint("union u { int a; float b; };\nint main() { return 0; }");
        assert!(r.has_code(LintCode::Union), "{r:?}");
    }

    #[test]
    fn parse_error_maps_to_hpm009() {
        let r = lint("int main( { return 0; }");
        assert!(r.has_code(LintCode::FrontEnd), "{r:?}");
    }

    #[test]
    fn ptr_int_casts_carry_spans() {
        let r = lint("int main() { int x; int *p; p = &x; x = (int) p; return x; }");
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::PointerToInt)
            .unwrap();
        assert_eq!(d.span, Some(Span::new(1, 41)));
    }

    #[test]
    fn incompatible_pointer_cast_flagged() {
        let r = lint(
            "struct a { int x; };\n\
             struct b { double y; double z; };\n\
             int main() {\n\
               struct a *pa;\n\
               struct b *pb;\n\
               pa = (struct a *) malloc(sizeof(struct a));\n\
               pb = (struct b *) pa;\n\
               print(0);\n\
               return 0;\n\
             }",
        );
        assert!(r.has_code(LintCode::IncompatiblePointerCast), "{r:?}");
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::IncompatiblePointerCast)
            .unwrap();
        assert_eq!(d.span.unwrap().line, 7);
    }

    #[test]
    fn malloc_cast_not_flagged() {
        let r = lint(
            "struct a { int x; };\n\
             int main() { struct a *p; p = (struct a *) malloc(sizeof(struct a)); return 0; }",
        );
        assert!(!r.has_code(LintCode::IncompatiblePointerCast), "{r:?}");
    }

    #[test]
    fn same_pointee_cast_not_flagged() {
        let r = lint("int main() { int *p; int *q; q = p; p = (int *) q; return 0; }");
        assert!(!r.has_code(LintCode::IncompatiblePointerCast), "{r:?}");
    }

    #[test]
    fn array_decay_cast_checked() {
        let r = lint("int main() { int buf[4]; double *d; d = (double *) buf; return 0; }");
        assert!(r.has_code(LintCode::IncompatiblePointerCast), "{r:?}");
    }
}
