//! Interprocedural pointer-escape analysis over mini-C.
//!
//! The MSRLT registers a frame's locals only while the frame is live;
//! when it pops, their logical ids disappear. A pointer that still holds
//! a popped local's address at a later migration point is untranslatable
//! — `Save_pointer` would abort with an unregistered-pointer error. This
//! pass finds those pointers statically:
//!
//! * **HPM010** — a stack address *escapes* its frame: assigned to a
//!   global pointer, stored through a pointer (into memory that may
//!   outlive the frame), or passed to a callee that (transitively) leaks
//!   its parameter.
//! * **HPM011** — a function returns the address of one of its own
//!   locals: the canonical dangling pointer.
//!
//! The analysis is flow-insensitive within a function and interprocedural
//! across them: each function gets a summary — which parameter values it
//! leaks, which it returns, whether it returns its own stack — and
//! summaries are iterated to a fixpoint over the (possibly recursive)
//! call graph before findings are emitted.

use crate::diag::{Diagnostic, LintCode, Report};
use hpm_annotate::ast::{Expr, Function, Program, Span, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// What the analysis knows about one function, independent of callers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Parameter indices whose *value* (assumed to be an address) escapes
    /// into a global or through a pointer store, directly or via callees.
    pub leaks_param: BTreeSet<usize>,
    /// Parameter indices whose value flows into the return value.
    pub returns_param: BTreeSet<usize>,
    /// Whether the function returns the address of one of its own
    /// locals or parameters.
    pub returns_local_addr: bool,
}

/// Where a name is declared, from a function's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    Global,
    Param(usize),
    Local,
}

/// The (addresses-of-own-locals, values-of-own-params) a value
/// expression may carry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Carried {
    addrs: BTreeSet<String>,
    params: BTreeSet<usize>,
}

impl Carried {
    fn is_empty(&self) -> bool {
        self.addrs.is_empty() && self.params.is_empty()
    }

    fn union(&mut self, other: Carried) {
        self.addrs.extend(other.addrs);
        self.params.extend(other.params);
    }
}

/// Per-function analysis state: what each variable may hold.
#[derive(Debug, Default)]
struct FnState {
    kinds: BTreeMap<String, VarKind>,
    holds: BTreeMap<String, Carried>,
}

impl FnState {
    fn build(program: &Program, f: &Function) -> FnState {
        let mut kinds = BTreeMap::new();
        for g in &program.globals {
            kinds.insert(g.name.clone(), VarKind::Global);
        }
        for (i, p) in f.params.iter().enumerate() {
            kinds.insert(p.name.clone(), VarKind::Param(i));
        }
        for l in &f.locals {
            kinds.insert(l.name.clone(), VarKind::Local);
        }
        FnState {
            kinds,
            holds: BTreeMap::new(),
        }
    }

    /// The base variable of an lvalue whose address `&lv` refers to the
    /// current frame. `&p->f` and `&*p` point at the pointee (heap or
    /// elsewhere), not this frame.
    fn frame_addr_base<'e>(&self, e: &'e Expr) -> Option<&'e str> {
        match e {
            Expr::Ident(n) => match self.kinds.get(n) {
                Some(VarKind::Local) | Some(VarKind::Param(_)) => Some(n),
                _ => None,
            },
            Expr::Index(base, _) | Expr::Member(base, _) => self.frame_addr_base(base),
            _ => None,
        }
    }

    /// What `e` may carry, under the current `holds` map and the current
    /// summaries of every callee.
    fn carried(&self, e: &Expr, summaries: &BTreeMap<String, FnSummary>) -> Carried {
        let mut c = Carried::default();
        match e {
            Expr::AddrOf(inner) => {
                if let Some(base) = self.frame_addr_base(inner) {
                    c.addrs.insert(base.to_string());
                }
            }
            Expr::Ident(n) => {
                if let Some(VarKind::Param(i)) = self.kinds.get(n) {
                    c.params.insert(*i);
                }
                if let Some(h) = self.holds.get(n) {
                    c.union(h.clone());
                }
            }
            Expr::Cast(_, inner, _) => c = self.carried(inner, summaries),
            Expr::Binary(_, a, b) => {
                c = self.carried(a, summaries);
                c.union(self.carried(b, summaries));
            }
            Expr::Call(name, args) => {
                if let Some(s) = summaries.get(name) {
                    for &i in &s.returns_param {
                        if let Some(arg) = args.get(i) {
                            c.union(self.carried(arg, summaries));
                        }
                    }
                }
            }
            _ => {}
        }
        c
    }
}

/// Run the whole-program escape analysis and report HPM010/HPM011.
pub fn analyze(program: &Program, unit: &str) -> Report {
    let summaries = solve_summaries(program);
    let mut report = Report::new();
    for f in &program.functions {
        scan_function(program, f, &summaries, unit, Some(&mut report));
    }
    report
}

/// Compute every function's [`FnSummary`] to a fixpoint.
pub fn solve_summaries(program: &Program) -> BTreeMap<String, FnSummary> {
    let mut summaries: BTreeMap<String, FnSummary> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), FnSummary::default()))
        .collect();
    loop {
        let mut changed = false;
        for f in &program.functions {
            let next = scan_function(program, f, &summaries, "", None);
            if summaries.get(&f.name) != Some(&next) {
                summaries.insert(f.name.clone(), next);
                changed = true;
            }
        }
        if !changed {
            return summaries;
        }
    }
}

/// Analyze one function. With `report` set, emits diagnostics; always
/// returns the function's summary under the given callee summaries.
fn scan_function(
    program: &Program,
    f: &Function,
    summaries: &BTreeMap<String, FnSummary>,
    unit: &str,
    mut report: Option<&mut Report>,
) -> FnSummary {
    let mut st = FnState::build(program, f);
    let mut summary = FnSummary::default();
    // Inner fixpoint: `holds` is flow-insensitive, so re-walk the body
    // until no variable's carried set grows (loops feed assignments back).
    loop {
        let before = st.holds.clone();
        for s in &f.body {
            walk_stmt(s, &mut st, &mut summary, summaries, f, unit, &mut None);
        }
        if st.holds == before {
            break;
        }
    }
    // Findings pass: state is stable, emit each site once.
    if report.is_some() {
        for s in &f.body {
            walk_stmt(s, &mut st, &mut summary, summaries, f, unit, &mut report);
        }
    }
    summary
}

#[allow(clippy::too_many_arguments)]
fn walk_stmt(
    s: &Stmt,
    st: &mut FnState,
    summary: &mut FnSummary,
    summaries: &BTreeMap<String, FnSummary>,
    f: &Function,
    unit: &str,
    report: &mut Option<&mut Report>,
) {
    match s {
        Stmt::Assign {
            target,
            value,
            line,
        } => {
            let carried = st.carried(value, summaries);
            scan_calls(value, st, summary, summaries, f, unit, *line, report);
            match target {
                Expr::Ident(n) => match st.kinds.get(n).copied() {
                    Some(VarKind::Global) => {
                        if !carried.addrs.is_empty() {
                            emit(
                                report,
                                LintCode::EscapingStackAddress,
                                unit,
                                *line,
                                format!(
                                    "address of local '{}' escapes {} into global '{n}'; its \
                                     block unregisters when the frame pops",
                                    carried.addrs.iter().next().unwrap(),
                                    f.name,
                                ),
                            );
                        }
                        summary.leaks_param.extend(carried.params.iter());
                    }
                    Some(VarKind::Local) | Some(VarKind::Param(_)) => {
                        st.holds.entry(n.clone()).or_default().union(carried);
                    }
                    None => {}
                },
                // `s.f = v` / `a[i] = v` on a frame-local aggregate keeps
                // the address in this frame; `*p = v` / `p->f = v` stores
                // it into memory that may outlive the frame.
                Expr::Member(base, _) | Expr::Index(base, _) => {
                    if let Some(b) = st.frame_addr_base(base) {
                        let b = b.to_string();
                        st.holds.entry(b).or_default().union(carried);
                    } else if !carried.is_empty() {
                        store_escape(&carried, st, summary, f, unit, *line, report);
                    }
                }
                Expr::Deref(_) | Expr::Arrow(_, _) if !carried.is_empty() => {
                    store_escape(&carried, st, summary, f, unit, *line, report);
                }
                _ => {}
            }
        }
        Stmt::Expr { expr, line } => {
            scan_calls(expr, st, summary, summaries, f, unit, *line, report)
        }
        Stmt::Return { value, line } => {
            if let Some(v) = value {
                scan_calls(v, st, summary, summaries, f, unit, *line, report);
                let carried = st.carried(v, summaries);
                if !carried.addrs.is_empty() {
                    summary.returns_local_addr = true;
                    emit(
                        report,
                        LintCode::ReturnsLocalAddress,
                        unit,
                        *line,
                        format!(
                            "{} returns the address of local '{}'",
                            f.name,
                            carried.addrs.iter().next().unwrap()
                        ),
                    );
                }
                summary.returns_param.extend(carried.params.iter());
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        } => {
            scan_calls(cond, st, summary, summaries, f, unit, *line, report);
            for s in then_body.iter().chain(else_body) {
                walk_stmt(s, st, summary, summaries, f, unit, report);
            }
        }
        Stmt::While { cond, body, line } => {
            scan_calls(cond, st, summary, summaries, f, unit, *line, report);
            for s in body {
                walk_stmt(s, st, summary, summaries, f, unit, report);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            line,
        } => {
            if let Some(i) = init {
                walk_stmt(i, st, summary, summaries, f, unit, report);
            }
            if let Some(c) = cond {
                scan_calls(c, st, summary, summaries, f, unit, *line, report);
            }
            if let Some(sp) = step {
                walk_stmt(sp, st, summary, summaries, f, unit, report);
            }
            for s in body {
                walk_stmt(s, st, summary, summaries, f, unit, report);
            }
        }
        Stmt::Free { ptr, line } => scan_calls(ptr, st, summary, summaries, f, unit, *line, report),
        Stmt::Print { value, line, .. } => {
            scan_calls(value, st, summary, summaries, f, unit, *line, report)
        }
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
    }
}

/// A stack address was stored through a pointer: the target memory may
/// be heap or global, outliving the frame.
fn store_escape(
    carried: &Carried,
    _st: &FnState,
    summary: &mut FnSummary,
    f: &Function,
    unit: &str,
    line: u32,
    report: &mut Option<&mut Report>,
) {
    if !carried.addrs.is_empty() {
        emit(
            report,
            LintCode::EscapingStackAddress,
            unit,
            line,
            format!(
                "address of local '{}' in {} is stored through a pointer and may outlive \
                 the frame",
                carried.addrs.iter().next().unwrap(),
                f.name,
            ),
        );
    }
    summary.leaks_param.extend(carried.params.iter());
}

/// Visit every call inside `e`, applying callee summaries to arguments.
#[allow(clippy::too_many_arguments)]
fn scan_calls(
    e: &Expr,
    st: &mut FnState,
    summary: &mut FnSummary,
    summaries: &BTreeMap<String, FnSummary>,
    f: &Function,
    unit: &str,
    line: u32,
    report: &mut Option<&mut Report>,
) {
    match e {
        Expr::Call(name, args) => {
            if let Some(callee) = summaries.get(name) {
                for &i in &callee.leaks_param {
                    if let Some(arg) = args.get(i) {
                        let carried = st.carried(arg, summaries);
                        if !carried.addrs.is_empty() {
                            emit(
                                report,
                                LintCode::EscapingStackAddress,
                                unit,
                                line,
                                format!(
                                    "address of local '{}' escapes {} through call to {name} \
                                     (parameter {i} leaks)",
                                    carried.addrs.iter().next().unwrap(),
                                    f.name,
                                ),
                            );
                        }
                        summary.leaks_param.extend(carried.params.iter());
                    }
                }
            }
            for a in args {
                scan_calls(a, st, summary, summaries, f, unit, line, report);
            }
        }
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            scan_calls(a, st, summary, summaries, f, unit, line, report);
            scan_calls(b, st, summary, summaries, f, unit, line, report);
        }
        Expr::Unary(_, a)
        | Expr::Deref(a)
        | Expr::AddrOf(a)
        | Expr::Cast(_, a, _)
        | Expr::Malloc(a, _)
        | Expr::Member(a, _)
        | Expr::Arrow(a, _) => scan_calls(a, st, summary, summaries, f, unit, line, report),
        Expr::Int(_) | Expr::Float(_) | Expr::Ident(_) | Expr::Sizeof(_) => {}
    }
}

fn emit(report: &mut Option<&mut Report>, code: LintCode, unit: &str, line: u32, msg: String) {
    if let Some(r) = report.as_deref_mut() {
        r.push(Diagnostic::new(code, unit, Some(Span::new(line, 1)), msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_annotate::parser::parse;

    fn lint(src: &str) -> Report {
        let p = parse(src).unwrap();
        let mut r = analyze(&p, "t.c");
        r.finish();
        r
    }

    #[test]
    fn direct_global_escape_flagged() {
        let r = lint(
            "int *g;\n\
             int main() { int x; x = 1; g = &x; print(x); return 0; }",
        );
        assert!(r.has_code(LintCode::EscapingStackAddress), "{r:?}");
    }

    #[test]
    fn transitive_escape_through_callee() {
        let r = lint(
            "int *g;\n\
             void keep(int *p) { g = p; }\n\
             void relay(int *q) { keep(q); }\n\
             int main() { int x; x = 1; relay(&x); print(x); return 0; }",
        );
        // The leak is two calls deep: relay -> keep -> global.
        let hits: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::EscapingStackAddress)
            .collect();
        assert!(hits.iter().any(|d| d.message.contains("relay")), "{hits:?}");
    }

    #[test]
    fn return_local_addr_flagged() {
        let r = lint(
            "int *make() { int v; v = 3; return &v; }\n\
             int main() { int *p; p = make(); print(*p); return 0; }",
        );
        assert!(r.has_code(LintCode::ReturnsLocalAddress), "{r:?}");
    }

    #[test]
    fn returned_param_traced_back_to_caller_global() {
        // id() returns its parameter; main stores id(&x) into a global.
        let r = lint(
            "int *g;\n\
             int *id(int *p) { return p; }\n\
             int main() { int x; x = 1; g = id(&x); print(x); return 0; }",
        );
        assert!(r.has_code(LintCode::EscapingStackAddress), "{r:?}");
        assert!(!r.has_code(LintCode::ReturnsLocalAddress), "{r:?}");
    }

    #[test]
    fn heap_addresses_do_not_trip_the_pass() {
        let r = lint(
            "struct n { int v; struct n *next; };\n\
             struct n *head;\n\
             int main() {\n\
               struct n *p;\n\
               p = (struct n *) malloc(sizeof(struct n));\n\
               p->next = head;\n\
               head = p;\n\
               print(0);\n\
               return 0;\n\
             }",
        );
        assert!(!r.has_code(LintCode::EscapingStackAddress), "{r:?}");
        assert!(!r.has_code(LintCode::ReturnsLocalAddress), "{r:?}");
    }

    #[test]
    fn local_struct_member_store_is_not_an_escape() {
        let r = lint(
            "struct pair { int *a; int *b; };\n\
             int main() { struct pair q; int x; x = 1; q.a = &x; print(*q.a); return 0; }",
        );
        assert!(!r.has_code(LintCode::EscapingStackAddress), "{r:?}");
    }

    #[test]
    fn store_through_heap_pointer_flagged() {
        let r = lint(
            "struct cell { int *ref; };\n\
             int main() {\n\
               struct cell *c;\n\
               int x;\n\
               x = 1;\n\
               c = (struct cell *) malloc(sizeof(struct cell));\n\
               c->ref = &x;\n\
               print(x);\n\
               return 0;\n\
             }",
        );
        assert!(r.has_code(LintCode::EscapingStackAddress), "{r:?}");
    }

    #[test]
    fn recursive_functions_reach_fixpoint() {
        let r = lint(
            "int *g;\n\
             void a(int *p, int n) { if (n > 0) { b(p, n - 1); } }\n\
             void b(int *q, int m) { if (m > 0) { a(q, m - 1); } g = q; }\n\
             int main() { int x; x = 1; a(&x, 3); print(x); return 0; }",
        );
        assert!(r.has_code(LintCode::EscapingStackAddress), "{r:?}");
    }
}
