//! The diagnostics engine: stable lint codes, severities, source spans,
//! and deterministic report rendering.
//!
//! Every finding any pass produces is a [`Diagnostic`] carrying a
//! [`LintCode`]. Codes are *stable*: once assigned, a code's meaning
//! never changes, so CI gates and suppression lists survive analyzer
//! upgrades. Codes are grouped by pass family:
//!
//! * `HPM001`–`HPM012` — source-level findings from the mini-C front end
//!   and the interprocedural escape/reachability passes;
//! * `HPM020`–`HPM024` — static portability findings from auditing the
//!   TI table against every architecture profile pair;
//! * `HPM030`–`HPM035` — runtime-registry findings from auditing a live
//!   MSRLT snapshot before collection.

use hpm_annotate::ast::Span;

/// Stable lint codes. The numeric value after `HPM` never changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// `union` type: the live variant is unknowable at migration time.
    Union,
    /// `goto`: resume points would not dominate their uses.
    Goto,
    /// `switch`: fall-through labels complicate resume points.
    Switch,
    /// Variadic function: unknown live data at call sites.
    Varargs,
    /// Function pointer: code addresses are not portable.
    FunctionPointer,
    /// Pointer value cast to an integer type.
    PointerToInt,
    /// Integer value cast to a pointer type.
    IntToPointer,
    /// Cast between pointers whose pointee types have different shapes.
    IncompatiblePointerCast,
    /// The unit failed to lex, parse, or resolve names/types.
    FrontEnd,
    /// A stack address escapes its frame (into a global, through a
    /// pointer store, or via a callee that leaks its parameter): after
    /// the frame pops, the MSRLT no longer registers the target, so a
    /// later migration would collect a pointer it cannot translate.
    EscapingStackAddress,
    /// A function returns the address of one of its own locals.
    ReturnsLocalAddress,
    /// A block is collected at a poll-point (conservatively always-live)
    /// but is unreachable from every MSR root there: a dead-block
    /// elision candidate.
    DeadBlockAtPoll,
    /// A pointer-bearing type migrates to a machine with narrower
    /// pointers. Informational: the MSRLT ships logical ids, never raw
    /// addresses, so no value is truncated.
    PointerWidthTruncation,
    /// A scalar leaf is wider on the source than on the destination;
    /// large values would truncate in conversion.
    ScalarWidthNarrows,
    /// A struct contains itself by value: layout and plan compilation
    /// recurse without a cycle guard and would never terminate.
    ValueCycle,
    /// A struct's field offsets differ between the two machines.
    /// Informational: the wire format is leaf-ordered, not
    /// offset-ordered, so padding differences are translated away.
    PaddingDependentOffsets,
    /// The machine-independent leaf sequence of a type differs between
    /// two architectures — the wire formats would disagree.
    WireLeafDivergence,
    /// A registered pointer slot holds an address the MSRLT cannot
    /// translate.
    RegistryDanglingEdge,
    /// An MSRLT entry refers to memory the address space does not hold.
    RegistryUnknownBlock,
    /// Two live MSRLT entries overlap in the address space.
    RegistryOverlap,
    /// A frame-group entry outlives the frame nesting that created it.
    RegistryFrameNesting,
    /// An entry's recorded size disagrees with its type's layout.
    RegistrySizeMismatch,
    /// The MSRLT's byte accounting disagrees with its live entries.
    RegistryByteAccounting,
}

impl LintCode {
    /// The stable `HPMxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Union => "HPM001",
            LintCode::Goto => "HPM002",
            LintCode::Switch => "HPM003",
            LintCode::Varargs => "HPM004",
            LintCode::FunctionPointer => "HPM005",
            LintCode::PointerToInt => "HPM006",
            LintCode::IntToPointer => "HPM007",
            LintCode::IncompatiblePointerCast => "HPM008",
            LintCode::FrontEnd => "HPM009",
            LintCode::EscapingStackAddress => "HPM010",
            LintCode::ReturnsLocalAddress => "HPM011",
            LintCode::DeadBlockAtPoll => "HPM012",
            LintCode::PointerWidthTruncation => "HPM020",
            LintCode::ScalarWidthNarrows => "HPM021",
            LintCode::ValueCycle => "HPM022",
            LintCode::PaddingDependentOffsets => "HPM023",
            LintCode::WireLeafDivergence => "HPM024",
            LintCode::RegistryDanglingEdge => "HPM030",
            LintCode::RegistryUnknownBlock => "HPM031",
            LintCode::RegistryOverlap => "HPM032",
            LintCode::RegistryFrameNesting => "HPM033",
            LintCode::RegistrySizeMismatch => "HPM034",
            LintCode::RegistryByteAccounting => "HPM035",
        }
    }

    /// Fixed severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::Union
            | LintCode::Goto
            | LintCode::Switch
            | LintCode::Varargs
            | LintCode::FunctionPointer
            | LintCode::PointerToInt
            | LintCode::IntToPointer
            | LintCode::FrontEnd
            | LintCode::ReturnsLocalAddress
            | LintCode::ValueCycle
            | LintCode::WireLeafDivergence
            | LintCode::RegistryDanglingEdge
            | LintCode::RegistryUnknownBlock
            | LintCode::RegistryOverlap
            | LintCode::RegistryFrameNesting
            | LintCode::RegistrySizeMismatch
            | LintCode::RegistryByteAccounting => Severity::Error,
            LintCode::IncompatiblePointerCast
            | LintCode::EscapingStackAddress
            | LintCode::ScalarWidthNarrows => Severity::Warning,
            LintCode::DeadBlockAtPoll
            | LintCode::PointerWidthTruncation
            | LintCode::PaddingDependentOffsets => Severity::Info,
        }
    }

    /// Parse a `HPMxxx` string back into a code (for corpus expectation
    /// directives).
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.code() == s)
    }

    /// Every code, in code order.
    pub const ALL: [LintCode; 23] = [
        LintCode::Union,
        LintCode::Goto,
        LintCode::Switch,
        LintCode::Varargs,
        LintCode::FunctionPointer,
        LintCode::PointerToInt,
        LintCode::IntToPointer,
        LintCode::IncompatiblePointerCast,
        LintCode::FrontEnd,
        LintCode::EscapingStackAddress,
        LintCode::ReturnsLocalAddress,
        LintCode::DeadBlockAtPoll,
        LintCode::PointerWidthTruncation,
        LintCode::ScalarWidthNarrows,
        LintCode::ValueCycle,
        LintCode::PaddingDependentOffsets,
        LintCode::WireLeafDivergence,
        LintCode::RegistryDanglingEdge,
        LintCode::RegistryUnknownBlock,
        LintCode::RegistryOverlap,
        LintCode::RegistryFrameNesting,
        LintCode::RegistrySizeMismatch,
        LintCode::RegistryByteAccounting,
    ];
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; never gates.
    Info,
    /// Suspicious; gates under `--deny`.
    Warning,
    /// A migration would fail or corrupt data.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The unit the finding is about: a source file name, a workload
    /// name, or a registry snapshot label.
    pub unit: String,
    /// Source position, for source-level findings.
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic; severity comes from the code.
    pub fn new(code: LintCode, unit: &str, span: Option<Span>, message: String) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            unit: unit.to_string(),
            span,
            message,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.span {
            Some(s) => write!(
                f,
                "{}:{}: {} [{}] {}",
                self.unit, s, self.severity, self.code, self.message
            ),
            None => write!(
                f,
                "{}: {} [{}] {}",
                self.unit, self.severity, self.code, self.message
            ),
        }
    }
}

/// A deduplicated, deterministically ordered set of diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Add one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Absorb another report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Sort by (unit, line, col, code) and drop exact duplicates. Every
    /// renderer calls this first, so output order is independent of pass
    /// scheduling.
    pub fn finish(&mut self) {
        self.diags.sort_by(|a, b| {
            let ka = (&a.unit, a.span.map(|s| (s.line, s.col)), a.code, &a.message);
            let kb = (&b.unit, b.span.map(|s| (s.line, s.col)), b.code, &b.message);
            ka.cmp(&kb)
        });
        self.diags.dedup();
    }

    /// All diagnostics (call [`Report::finish`] first for stable order).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings at severity `s`.
    pub fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }

    /// Whether any finding is at or above `threshold` (the `--deny`
    /// gate).
    pub fn denies(&self, threshold: Severity) -> bool {
        self.diags.iter().any(|d| d.severity >= threshold)
    }

    /// Whether a specific code was reported.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Human-readable rendering, one finding per line plus a summary.
    pub fn render_human(&mut self) -> String {
        self.finish();
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// JSONL rendering: one JSON object per finding, in stable order.
    pub fn render_jsonl(&mut self) -> String {
        self.finish();
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"unit\":\"{}\"",
                d.code,
                d.severity,
                json_escape(&d.unit)
            ));
            if let Some(s) = d.span {
                out.push_str(&format!(",\"line\":{},\"col\":{}", s.line, s.col));
            }
            out.push_str(&format!(",\"message\":\"{}\"}}\n", json_escape(&d.message)));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in LintCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {c}");
            assert_eq!(LintCode::parse(c.code()), Some(c));
        }
        assert_eq!(LintCode::parse("HPM999"), None);
    }

    #[test]
    fn report_orders_and_dedupes() {
        let mut r = Report::new();
        let d = Diagnostic::new(LintCode::Goto, "b.c", Some(Span::new(2, 1)), "goto".into());
        r.push(d.clone());
        r.push(Diagnostic::new(
            LintCode::Union,
            "a.c",
            Some(Span::new(1, 1)),
            "union".into(),
        ));
        r.push(d);
        r.finish();
        assert_eq!(r.diagnostics().len(), 2);
        assert_eq!(r.diagnostics()[0].unit, "a.c");
    }

    #[test]
    fn deny_thresholds() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintCode::DeadBlockAtPoll,
            "a.c",
            None,
            "dead".into(),
        ));
        assert!(!r.denies(Severity::Warning));
        assert!(r.denies(Severity::Info));
        r.push(Diagnostic::new(
            LintCode::EscapingStackAddress,
            "a.c",
            None,
            "escape".into(),
        ));
        assert!(r.denies(Severity::Warning));
        assert!(!r.denies(Severity::Error));
    }

    #[test]
    fn jsonl_escapes_and_renders() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            LintCode::FrontEnd,
            "weird\"name.c",
            Some(Span::new(3, 7)),
            "bad\nline".into(),
        ));
        let j = r.render_jsonl();
        assert!(j.contains("\"code\":\"HPM009\""));
        assert!(j.contains("weird\\\"name.c"));
        assert!(j.contains("bad\\nline"));
        assert!(j.contains("\"line\":3,\"col\":7"));
    }
}
