//! Runtime-registry findings as diagnostics.
//!
//! The pre-flight audit itself lives in `hpm-core::audit` (so the
//! migration driver can refuse an incoherent snapshot without depending
//! on the analyzer); this module gives each [`RegistryFinding`] a stable
//! `HPM03x` code so registry health flows through the same report,
//! deny gate, and JSONL stream as every static pass.

use crate::diag::{Diagnostic, LintCode, Report};
use hpm_core::RegistryFinding;

/// The stable code for one registry finding.
pub fn code_for(finding: &RegistryFinding) -> LintCode {
    match finding {
        RegistryFinding::DanglingEdge { .. } => LintCode::RegistryDanglingEdge,
        RegistryFinding::UnknownBlock { .. } => LintCode::RegistryUnknownBlock,
        RegistryFinding::OverlappingBlocks { .. } => LintCode::RegistryOverlap,
        RegistryFinding::FrameNesting { .. } => LintCode::RegistryFrameNesting,
        RegistryFinding::SizeMismatch { .. } => LintCode::RegistrySizeMismatch,
        RegistryFinding::ByteAccounting { .. } => LintCode::RegistryByteAccounting,
    }
}

/// Convert a pre-flight audit's findings into a report for `unit` (a
/// workload or snapshot label).
pub fn registry_report(findings: &[RegistryFinding], unit: &str) -> Report {
    let mut report = Report::new();
    for f in findings {
        report.push(Diagnostic::new(code_for(f), unit, None, f.to_string()));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_core::LogicalId;

    #[test]
    fn each_variant_maps_to_its_code() {
        let id = LogicalId { group: 1, index: 0 };
        let cases = vec![
            (
                RegistryFinding::DanglingEdge {
                    from: id,
                    offset: 8,
                    raw: 0xdead,
                },
                LintCode::RegistryDanglingEdge,
            ),
            (
                RegistryFinding::UnknownBlock { id, addr: 0x10 },
                LintCode::RegistryUnknownBlock,
            ),
            (
                RegistryFinding::OverlappingBlocks {
                    a: id,
                    b: id,
                    bytes: 4,
                },
                LintCode::RegistryOverlap,
            ),
            (
                RegistryFinding::FrameNesting { id, live_depth: 0 },
                LintCode::RegistryFrameNesting,
            ),
            (
                RegistryFinding::SizeMismatch {
                    id,
                    recorded: 8,
                    expected: 16,
                },
                LintCode::RegistrySizeMismatch,
            ),
            (
                RegistryFinding::ByteAccounting {
                    recorded: 1,
                    actual: 2,
                },
                LintCode::RegistryByteAccounting,
            ),
        ];
        let findings: Vec<RegistryFinding> = cases.iter().map(|(f, _)| f.clone()).collect();
        let mut r = registry_report(&findings, "snap");
        r.finish();
        assert_eq!(r.diagnostics().len(), cases.len());
        for (f, code) in &cases {
            assert_eq!(code_for(f), *code);
            assert!(r.has_code(*code));
        }
        // Every registry finding is an error: an incoherent registry
        // must gate.
        assert!(r.denies(crate::diag::Severity::Error));
    }
}
