//! `hpm-lint` — lint mini-C units for migration safety.
//!
//! ```text
//! hpm-lint [--deny] [--jsonl PATH] [--corpus DIR] [FILE...]
//! ```
//!
//! Plain files are linted and reported (human-readable on stdout, JSONL
//! to `--jsonl` if given). With `--deny`, any finding at warning
//! severity or above exits 1 — the CI gate mode.
//!
//! `--corpus DIR` runs expectation mode over a directory of seeded
//! programs: each `.c` file declares the codes it must trip with
//! `// expect: HPMxxx` comment directives (one code per directive; a
//! file with no directives must lint clean at the deny threshold). Any
//! mismatch — an expected code that did not fire, or a deny-level code
//! that was not expected — exits 2. This is how the analyzer's own
//! findings are pinned across revisions.

use hpm_lint::{lint_source, LintCode, LintStats, Report, Severity};
use hpm_obs::{render_groups, StatGroup};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    deny: bool,
    jsonl: Option<PathBuf>,
    corpus: Option<PathBuf>,
    files: Vec<PathBuf>,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        jsonl: None,
        corpus: None,
        files: Vec::new(),
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--stats" => args.stats = true,
            "--jsonl" => {
                let p = it.next().ok_or("--jsonl needs a path")?;
                args.jsonl = Some(PathBuf::from(p));
            }
            "--corpus" => {
                let p = it.next().ok_or("--corpus needs a directory")?;
                args.corpus = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                println!(
                    "usage: hpm-lint [--deny] [--stats] [--jsonl PATH] [--corpus DIR] [FILE...]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    if args.corpus.is_none() && args.files.is_empty() {
        return Err("no inputs: pass FILEs and/or --corpus DIR".into());
    }
    Ok(args)
}

fn unit_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// `// expect: HPMxxx` directives in a corpus file.
fn expected_codes(src: &str) -> Result<Vec<LintCode>, String> {
    let mut codes = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(rest) = line.trim().strip_prefix("// expect:") {
            let name = rest.trim();
            let code = LintCode::parse(name)
                .ok_or_else(|| format!("line {}: unknown lint code {name}", i + 1))?;
            if !codes.contains(&code) {
                codes.push(code);
            }
        }
    }
    Ok(codes)
}

fn lint_files(files: &[PathBuf], stats: &mut LintStats) -> Result<Report, String> {
    let mut merged = Report::new();
    for path in files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let report = lint_source(&unit_name(path), &src);
        stats.absorb(&report);
        merged.merge(report);
    }
    merged.finish();
    Ok(merged)
}

/// Expectation mode: every corpus file must trip exactly its declared
/// codes (at deny severity) and nothing else. Returns mismatch lines.
fn check_corpus(dir: &Path, stats: &mut LintStats) -> Result<(Report, Vec<String>), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("{}: no .c files", dir.display()));
    }
    let mut merged = Report::new();
    let mut mismatches = Vec::new();
    for path in &entries {
        let unit = unit_name(path);
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let expected = expected_codes(&src).map_err(|e| format!("{unit}: {e}"))?;
        let report = lint_source(&unit, &src);
        stats.absorb(&report);
        for code in &expected {
            if !report.has_code(*code) {
                mismatches.push(format!("{unit}: expected {} did not fire", code.code()));
            }
        }
        for d in report.diagnostics() {
            if d.severity >= Severity::Warning && !expected.contains(&d.code) {
                mismatches.push(format!(
                    "{unit}: unexpected {} ({})",
                    d.code.code(),
                    d.message
                ));
            }
        }
        merged.merge(report);
    }
    merged.finish();
    Ok((merged, mismatches))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hpm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let start = Instant::now();
    let mut stats = LintStats::default();
    let mut report = Report::new();
    let mut file_report = Report::new();
    let mut corpus_mismatches = Vec::new();

    if !args.files.is_empty() {
        match lint_files(&args.files, &mut stats) {
            Ok(r) => {
                file_report.merge(r.clone());
                file_report.finish();
                report.merge(r);
            }
            Err(e) => {
                eprintln!("hpm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(dir) = &args.corpus {
        match check_corpus(dir, &mut stats) {
            Ok((r, m)) => {
                report.merge(r);
                corpus_mismatches = m;
            }
            Err(e) => {
                eprintln!("hpm-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    report.finish();
    stats.wall = start.elapsed();

    print!("{}", report.render_human());
    if let Some(path) = &args.jsonl {
        if let Err(e) = std::fs::write(path, report.render_jsonl()) {
            eprintln!("hpm-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.stats {
        print!("{}", render_groups(&[("lint", stats.fields())]));
    }

    if !corpus_mismatches.is_empty() {
        for m in &corpus_mismatches {
            eprintln!("hpm-lint: corpus: {m}");
        }
        eprintln!(
            "hpm-lint: corpus FAILED: {} expectation mismatch(es)",
            corpus_mismatches.len()
        );
        return ExitCode::from(2);
    }
    if args.corpus.is_some() {
        println!("hpm-lint: corpus OK");
    }

    // A corpus's expected findings don't deny — expectation mismatches
    // (exit 2 above) are that gate. Plain files always gate.
    if args.deny && file_report.denies(Severity::Warning) {
        eprintln!(
            "hpm-lint: deny: {} warning(s), {} error(s)",
            file_report.count(Severity::Warning),
            file_report.count(Severity::Error)
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
