//! `hpm-lint` — whole-program migration-safety analyzer.
//!
//! The paper's pre-compiler answers a yes/no question per program: can
//! this run migrate? This crate grows that screen into an analyzer that
//! answers *why not*, *where*, and *what it costs*, with stable codes
//! (`HPM001`–`HPM035`) so a CI gate can diff findings across revisions.
//! Three pass families:
//!
//! 1. **Source passes** over mini-C units ([`source`], [`escape`],
//!    [`reach`]): every pre-compiler screen re-surfaced as a coded
//!    diagnostic, plus interprocedural pointer-escape analysis
//!    (stack addresses leaking past their frame) and per-poll-point
//!    reachability (blocks collected but unreachable from any MSR root —
//!    dead-block elision candidates).
//! 2. **Portability passes** over TI tables ([`portability`]): every
//!    type audited against every ordered pair of architecture presets
//!    for wire-format divergence, scalar narrowing, pointer-width
//!    truncation, padding-dependent offsets, and by-value cycles.
//! 3. **Registry passes** over live MSRLT snapshots ([`registry`]): the
//!    `hpm-core` pre-flight audit's findings carried into the same
//!    report and deny gate as the static passes.
//!
//! All passes funnel into one [`Report`]: deterministic order, human and
//! JSONL renderers, and a severity-threshold deny gate for CI.

pub mod diag;
pub mod escape;
pub mod portability;
pub mod reach;
pub mod registry;
pub mod source;

pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use escape::{solve_summaries, FnSummary};
pub use portability::{audit_table, audit_table_for};
pub use registry::{code_for, registry_report};
pub use source::lint_front_end;

use hpm_annotate::sema::TypeEnv;
use hpm_obs::{StatField, StatGroup};

/// Run every static pass over one mini-C unit and return the merged,
/// finished report.
///
/// Front-end findings come first; if the unit parses, the escape,
/// reachability, and (via the unit's own TI table) portability passes
/// run too. A unit that fails to parse still yields a useful report —
/// the front-end diagnostics — rather than an error.
pub fn lint_source(unit: &str, src: &str) -> Report {
    let (mut report, program) = source::lint_front_end(unit, src);
    if let Some(program) = program {
        report.merge(escape::analyze(&program, unit));
        report.merge(reach::analyze(&program, unit));
        // The unit's TI table, exactly as the pre-compiler would emit
        // it. Build failures (unknown struct tags, …) are already
        // reported by the front end's name check; stay silent here.
        if let Ok(env) = TypeEnv::build(&program) {
            report.merge(portability::audit_table(&env.table, unit));
        }
    }
    report.finish();
    report
}

/// Counters from one analyzer run, surfaced through `hpm-obs` so lint
/// health rides the same stat tables as collect/restore phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Units analyzed.
    pub units: u64,
    /// Info-level findings.
    pub info: u64,
    /// Warning-level findings.
    pub warnings: u64,
    /// Error-level findings.
    pub errors: u64,
    /// Analyzer wall-time.
    pub wall: std::time::Duration,
}

impl LintStats {
    /// Fold one unit's finished report into the counters.
    pub fn absorb(&mut self, report: &Report) {
        self.units += 1;
        self.info += report.count(Severity::Info) as u64;
        self.warnings += report.count(Severity::Warning) as u64;
        self.errors += report.count(Severity::Error) as u64;
    }
}

impl StatGroup for LintStats {
    fn group(&self) -> &'static str {
        "lint"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("units", self.units),
            StatField::count("info", self.info),
            StatField::count("warnings", self.warnings),
            StatField::count("errors", self.errors),
            StatField::duration("wall", self.wall),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.units += other.units;
        self.info += other.info;
        self.warnings += other.warnings;
        self.errors += other.errors;
        self.wall += other.wall;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_unit_lints_clean() {
        let r = lint_source(
            "clean.c",
            "int main() {\n\
               int i;\n\
               int s;\n\
               s = 0;\n\
               for (i = 0; i < 10; i++) { s = s + i; }\n\
               print(s);\n\
               return 0;\n\
             }",
        );
        assert!(!r.denies(Severity::Warning), "{r:?}");
    }

    #[test]
    fn all_pass_families_reach_the_merged_report() {
        // One unit tripping a front-end code (ptr→int cast), an escape
        // code (local address into a global), and a reach code (dead
        // aggregate at a loop poll-point).
        let r = lint_source(
            "multi.c",
            "int *g;\n\
             int main() {\n\
               int x;\n\
               int junk[16];\n\
               int i;\n\
               g = &x;\n\
               x = (int) g;\n\
               for (i = 0; i < 4; i++) { print(i); }\n\
               return 0;\n\
             }",
        );
        assert!(r.has_code(LintCode::PointerToInt), "{r:?}");
        assert!(r.has_code(LintCode::EscapingStackAddress), "{r:?}");
        assert!(r.has_code(LintCode::DeadBlockAtPoll), "{r:?}");
    }

    #[test]
    fn unparsable_unit_still_reports() {
        let r = lint_source("bad.c", "int main( { return 0 }");
        assert!(r.has_code(LintCode::FrontEnd), "{r:?}");
        assert!(r.denies(Severity::Error));
    }

    #[test]
    fn stats_absorb_and_merge() {
        let r = lint_source("bad.c", "int main( { return 0 }");
        let mut a = LintStats::default();
        a.absorb(&r);
        assert_eq!(a.units, 1);
        assert_eq!(a.errors, 1);
        let mut b = LintStats::default();
        b.merge_from(&a);
        b.merge_from(&a);
        assert_eq!(b.units, 2);
        assert_eq!(b.errors, 2);
        assert_eq!(b.group(), "lint");
        assert_eq!(b.fields().len(), 5);
    }
}
