//! Per-poll-point reachability: dead-block elision candidates.
//!
//! The pre-compiler is conservative: every address-taken variable and
//! every aggregate (array- or struct-valued) local is *always live*, so
//! it is registered and collected at every poll-point whether or not the
//! computation beyond that point can reach it. This pass finds blocks
//! where the conservatism is provably wasted:
//!
//! * the block is in the always-live set (it will be collected), but
//! * the dataflow analysis says it is neither live-in nor live-out at
//!   the poll-point, and
//! * its address is never taken, so no pointer — and therefore no MSR
//!   root — can reach it.
//!
//! Such a block (`HPM012`, informational) could be elided from the
//! migration image at that poll-point, shrinking the paper's ΣDᵢ term
//! with no change in observable behavior.

use crate::diag::{Diagnostic, LintCode, Report};
use hpm_annotate::ast::{Program, Span, TypeExpr};
use hpm_annotate::cfg::{Cfg, NodeKind, ENTRY};
use hpm_annotate::liveness;

/// Report every (poll-point, dead block) pair in the program.
pub fn analyze(program: &Program, unit: &str) -> Report {
    let mut report = Report::new();
    for f in &program.functions {
        let cfg = Cfg::build(f);
        let live = liveness::solve(f, &cfg);
        // Only conservatively-live aggregates qualify: scalars are saved
        // by the dataflow live set alone, and address-taken blocks are
        // genuinely reachable through pointers.
        let candidates: Vec<&str> = f
            .params
            .iter()
            .chain(&f.locals)
            .filter(|d| d.array.is_some() || matches!(d.ty, TypeExpr::Struct(_)))
            .map(|d| d.name.as_str())
            .filter(|n| !cfg.addr_taken.contains(*n))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        for (node, kind) in poll_points(&cfg) {
            let line = cfg.nodes[node].line;
            for name in &candidates {
                let dead =
                    !live.live_in[node].contains(*name) && !live.live_out[node].contains(*name);
                if dead {
                    let site = match &kind {
                        NodeKind::Entry => format!("entry of {}", f.name),
                        _ => format!("loop header in {} (line {line})", f.name),
                    };
                    report.push(Diagnostic::new(
                        LintCode::DeadBlockAtPoll,
                        unit,
                        Some(Span::new(line, 1)),
                        format!(
                            "block '{name}' is collected at the {site} poll-point but is \
                             unreachable from every MSR root there; dead-block elision \
                             candidate"
                        ),
                    ));
                }
            }
        }
    }
    report
}

/// Poll-point candidates: function entry and loop headers (the sites the
/// annotator instruments).
fn poll_points(cfg: &Cfg) -> Vec<(usize, NodeKind)> {
    cfg.nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| *i == ENTRY || matches!(n.kind, NodeKind::LoopHeader))
        .map(|(i, n)| (i, n.kind.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_annotate::parser::parse;

    fn lint(src: &str) -> Report {
        let p = parse(src).unwrap();
        let mut r = analyze(&p, "t.c");
        r.finish();
        r
    }

    #[test]
    fn unused_array_flagged_at_loop_poll() {
        let r = lint(
            "int main() {\n\
               int scratch[64];\n\
               int i;\n\
               int s;\n\
               s = 0;\n\
               for (i = 0; i < 100; i++) { s = s + i; }\n\
               print(s);\n\
               return 0;\n\
             }",
        );
        assert!(r.has_code(LintCode::DeadBlockAtPoll), "{r:?}");
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == LintCode::DeadBlockAtPoll)
            .unwrap();
        assert!(d.message.contains("scratch"), "{}", d.message);
    }

    #[test]
    fn used_array_not_flagged() {
        let r = lint(
            "int main() {\n\
               int data[8];\n\
               int i;\n\
               int s;\n\
               s = 0;\n\
               for (i = 0; i < 8; i++) { data[i] = i; }\n\
               for (i = 0; i < 8; i++) { s = s + data[i]; }\n\
               print(s);\n\
               return 0;\n\
             }",
        );
        assert!(!r.has_code(LintCode::DeadBlockAtPoll), "{r:?}");
    }

    #[test]
    fn address_taken_aggregate_not_flagged() {
        // `buf` is handed to a callee by pointer: reachable from an MSR
        // root, so never an elision candidate even where dataflow-dead.
        let r = lint(
            "void fill(int *p) { *p = 1; }\n\
             int main() {\n\
               int buf[4];\n\
               int i;\n\
               fill(&buf[0]);\n\
               for (i = 0; i < 3; i++) { print(i); }\n\
               return 0;\n\
             }",
        );
        assert!(
            !r.diagnostics()
                .iter()
                .any(|d| d.code == LintCode::DeadBlockAtPoll && d.message.contains("buf")),
            "{r:?}"
        );
    }

    #[test]
    fn array_dead_after_last_use_flagged_at_later_poll() {
        // `data` is used in the first loop only; at the second loop's
        // poll-point it is dead and elidable.
        let r = lint(
            "int main() {\n\
               int data[8];\n\
               int i;\n\
               int s;\n\
               s = 0;\n\
               for (i = 0; i < 8; i++) { s = s + i; data[i] = s; }\n\
               print(data[7]);\n\
               for (i = 0; i < 4; i++) { s = s + 1; }\n\
               print(s);\n\
               return 0;\n\
             }",
        );
        let hits: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::DeadBlockAtPoll)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].span.unwrap().line, 8);
    }
}
