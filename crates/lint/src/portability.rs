//! Static portability audit: the TI table against every architecture
//! profile pair.
//!
//! A migration is only correct if the *wire format* both sides derive
//! from the TI table agrees. This pass checks each complete type in a
//! table against every ordered pair of built-in architecture presets:
//!
//! * **HPM022** (error) — a struct contains itself *by value*. Layout
//!   and plan compilation recurse structurally with no cycle guard; such
//!   a type would never terminate. Detected first, with the analyzer's
//!   own cycle-checking DFS, so nothing else in this pass touches a
//!   cyclic type.
//! * **HPM024** (error) — the machine-independent leaf sequence of a
//!   type differs between two machines. Leaf order is structural, so
//!   this firing means the element model itself is broken — it is the
//!   invariant the rest of the system stands on.
//! * **HPM021** (warning) — a scalar leaf narrows between source and
//!   destination (e.g. an 8-byte `long` restored as 4 bytes): values
//!   above the destination's range truncate in conversion.
//! * **HPM020** (info) — a pointer-bearing type migrates to a machine
//!   with narrower pointers. Informational because the MSRLT ships
//!   logical `(id, offset)` pairs, never raw addresses.
//! * **HPM023** (info) — a struct's field offsets differ between the
//!   machines. Informational because the wire format is leaf-ordered:
//!   padding never crosses the wire.

use crate::diag::{Diagnostic, LintCode, Report};
use hpm_arch::{Architecture, CScalar};
use hpm_types::elements::ElementModel;
use hpm_types::{TypeDef, TypeId, TypeTable};
use std::collections::BTreeSet;

/// Audit every type in `table` against every preset pair.
pub fn audit_table(table: &TypeTable, unit: &str) -> Report {
    audit_table_for(table, &Architecture::presets(), unit)
}

/// Audit against an explicit architecture set (ordered pairs are drawn
/// from it).
pub fn audit_table_for(table: &TypeTable, archs: &[Architecture], unit: &str) -> Report {
    let mut report = Report::new();
    let cyclic = value_cycles(table);
    for &id in &cyclic {
        if let TypeDef::Struct { name, .. } = table.def(id) {
            report.push(Diagnostic::new(
                LintCode::ValueCycle,
                unit,
                None,
                format!(
                    "struct {name} contains itself by value; layout and plan compilation \
                     lack a cycle guard and would not terminate"
                ),
            ));
        }
    }

    for idx in 0..table.len() {
        let id = TypeId(idx as u32);
        // Bare scalar defs are pre-seeded into every table by
        // `TypeTable::new`, used or not; auditing them would warn on
        // every unit. A scalar that actually appears in a plan is still
        // audited through the composite type that holds it.
        if matches!(table.def(id), TypeDef::Scalar(_)) {
            continue;
        }
        if reaches_cyclic_or_incomplete(table, id, &cyclic) {
            continue;
        }
        audit_type(table, archs, id, unit, &mut report);
    }
    report
}

/// Struct ids that participate in (or contain) a by-value cycle.
///
/// DFS over *value* edges only — struct fields and array elements, never
/// pointers, which are exactly C's legal cycle-breakers.
fn value_cycles(table: &TypeTable) -> BTreeSet<TypeId> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = table.len();
    let mut marks = vec![Mark::White; n];
    let mut cyclic = BTreeSet::new();

    fn visit(
        table: &TypeTable,
        id: TypeId,
        marks: &mut Vec<Mark>,
        cyclic: &mut BTreeSet<TypeId>,
    ) -> bool {
        let i = id.0 as usize;
        match marks[i] {
            Mark::Grey => return true, // back edge: on the current path
            Mark::Black => return cyclic.contains(&id),
            Mark::White => {}
        }
        marks[i] = Mark::Grey;
        let mut in_cycle = false;
        match table.def(id) {
            TypeDef::Scalar(_) | TypeDef::Pointer(_) => {}
            TypeDef::Array { elem, .. } => {
                in_cycle |= visit(table, *elem, marks, cyclic);
            }
            TypeDef::Struct { fields, .. } => {
                if let Some(fs) = fields {
                    for f in fs {
                        in_cycle |= visit(table, f.ty, marks, cyclic);
                    }
                }
            }
        }
        marks[i] = Mark::Black;
        if in_cycle {
            cyclic.insert(id);
        }
        in_cycle
    }

    for idx in 0..n {
        visit(table, TypeId(idx as u32), &mut marks, &mut cyclic);
    }
    cyclic
}

/// Whether layout queries on `id` are unsafe: the type reaches (by
/// value) a cyclic struct or an incomplete forward declaration.
fn reaches_cyclic_or_incomplete(table: &TypeTable, id: TypeId, cyclic: &BTreeSet<TypeId>) -> bool {
    if cyclic.contains(&id) {
        return true;
    }
    match table.def(id) {
        TypeDef::Scalar(_) | TypeDef::Pointer(_) => false,
        TypeDef::Array { elem, .. } => reaches_cyclic_or_incomplete(table, *elem, cyclic),
        TypeDef::Struct { fields, .. } => match fields {
            None => true,
            Some(fs) => fs
                .iter()
                .any(|f| reaches_cyclic_or_incomplete(table, f.ty, cyclic)),
        },
    }
}

fn audit_type(
    table: &TypeTable,
    archs: &[Architecture],
    id: TypeId,
    unit: &str,
    report: &mut Report,
) {
    let display = table.display(id);
    let is_struct = matches!(table.def(id), TypeDef::Struct { .. });
    for src in archs {
        for dst in archs {
            if src.name == dst.name {
                continue;
            }
            let leaves_src = leaves(table, src, id);
            let leaves_dst = leaves(table, dst, id);
            let kinds_src: Vec<CScalar> = leaves_src.iter().map(|l| l.0).collect();
            let kinds_dst: Vec<CScalar> = leaves_dst.iter().map(|l| l.0).collect();
            if kinds_src != kinds_dst {
                report.push(Diagnostic::new(
                    LintCode::WireLeafDivergence,
                    unit,
                    None,
                    format!(
                        "type {display}: leaf sequence on {} differs from {} — the wire \
                         formats disagree",
                        src.name, dst.name
                    ),
                ));
                continue; // the remaining checks assume aligned leaves
            }
            // Narrowing scalars (directional: src wider than dst).
            let mut narrowed: Vec<CScalar> = Vec::new();
            for (kind, _) in &leaves_src {
                if *kind != CScalar::Ptr
                    && src.scalar_size(*kind) > dst.scalar_size(*kind)
                    && !narrowed.contains(kind)
                {
                    narrowed.push(*kind);
                    report.push(Diagnostic::new(
                        LintCode::ScalarWidthNarrows,
                        unit,
                        None,
                        format!(
                            "type {display}: {} is {} bytes on {} but {} on {}; large \
                             values truncate in conversion",
                            kind.c_name(),
                            src.scalar_size(*kind),
                            src.name,
                            dst.scalar_size(*kind),
                            dst.name
                        ),
                    ));
                }
            }
            // Pointer-width truncation (directional).
            if src.pointer_size > dst.pointer_size
                && leaves_src.iter().any(|(k, _)| *k == CScalar::Ptr)
            {
                report.push(Diagnostic::new(
                    LintCode::PointerWidthTruncation,
                    unit,
                    None,
                    format!(
                        "type {display}: pointers narrow from {} to {} bytes migrating \
                         {} -> {} (safe: the MSRLT ships logical ids, not addresses)",
                        src.pointer_size, dst.pointer_size, src.name, dst.name
                    ),
                ));
            }
            // Padding-dependent offsets (symmetric: emit for src < dst
            // by name so each unordered pair reports once).
            if is_struct && src.name < dst.name {
                let off_src: Vec<u64> = leaves_src.iter().map(|l| l.1).collect();
                let off_dst: Vec<u64> = leaves_dst.iter().map(|l| l.1).collect();
                if off_src != off_dst {
                    report.push(Diagnostic::new(
                        LintCode::PaddingDependentOffsets,
                        unit,
                        None,
                        format!(
                            "type {display}: field offsets differ between {} and {} \
                             (benign: the wire format is leaf-ordered)",
                            src.name, dst.name
                        ),
                    ));
                }
            }
        }
    }
}

/// `(kind, offset)` of every leaf of `id` on `arch`, in element order.
fn leaves(table: &TypeTable, arch: &Architecture, id: TypeId) -> Vec<(CScalar, u64)> {
    let mut model = ElementModel::new();
    let mut out = Vec::new();
    // Complete, acyclic types cannot fail element enumeration.
    model
        .for_each_leaf(table, arch, id, &mut |leaf| {
            out.push((leaf.kind, leaf.offset));
        })
        .expect("leaf walk on a complete, acyclic type");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_types::Field;

    #[test]
    fn value_cycle_detected_without_hanging() {
        let mut t = TypeTable::new();
        let s = t.declare_struct("ouroboros");
        let i = t.int();
        // struct ouroboros { int v; struct ouroboros next; }
        t.define_struct(s, vec![Field::new("v", i), Field::new("next", s)])
            .unwrap();
        let mut r = audit_table(&t, "t");
        r.finish();
        assert!(r.has_code(LintCode::ValueCycle), "{r:?}");
        // Nothing else may have touched the cyclic type.
        assert!(!r.has_code(LintCode::WireLeafDivergence));
    }

    #[test]
    fn pointer_cycle_is_legal() {
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        let mut r = audit_table(&t, "t");
        r.finish();
        assert!(!r.has_code(LintCode::ValueCycle), "{r:?}");
    }

    #[test]
    fn long_narrows_from_lp64_to_ilp32() {
        let mut t = TypeTable::new();
        let l = t.scalar(hpm_arch::CScalar::Long);
        t.array_of(l, 4);
        let mut r = audit_table(&t, "t");
        r.finish();
        assert!(r.has_code(LintCode::ScalarWidthNarrows), "{r:?}");
    }

    #[test]
    fn preseeded_bare_scalars_do_not_warn() {
        // `TypeTable::new` seeds every scalar kind (including `long`);
        // an empty program must still audit clean.
        let mut r = audit_table(&TypeTable::new(), "t");
        r.finish();
        assert!(r.diagnostics().is_empty(), "{r:?}");
    }

    #[test]
    fn pointer_width_truncation_is_info() {
        let mut t = TypeTable::new();
        let i = t.int();
        t.pointer_to(i);
        let mut r = audit_table(&t, "t");
        r.finish();
        assert!(r.has_code(LintCode::PointerWidthTruncation), "{r:?}");
        assert!(!r.denies(crate::diag::Severity::Warning), "{r:?}");
    }

    #[test]
    fn padding_dependent_offsets_reported_once_per_pair() {
        // char followed by double: offset of the double differs only if
        // alignment differs; across the ILP32/LP64 presets double align
        // is 8 everywhere, so use pointer-bearing layout instead.
        let mut t = TypeTable::new();
        let c = t.char_();
        let i = t.int();
        let p = t.pointer_to(i);
        t.struct_type("mixed", vec![Field::new("tag", c), Field::new("ptr", p)])
            .unwrap();
        let mut r = audit_table(&t, "t");
        r.finish();
        // Pointer alignment is 4 on ILP32 presets, 8 on x86-64: the
        // struct's layout differs, reported once per unordered pair.
        let hits = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == LintCode::PaddingDependentOffsets)
            .count();
        assert_eq!(hits, 3, "{r:?}"); // x86-64 vs each of the three ILP32 presets
    }

    #[test]
    fn homogeneous_pairs_report_nothing() {
        let mut t = TypeTable::new();
        let i = t.int();
        let d = t.double();
        t.struct_type("plain", vec![Field::new("a", i), Field::new("b", d)])
            .unwrap();
        let ilp32 = [
            Architecture::dec5000(),
            Architecture::sparc20(),
            Architecture::ultra5(),
        ];
        let mut r = audit_table_for(&t, &ilp32, "t");
        r.finish();
        assert!(r.diagnostics().is_empty(), "{r:?}");
    }

    #[test]
    fn incomplete_struct_skipped_silently() {
        let mut t = TypeTable::new();
        t.declare_struct("opaque");
        let mut r = audit_table(&t, "t");
        r.finish();
        assert!(!r.has_code(LintCode::ValueCycle));
        assert!(!r.has_code(LintCode::WireLeafDivergence));
    }
}
