// Seeded-portability: a struct with a `long` field is 8 bytes on the
// LP64 preset but 4 on every ILP32 preset; large values truncate in
// conversion.
// expect: HPM021
struct wide {
  long big;
};

int main() {
  struct wide w;
  w.big = 123456;
  print(w.big);
  return 0;
}
