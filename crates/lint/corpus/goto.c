// Seeded-unsafe: goto breaks resume-point dominance. (No label target:
// the screen rejects the statement itself, and mini-C's lexer has no
// label syntax at all.)
// expect: HPM002
int main() {
  int x;
  x = 0;
  goto done;
  return x;
}
