// Seeded-unsafe: a struct containing itself by value; plan compilation
// has no cycle guard and would never terminate.
// expect: HPM022
struct n {
  int v;
  struct n next;
};

int main() {
  print(0);
  return 0;
}
