// Seeded-unsafe: code addresses are not portable across machines.
// expect: HPM005
int twice(int x) {
  return x + x;
}

int main() {
  int (*fp)(int);
  fp = twice;
  return fp(21);
}
