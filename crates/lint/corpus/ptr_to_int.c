// Seeded-unsafe: a pointer laundered through an integer defeats the
// MSRLT's pointer translation.
// expect: HPM006
int main() {
  int x;
  int *p;
  int addr;
  x = 7;
  p = &x;
  addr = (int) p;
  print(addr);
  return 0;
}
