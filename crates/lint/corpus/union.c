// Seeded-unsafe: a union's live variant is unknowable at migration time.
// expect: HPM001
union tag {
  int i;
  float f;
};

int main() {
  return 0;
}
