// Seeded-unsafe: does not parse (missing semicolon).
// expect: HPM009
int main() {
  int x
  x = 1;
  return x;
}
