// Seeded-unsafe: a pointer forged from an integer is untranslatable.
// expect: HPM007
int main() {
  int *p;
  p = (int *) 4096;
  print(0);
  return 0;
}
