// Seeded-unsafe: a stack address stored in a global outlives its
// frame; after the frame pops the MSRLT no longer registers the
// target, so migration would collect an untranslatable pointer.
// expect: HPM010
int *leak;

void stash() {
  int t;
  t = 5;
  leak = &t;
}

int main() {
  stash();
  print(0);
  return 0;
}
