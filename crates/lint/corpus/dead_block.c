// Seeded-waste: `scratch` is collected at every poll-point but no MSR
// root can reach it — a dead-block elision candidate (informational).
// expect: HPM012
int main() {
  int scratch[64];
  int i;
  int s;
  s = 0;
  for (i = 0; i < 100; i++) {
    s = s + i;
  }
  print(s);
  return 0;
}
