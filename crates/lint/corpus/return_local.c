// Seeded-unsafe: returning the address of an own local; the block is
// deregistered the moment the frame pops.
// expect: HPM011
int *grab() {
  int t;
  t = 9;
  return &t;
}

int main() {
  int *p;
  p = grab();
  print(0);
  return 0;
}
