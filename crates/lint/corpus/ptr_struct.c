// Seeded-portability: a pointer-bearing struct. Migrating from the
// LP64 preset to any ILP32 preset narrows the pointer leaf (benign —
// the MSRLT ships logical ids) and shifts field offsets (benign — the
// wire format is leaf-ordered). Both are informational.
// expect: HPM020
// expect: HPM023
struct list {
  int v;
  struct list *next;
};

int main() {
  struct list head;
  head.v = 1;
  head.next = (struct list *) malloc(sizeof(struct list));
  print(head.v);
  return 0;
}
