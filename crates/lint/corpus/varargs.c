// Seeded-unsafe: variadic call sites have unknown live data.
// expect: HPM004
int sum(int n, ...) {
  return n;
}

int main() {
  return sum(2, 3, 4);
}
