// Seeded-unsafe: switch fall-through complicates resume points. (No
// case labels: the screen rejects the statement itself, and mini-C's
// lexer has no label syntax at all.)
// expect: HPM003
int main() {
  int x;
  x = 2;
  switch (x) {
  }
  return x;
}
