// Control: a migration-safe unit. No directives — this file must lint
// clean at the deny threshold.
struct acc {
  int sum;
  int count;
};

int main() {
  struct acc a;
  int i;
  a.sum = 0;
  a.count = 0;
  for (i = 0; i < 16; i++) {
    a.sum = a.sum + i;
    a.count = a.count + 1;
  }
  print(a.sum);
  return 0;
}
