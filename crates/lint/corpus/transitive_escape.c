// Seeded-unsafe: the escape is two calls deep — `keep` leaks its
// parameter into a global, `wrap` forwards its own parameter, and the
// address of a local is what flows in at the top.
// expect: HPM010
int *cell;

void keep(int *p) {
  cell = p;
}

void wrap(int *q) {
  keep(q);
}

int main() {
  int v;
  v = 3;
  wrap(&v);
  print(v);
  return 0;
}
