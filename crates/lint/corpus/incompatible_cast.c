// Seeded-unsafe: reinterpreting a block under a different plan makes
// the TI table restore it with the wrong element sequence.
// expect: HPM008
struct point {
  int x;
  int y;
};

struct speck {
  double wavelength;
};

int main() {
  struct point pt;
  struct speck *sp;
  pt.x = 1;
  pt.y = 2;
  sp = (struct speck *) &pt;
  print(pt.x);
  return 0;
}
