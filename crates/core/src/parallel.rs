//! Sharded parallel collection.
//!
//! The sequential [`Collector`] emits one contiguous stream segment per
//! root (`save_variable` call): the root's `VAR_NEW`/`VAR_VISITED` item
//! plus, nested pre-order inside it, every block first reached from that
//! root. Segments only interact through the visited set — which blocks
//! earlier roots already claimed. That makes the payload embarrassingly
//! parallel *if* each shard knows the claims it must honour:
//!
//! 1. **Claim pass** (sequential, traversal only, no encoding): walk the
//!    MSR graph root by root in global order and record, in a shared
//!    lock-free bitmap over dense logical-id indices, which root first
//!    reaches each block (its *owner*). This reproduces exactly the set
//!    of blocks the sequential DFS would save under each root, because a
//!    root's claim set is the region reachable from it without crossing
//!    earlier-claimed blocks — order-independent within the root.
//! 2. **Encode pass** (parallel): `std::thread::scope` workers take
//!    roots round-robin, each with its own clone of the address space
//!    and MSRLT and its own encoder. A worker pre-seeds its collector's
//!    visited set with every block owned by *other* shards' roots, then
//!    saves its roots in increasing global order. Blocks owned by a
//!    later root are provably never encountered (had an earlier root
//!    reached them, it would own them), so the pre-seed cannot change
//!    any NEW/REF decision.
//! 3. **Splice** (deterministic): concatenate the per-root segments in
//!    global root order. The result is byte-identical to the sequential
//!    collector's payload — verified by `tests/parallel_collect.rs` and
//!    re-checked by the `paper_tables translate` CI gate.
//!
//! The process itself is never mutated: workers operate on clones, and
//! only the aggregated counters flow back (via [`Msrlt::absorb_stats`]).

use crate::collect::{CollectStats, Collector, MarkStrategy, TranslationMode};
use crate::msrlt::{LogicalId, Msrlt, MsrltStats};
use crate::CoreError;
use hpm_arch::CScalar;
use hpm_memory::AddressSpace;
use hpm_obs::{FlightTrack, Histogram, StatField, StatGroup};
use hpm_types::plan::PlanOp;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Per-shard accounting from one parallel collection: how many payload
/// bytes each worker produced. Everything else (imbalance, histogram
/// quantiles) derives from this vector, and it is deterministic — shard
/// membership is `root_index % workers`, independent of scheduling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Payload bytes encoded by each worker, indexed by worker id.
    pub shard_bytes: Vec<u64>,
    /// Roots encoded by each worker, indexed by worker id.
    pub shard_roots: Vec<u64>,
}

impl ShardReport {
    /// Number of workers that participated.
    pub fn workers(&self) -> u64 {
        self.shard_bytes.len() as u64
    }

    /// Largest per-shard payload.
    pub fn max_bytes(&self) -> u64 {
        self.shard_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-shard payload (0 with no shards).
    pub fn mean_bytes(&self) -> u64 {
        if self.shard_bytes.is_empty() {
            0
        } else {
            self.shard_bytes.iter().sum::<u64>() / self.shard_bytes.len() as u64
        }
    }

    /// Load imbalance: `max/mean − 1` (0.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_bytes();
        if mean == 0 {
            0.0
        } else {
            self.max_bytes() as f64 / mean as f64 - 1.0
        }
    }

    /// Per-shard byte distribution as a log-bucketed histogram snapshot
    /// (p50/p99 shard size for the telemetry section).
    pub fn bytes_histogram(&self) -> hpm_obs::HistogramSnapshot {
        let h = Histogram::new();
        for &b in &self.shard_bytes {
            h.observe(b);
        }
        h.snapshot()
    }
}

impl StatGroup for ShardReport {
    fn group(&self) -> &'static str {
        "parallel.shards"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("workers", self.workers()),
            StatField::bytes("bytes_max", self.max_bytes()),
            StatField::bytes("bytes_mean", self.mean_bytes()),
            StatField::ratio("imbalance", self.imbalance()),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.shard_bytes.extend_from_slice(&other.shard_bytes);
        self.shard_roots.extend_from_slice(&other.shard_roots);
    }
}

/// Shared visited bitmap over dense logical-id indices, plus the owning
/// root of each claimed block. Written by the sequential claim pass,
/// read lock-free (relaxed atomics, no mutex) by every encode worker.
pub struct SharedVisited {
    /// `offsets[g]` is the dense index of id `(g, 0)`.
    offsets: Vec<u32>,
    /// One bit per id: claimed by some root.
    bits: Vec<AtomicU64>,
    /// Claiming root's position in the global root order (valid only
    /// where the bit is set).
    owners: Vec<AtomicU32>,
}

impl SharedVisited {
    /// Empty bitmap sized for every id `msrlt` can currently resolve.
    pub fn new(msrlt: &Msrlt) -> Self {
        let sizes = msrlt.group_sizes();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut total = 0u32;
        for s in &sizes {
            offsets.push(total);
            total += s;
        }
        let words = (total as usize).div_ceil(64);
        SharedVisited {
            offsets,
            bits: (0..words).map(|_| AtomicU64::new(0)).collect(),
            owners: (0..total).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    fn dense(&self, id: LogicalId) -> usize {
        self.offsets[id.group as usize] as usize + id.index as usize
    }

    /// Claim `id` for the root at global position `root`. Returns false
    /// if an earlier root already holds it.
    fn claim(&self, id: LogicalId, root: u32) -> bool {
        let d = self.dense(id);
        let word = &self.bits[d / 64];
        let mask = 1u64 << (d % 64);
        if word.load(Ordering::Relaxed) & mask != 0 {
            return false;
        }
        // The claim pass is sequential, so fetch_or never races; the
        // atomics exist so workers can read the same words lock-free.
        word.fetch_or(mask, Ordering::Relaxed);
        self.owners[d].store(root, Ordering::Relaxed);
        true
    }

    /// Whether `id` was claimed, and by which root position.
    fn owner(&self, id: LogicalId) -> Option<u32> {
        let d = self.dense(id);
        if self.bits[d / 64].load(Ordering::Relaxed) & (1u64 << (d % 64)) != 0 {
            Some(self.owners[d].load(Ordering::Relaxed))
        } else {
            None
        }
    }
}

/// Claim pass: walk the graph exactly as the sequential DFS would,
/// recording first-reaching roots. Traversal only — nothing is encoded,
/// and the clones absorb all lookup traffic.
fn claim_roots(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
    roots: &[u64],
    visited: &SharedVisited,
) -> Result<(), CoreError> {
    let arch = space.arch().clone();
    let psize = arch.pointer_size;
    let mut stack: Vec<u64> = Vec::new();
    for (ri, &root) in roots.iter().enumerate() {
        let (id, off) = msrlt
            .lookup_addr(root)
            .ok_or(CoreError::UnregisteredPointer(root))?;
        if off != 0 {
            return Err(CoreError::SequenceMismatch(format!(
                "save_variable at interior address {root:#x}"
            )));
        }
        if visited.claim(id, ri as u32) {
            stack.push(root);
        }
        while let Some(addr) = stack.pop() {
            let (id, _) = msrlt
                .lookup_addr(addr)
                .ok_or(CoreError::UnregisteredPointer(addr))?;
            let entry = msrlt.entry(id).unwrap();
            let (ty, count, base) = (entry.ty, entry.count, entry.addr);
            let plan = space.plan_for(ty)?;
            if !plan.has_pointers {
                continue;
            }
            for elem in 0..count {
                let elem_base = elem * plan.size;
                for op in &plan.ops {
                    let PlanOp::PointerSlot { offset, .. } = op else {
                        continue;
                    };
                    let at = base + elem_base + offset;
                    let bytes = space.read_bytes(at, psize)?;
                    let ptr = arch.decode_scalar(CScalar::Ptr, bytes).as_ptr();
                    if ptr == 0 {
                        continue;
                    }
                    let (tid, _) = msrlt
                        .lookup_addr(ptr)
                        .ok_or(CoreError::UnregisteredPointer(ptr))?;
                    if visited.claim(tid, ri as u32) {
                        let target = msrlt.entry(tid).unwrap().addr;
                        stack.push(target);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Collect `roots` with `workers` shards, producing a payload
/// byte-identical to saving each root in order through one sequential
/// [`Collector`]. The process state is untouched; the returned
/// [`MsrltStats`] aggregates the workers' search traffic so callers can
/// fold it into the real table with [`Msrlt::absorb_stats`].
pub fn collect_parallel(
    space: &AddressSpace,
    msrlt: &Msrlt,
    roots: &[u64],
    workers: usize,
    mode: TranslationMode,
) -> Result<(Vec<u8>, CollectStats, MsrltStats), CoreError> {
    let (payload, stats, msrlt_stats, _) =
        collect_parallel_flight(space, msrlt, roots, workers, mode, None)?;
    Ok((payload, stats, msrlt_stats))
}

/// [`collect_parallel`] plus per-shard accounting and flight-recorder
/// events. Shard events are emitted *after* the join, in worker order,
/// so the recorded sequence is independent of thread scheduling.
pub fn collect_parallel_flight(
    space: &AddressSpace,
    msrlt: &Msrlt,
    roots: &[u64],
    workers: usize,
    mode: TranslationMode,
    flight: Option<&FlightTrack>,
) -> Result<(Vec<u8>, CollectStats, MsrltStats, ShardReport), CoreError> {
    let workers = workers.max(1).min(roots.len().max(1));
    if let Some(t) = flight {
        t.event(
            "claim.start",
            &[("roots", roots.len() as u64), ("workers", workers as u64)],
        );
    }
    let visited = SharedVisited::new(msrlt);
    {
        let mut claim_space = space.clone();
        let mut claim_msrlt = msrlt.clone();
        claim_roots(&mut claim_space, &mut claim_msrlt, roots, &visited)?;
    }

    // Reverse map dense→id for pre-seeding, reusing the bitmap layout.
    let claimed: Vec<(LogicalId, u32)> = msrlt
        .live_entries()
        .filter_map(|e| visited.owner(e.id).map(|o| (e.id, o)))
        .collect();

    struct Shard {
        segments: Vec<(usize, std::ops::Range<usize>)>,
        payload: Vec<u8>,
        stats: CollectStats,
        msrlt_stats: MsrltStats,
    }

    let shards: Vec<Shard> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let claimed = &claimed;
                s.spawn(move || -> Result<Shard, CoreError> {
                    let mut wspace = space.clone();
                    let mut wmsrlt = msrlt.clone();
                    wmsrlt.reset_stats();
                    let mut c =
                        Collector::with_marks(&mut wspace, &mut wmsrlt, MarkStrategy::HashSet)
                            .with_translation(mode);
                    // Everything another shard's roots own is "already
                    // saved" from this shard's point of view.
                    c.preseed_visited(
                        claimed
                            .iter()
                            .filter_map(|&(id, o)| (o as usize % workers != w).then_some(id)),
                    );
                    let mut segments = Vec::new();
                    for (ri, &root) in roots.iter().enumerate() {
                        if ri % workers != w {
                            continue;
                        }
                        let start = c.bytes_so_far();
                        c.save_variable(root)?;
                        segments.push((ri, start..c.bytes_so_far()));
                    }
                    let (payload, stats) = c.finish();
                    Ok(Shard {
                        segments,
                        payload,
                        stats,
                        msrlt_stats: wmsrlt.stats(),
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("collect worker panicked"))
            .collect::<Result<Vec<_>, CoreError>>()
    })?;

    // Deterministic splice: per-root segments back in global root order.
    let total: usize = shards.iter().map(|sh| sh.payload.len()).sum();
    let mut payload = Vec::with_capacity(total);
    let mut by_root: Vec<Option<(&[u8], &std::ops::Range<usize>)>> = vec![None; roots.len()];
    for sh in &shards {
        for (ri, range) in &sh.segments {
            by_root[*ri] = Some((&sh.payload, range));
        }
    }
    for seg in by_root.into_iter().flatten() {
        payload.extend_from_slice(&seg.0[seg.1.clone()]);
    }

    let mut stats = CollectStats::default();
    let mut msrlt_stats = MsrltStats::default();
    let mut report = ShardReport::default();
    for (w, sh) in shards.iter().enumerate() {
        stats.merge_from(&sh.stats);
        msrlt_stats.merge_from(&sh.msrlt_stats);
        report.shard_bytes.push(sh.payload.len() as u64);
        report.shard_roots.push(sh.segments.len() as u64);
        if let Some(t) = flight {
            t.event(
                "shard.encoded",
                &[
                    ("shard", w as u64),
                    ("roots", sh.segments.len() as u64),
                    ("bytes", sh.payload.len() as u64),
                ],
            );
        }
    }
    stats.bytes_out = payload.len() as u64;
    if let Some(t) = flight {
        t.event(
            "splice.done",
            &[
                ("payload_bytes", payload.len() as u64),
                ("shards", report.workers()),
            ],
        );
    }
    Ok((payload, stats, msrlt_stats, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_types::Field;

    fn setup() -> (AddressSpace, Msrlt) {
        (AddressSpace::new(Architecture::dec5000()), Msrlt::new())
    }

    fn register(space: &AddressSpace, msrlt: &mut Msrlt, addr: u64) -> LogicalId {
        let info = space.info_at(addr).expect("block exists");
        msrlt.register(&info)
    }

    /// Shared diamond: two roots reaching overlapping list structure,
    /// so the REF/NEW split depends on claim order.
    fn build_shared_lists(space: &mut AddressSpace, msrlt: &mut Msrlt) -> Vec<u64> {
        let node = space.types_mut().declare_struct("cell");
        let pnode = space.types_mut().pointer_to(node);
        let int = space.types_mut().int();
        space
            .types_mut()
            .define_struct(node, vec![Field::new("v", int), Field::new("next", pnode)])
            .unwrap();
        // A chain c0 → c1 → ... → c9, with extra heads h0 → c3 and
        // h1 → c7 entering mid-chain.
        let mut nodes = Vec::new();
        for i in 0..10 {
            let n = space.malloc(node, 1).unwrap();
            register(space, msrlt, n);
            let v = space.elem_addr(n, 0).unwrap();
            space.store_int(v, i).unwrap();
            if let Some(&prev) = nodes.last() {
                let next = space.elem_addr(prev, 1).unwrap();
                space.store_ptr(next, n).unwrap();
            }
            nodes.push(n);
        }
        let mut roots = Vec::new();
        for (name, target) in [("h0", nodes[3]), ("h1", nodes[7])] {
            let h = space.define_global(name, pnode, 1).unwrap();
            space.store_ptr(h, target).unwrap();
            register(space, msrlt, h);
            roots.push(h);
        }
        let g = space.define_global("head", pnode, 1).unwrap();
        space.store_ptr(g, nodes[0]).unwrap();
        register(space, msrlt, g);
        roots.push(g);
        roots
    }

    fn sequential(space: &mut AddressSpace, msrlt: &mut Msrlt, roots: &[u64]) -> Vec<u8> {
        let mut c = Collector::new(space, msrlt);
        for &r in roots {
            c.save_variable(r).unwrap();
        }
        c.finish().0
    }

    #[test]
    fn parallel_matches_sequential_across_worker_counts() {
        let (mut space, mut msrlt) = setup();
        let roots = build_shared_lists(&mut space, &mut msrlt);
        let seq = sequential(&mut space.clone(), &mut msrlt.clone(), &roots);
        for workers in [1, 2, 3, 8] {
            let (par, stats, _) =
                collect_parallel(&space, &msrlt, &roots, workers, TranslationMode::default())
                    .unwrap();
            assert_eq!(par, seq, "{workers} workers diverged");
            assert_eq!(stats.bytes_out, seq.len() as u64);
        }
    }

    #[test]
    fn parallel_leaves_process_untouched() {
        let (mut space, mut msrlt) = setup();
        let roots = build_shared_lists(&mut space, &mut msrlt);
        let before = msrlt.live_count();
        let (p1, s1, _) =
            collect_parallel(&space, &msrlt, &roots, 4, TranslationMode::default()).unwrap();
        let (p2, s2, _) =
            collect_parallel(&space, &msrlt, &roots, 4, TranslationMode::default()).unwrap();
        assert_eq!(p1, p2, "parallel collection is repeatable");
        assert_eq!(s1.blocks_saved, s2.blocks_saved);
        assert_eq!(msrlt.live_count(), before);
    }

    #[test]
    fn duplicate_roots_emit_visited_refs() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let g = space.define_global("x", int, 1).unwrap();
        space.store_int(g, 5).unwrap();
        register(&space, &mut msrlt, g);
        let roots = [g, g, g];
        let seq = sequential(&mut space.clone(), &mut msrlt.clone(), &roots);
        let (par, stats, _) =
            collect_parallel(&space, &msrlt, &roots, 2, TranslationMode::default()).unwrap();
        assert_eq!(par, seq);
        assert_eq!(stats.blocks_saved, 1);
    }

    #[test]
    fn unregistered_root_surfaces_error() {
        let (space, msrlt) = setup();
        let err = collect_parallel(&space, &msrlt, &[0xDEAD], 2, TranslationMode::default());
        assert!(matches!(err, Err(CoreError::UnregisteredPointer(0xDEAD))));
    }
}
