//! Migration-image framing.
//!
//! A migration image is what travels over the transport layer: a header
//! identifying the sender, an execution-state section (owned by
//! `hpm-migrate`), and the memory-state payload produced by the
//! [`Collector`](crate::Collector). This module owns the header and the
//! section framing; the sections themselves are opaque byte strings.

use crate::CoreError;
use hpm_xdr::{XdrDecoder, XdrEncoder};

/// Magic number opening every migration image: `"HPMI"`.
pub const IMAGE_MAGIC: u32 = 0x4850_4D49;
/// Current image format version. Version 2 moved the memory-state
/// payload to an unprefixed tail section so the image can be streamed in
/// chunks: the prefix (header + exec state) is known before collection
/// starts, and every payload byte after it ships as soon as the
/// collector flushes it.
pub const IMAGE_VERSION: u32 = 2;

/// Image header: who produced the image and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageHeader {
    /// Format version ([`IMAGE_VERSION`]).
    pub version: u32,
    /// Source machine name (diagnostic only — the payload is fully
    /// machine-independent).
    pub source_arch: String,
    /// Source pointer width in bytes (diagnostic).
    pub source_pointer_size: u32,
    /// Name of the migrating program (sequence-compatibility check).
    pub program: String,
    /// Total live registered bytes in the sender's MSRLT at collection
    /// time. The restorer uses this to pre-size its heap arena before
    /// decoding, so restoration does not pay incremental growth.
    pub registered_bytes: u64,
}

impl ImageHeader {
    /// Encode the header.
    pub fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(IMAGE_MAGIC);
        enc.put_u32(self.version);
        enc.put_string(&self.source_arch);
        enc.put_u32(self.source_pointer_size);
        enc.put_string(&self.program);
        enc.put_u64(self.registered_bytes);
    }

    /// Decode and validate a header.
    pub fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, CoreError> {
        let magic = dec.get_u32()?;
        if magic != IMAGE_MAGIC {
            return Err(CoreError::BadTag(magic));
        }
        let version = dec.get_u32()?;
        if version != IMAGE_VERSION {
            return Err(CoreError::SequenceMismatch(format!(
                "image version {version}, expected {IMAGE_VERSION}"
            )));
        }
        let source_arch = dec.get_string()?;
        let source_pointer_size = dec.get_u32()?;
        let program = dec.get_string()?;
        let registered_bytes = dec.get_u64()?;
        Ok(ImageHeader {
            version,
            source_arch,
            source_pointer_size,
            program,
            registered_bytes,
        })
    }
}

/// Frame the image prefix: header plus exec-state section. In a
/// streamed migration this is chunk 0; the memory-state payload follows
/// as a raw tail with no length prefix, so the sender does not need to
/// know its size up front.
pub fn frame_image_prefix(header: &ImageHeader, exec_state: &[u8]) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(64 + exec_state.len());
    header.encode(&mut enc);
    enc.put_opaque_var(exec_state);
    enc.into_bytes()
}

/// Frame a complete migration image from its sections.
pub fn frame_image(header: &ImageHeader, exec_state: &[u8], memory_state: &[u8]) -> Vec<u8> {
    let mut image = frame_image_prefix(header, exec_state);
    image.reserve(memory_state.len());
    image.extend_from_slice(memory_state);
    image
}

/// Split a migration image into (header, exec-state, memory-state).
///
/// The memory-state tail is everything after the exec section; trailing
/// garbage inside it is detected by the restorer, which knows where the
/// stream grammar ends (and reports the offending frame).
pub fn unframe_image(image: &[u8]) -> Result<(ImageHeader, Vec<u8>, Vec<u8>), CoreError> {
    let mut dec = XdrDecoder::new(image);
    let header = ImageHeader::decode(&mut dec)?;
    let exec = dec.get_opaque_var()?;
    let mem = dec.take_rest().to_vec();
    Ok((header, exec, mem))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ImageHeader {
        ImageHeader {
            version: IMAGE_VERSION,
            source_arch: "DEC 5000/120 (Ultrix, MIPS)".into(),
            source_pointer_size: 4,
            program: "linpack".into(),
            registered_bytes: 4096,
        }
    }

    #[test]
    fn frame_roundtrip() {
        let img = frame_image(&header(), b"EXEC", b"MEMORY-STATE");
        let (h, e, m) = unframe_image(&img).unwrap();
        assert_eq!(h, header());
        assert_eq!(e, b"EXEC");
        assert_eq!(m, b"MEMORY-STATE");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = frame_image(&header(), b"", b"");
        img[0] = 0;
        assert!(matches!(unframe_image(&img), Err(CoreError::BadTag(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let h = ImageHeader {
            version: 99,
            ..header()
        };
        let mut enc = XdrEncoder::new();
        h.encode(&mut enc);
        let mut dec = XdrDecoder::new(enc.as_bytes());
        assert!(matches!(
            ImageHeader::decode(&mut dec),
            Err(CoreError::SequenceMismatch(_))
        ));
    }

    #[test]
    fn prefix_plus_payload_equals_whole_image() {
        // Streaming invariant: chunk 0 (the prefix) followed by the raw
        // payload bytes reassembles the monolithic image exactly.
        let payload = b"MEMORY-STATE";
        let mut streamed = frame_image_prefix(&header(), b"EXEC");
        streamed.extend_from_slice(payload);
        assert_eq!(streamed, frame_image(&header(), b"EXEC", payload));
    }

    #[test]
    fn memory_tail_is_byte_exact() {
        // The tail is unprefixed: every byte after the exec section is
        // payload, with no padding or length field in between.
        let img = frame_image(&header(), b"E", b"M");
        let (_, e, m) = unframe_image(&img).unwrap();
        assert_eq!(e, b"E");
        assert_eq!(m, b"M");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_sections_ok() {
        let img = frame_image(&header(), b"", b"");
        let (_, e, m) = unframe_image(&img).unwrap();
        assert!(e.is_empty());
        assert!(m.is_empty());
    }
}
