//! Migration-image framing.
//!
//! A migration image is what travels over the transport layer: a header
//! identifying the sender, an execution-state section (owned by
//! `hpm-migrate`), and the memory-state payload produced by the
//! [`Collector`](crate::Collector). This module owns the header and the
//! section framing; the sections themselves are opaque byte strings.

use crate::CoreError;
use hpm_xdr::{XdrDecoder, XdrEncoder};

/// Magic number opening every migration image: `"HPMI"`.
pub const IMAGE_MAGIC: u32 = 0x4850_4D49;
/// Current image format version.
pub const IMAGE_VERSION: u32 = 1;

/// Image header: who produced the image and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageHeader {
    /// Format version ([`IMAGE_VERSION`]).
    pub version: u32,
    /// Source machine name (diagnostic only — the payload is fully
    /// machine-independent).
    pub source_arch: String,
    /// Source pointer width in bytes (diagnostic).
    pub source_pointer_size: u32,
    /// Name of the migrating program (sequence-compatibility check).
    pub program: String,
}

impl ImageHeader {
    /// Encode the header.
    pub fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(IMAGE_MAGIC);
        enc.put_u32(self.version);
        enc.put_string(&self.source_arch);
        enc.put_u32(self.source_pointer_size);
        enc.put_string(&self.program);
    }

    /// Decode and validate a header.
    pub fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, CoreError> {
        let magic = dec.get_u32()?;
        if magic != IMAGE_MAGIC {
            return Err(CoreError::BadTag(magic));
        }
        let version = dec.get_u32()?;
        if version != IMAGE_VERSION {
            return Err(CoreError::SequenceMismatch(format!(
                "image version {version}, expected {IMAGE_VERSION}"
            )));
        }
        let source_arch = dec.get_string()?;
        let source_pointer_size = dec.get_u32()?;
        let program = dec.get_string()?;
        Ok(ImageHeader {
            version,
            source_arch,
            source_pointer_size,
            program,
        })
    }
}

/// Frame a complete migration image from its sections.
pub fn frame_image(header: &ImageHeader, exec_state: &[u8], memory_state: &[u8]) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(64 + exec_state.len() + memory_state.len());
    header.encode(&mut enc);
    enc.put_opaque_var(exec_state);
    enc.put_opaque_var(memory_state);
    enc.into_bytes()
}

/// Split a migration image into (header, exec-state, memory-state).
pub fn unframe_image(image: &[u8]) -> Result<(ImageHeader, Vec<u8>, Vec<u8>), CoreError> {
    let mut dec = XdrDecoder::new(image);
    let header = ImageHeader::decode(&mut dec)?;
    let exec = dec.get_opaque_var()?;
    let mem = dec.get_opaque_var()?;
    if !dec.is_empty() {
        return Err(CoreError::SequenceMismatch(format!(
            "{} bytes after memory-state section",
            dec.remaining()
        )));
    }
    Ok((header, exec, mem))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ImageHeader {
        ImageHeader {
            version: IMAGE_VERSION,
            source_arch: "DEC 5000/120 (Ultrix, MIPS)".into(),
            source_pointer_size: 4,
            program: "linpack".into(),
        }
    }

    #[test]
    fn frame_roundtrip() {
        let img = frame_image(&header(), b"EXEC", b"MEMORY-STATE");
        let (h, e, m) = unframe_image(&img).unwrap();
        assert_eq!(h, header());
        assert_eq!(e, b"EXEC");
        assert_eq!(m, b"MEMORY-STATE");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = frame_image(&header(), b"", b"");
        img[0] = 0;
        assert!(matches!(unframe_image(&img), Err(CoreError::BadTag(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let h = ImageHeader {
            version: 99,
            ..header()
        };
        let mut enc = XdrEncoder::new();
        h.encode(&mut enc);
        let mut dec = XdrDecoder::new(enc.as_bytes());
        assert!(matches!(
            ImageHeader::decode(&mut dec),
            Err(CoreError::SequenceMismatch(_))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut img = frame_image(&header(), b"E", b"M");
        img.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            unframe_image(&img),
            Err(CoreError::SequenceMismatch(_))
        ));
    }

    #[test]
    fn empty_sections_ok() {
        let img = frame_image(&header(), b"", b"");
        let (_, e, m) = unframe_image(&img).unwrap();
        assert!(e.is_empty());
        assert!(m.is_empty());
    }
}
