//! Structural type fingerprints.
//!
//! The migration image labels every transmitted block with a fingerprint
//! of its element type so a receiver whose TI table diverged (different
//! program version, corrupted stream) fails loudly instead of silently
//! misinterpreting bytes. Fingerprints are *structural* and
//! machine-independent: two processes compiled for different
//! architectures produce identical fingerprints for the same source type.

use hpm_types::{TypeDef, TypeId, TypeTable};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Machine-independent structural fingerprint of `ty`.
///
/// Struct types hash by tag name plus field names/types; pointers hash by
/// a marker plus the pointee's *name* when the pointee is a struct (which
/// keeps recursive types like `struct node` terminating).
pub fn type_fingerprint(table: &TypeTable, ty: TypeId) -> u64 {
    hash_type(table, ty, FNV_OFFSET)
}

fn hash_type(table: &TypeTable, ty: TypeId, h: u64) -> u64 {
    match table.def(ty) {
        TypeDef::Scalar(s) => fnv(h, s.c_name().as_bytes()),
        TypeDef::Pointer(p) => {
            let h = fnv(h, b"*");
            match table.def(*p) {
                // Name-only for struct pointees: cycle-safe.
                TypeDef::Struct { name, .. } => fnv(h, name.as_bytes()),
                _ => hash_type(table, *p, h),
            }
        }
        TypeDef::Array { elem, count } => {
            let h = fnv(h, b"[");
            let h = fnv(h, &count.to_le_bytes());
            hash_type(table, *elem, h)
        }
        TypeDef::Struct { name, fields } => {
            let mut h = fnv(h, b"{");
            h = fnv(h, name.as_bytes());
            if let Some(fs) = fields {
                for f in fs {
                    h = fnv(h, f.name.as_bytes());
                    h = hash_type(table, f.ty, h);
                }
            }
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_types::Field;

    #[test]
    fn identical_construction_identical_fingerprint() {
        let build = || {
            let mut t = TypeTable::new();
            let node = t.declare_struct("node");
            let link = t.pointer_to(node);
            let f = t.float();
            t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
                .unwrap();
            let fp = type_fingerprint(&t, node);
            (t, node, fp)
        };
        let (_, _, a) = build();
        let (_, _, b) = build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_types_differ() {
        let mut t = TypeTable::new();
        let i = t.int();
        let d = t.double();
        let ai = t.array_of(i, 10);
        let ai2 = t.array_of(i, 11);
        assert_ne!(type_fingerprint(&t, i), type_fingerprint(&t, d));
        assert_ne!(type_fingerprint(&t, ai), type_fingerprint(&t, ai2));
        assert_ne!(type_fingerprint(&t, i), type_fingerprint(&t, ai));
    }

    #[test]
    fn recursive_struct_terminates() {
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        // Must not hang or overflow.
        let fp = type_fingerprint(&t, node);
        assert_ne!(fp, 0);
    }

    #[test]
    fn mutually_recursive_structs_terminate() {
        let mut t = TypeTable::new();
        let a = t.declare_struct("A");
        let b = t.declare_struct("B");
        let pa = t.pointer_to(a);
        let pb = t.pointer_to(b);
        t.define_struct(a, vec![Field::new("b", pb)]).unwrap();
        t.define_struct(b, vec![Field::new("a", pa)]).unwrap();
        assert_ne!(type_fingerprint(&t, a), type_fingerprint(&t, b));
    }

    #[test]
    fn field_rename_changes_fingerprint() {
        let mut t1 = TypeTable::new();
        let i1 = t1.int();
        let s1 = t1.struct_type("s", vec![Field::new("x", i1)]).unwrap();
        let mut t2 = TypeTable::new();
        let i2 = t2.int();
        let s2 = t2.struct_type("s", vec![Field::new("y", i2)]).unwrap();
        assert_ne!(type_fingerprint(&t1, s1), type_fingerprint(&t2, s2));
    }

    #[test]
    fn fingerprint_is_arch_independent_by_construction() {
        // The fingerprint never consults an Architecture — this test
        // simply documents that two tables built by "the same program"
        // on different machines agree (tables are arch-free).
        let mut t = TypeTable::new();
        let d = t.double();
        let m = t.array_of(d, 1_000_000);
        let fp1 = type_fingerprint(&t, m);
        let fp2 = type_fingerprint(&t.clone(), m);
        assert_eq!(fp1, fp2);
    }
}
