//! Sharded parallel restoration — the mirror of
//! [`parallel`](crate::parallel) for the receiving side.
//!
//! The sequential [`Restorer`] consumes one contiguous stream segment
//! per root (`restore_variable` call). Segments interact through two
//! kinds of shared state: the MSRLT (a `PTR_REF` in a later segment
//! resolves a block a former segment allocated) and the allocator (heap
//! addresses depend on allocation order). Both are handled by a cheap
//! sequential pre-pass, after which the expensive work — decode and
//! copy, the dominant term of §4.2's `Restore = MSRLT_update +
//! Decode_and_Copy` — shards cleanly:
//!
//! 1. **Skim pass** (sequential, no data writes): run the restorer in
//!    skim mode over the whole payload. It consumes and validates every
//!    item, performs `malloc` + MSRLT registration for unseen `PTR_NEW`
//!    blocks *in stream order* — reproducing exactly the addresses a
//!    sequential restore would assign — and records each root's byte
//!    range plus which blocks its segment fills (its *owned* blocks;
//!    every block is filled by exactly one segment, because the
//!    collector emits a block's contents only at its first encounter).
//! 2. **Fill pass** (parallel): `std::thread::scope` workers take roots
//!    round-robin, each with its own clone of the post-skim space and
//!    MSRLT, and run a real restorer over their segments' byte ranges.
//!    Every block already exists in the clone, so `PTR_NEW` takes the
//!    validate-and-fill-in-place path; clones share the real space's
//!    addresses, so every decoded pointer value is globally correct.
//! 3. **Splice** (deterministic): copy each owned block's bytes from
//!    its owner's clone into the real space, in global root order. The
//!    result is byte-identical to a sequential restore — verified by
//!    `tests/parallel_restore.rs`.
//!
//! Streamed (chunked) payloads restore while still arriving and have no
//! complete byte range to shard; they keep the sequential path.

use crate::collect::TranslationMode;
use crate::msrlt::Msrlt;
use crate::parallel::ShardReport;
use crate::restore::{RestoreStats, Restorer};
use crate::CoreError;
use hpm_memory::AddressSpace;
use hpm_obs::{FlightTrack, StatGroup};
use std::ops::Range;

/// Restore `payload` into `space` with `workers` shards, byte-identical
/// to calling [`Restorer::restore_variable`] on each root in order. The
/// returned [`ShardReport`] carries per-worker segment bytes and root
/// counts, comparable with the collection side's report.
pub fn restore_parallel(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
    payload: &[u8],
    roots: &[u64],
    workers: usize,
    mode: TranslationMode,
) -> Result<(RestoreStats, ShardReport), CoreError> {
    restore_parallel_flight(space, msrlt, payload, roots, workers, mode, None)
}

/// [`restore_parallel`] plus flight-recorder events (`skim.done`,
/// `shard.restored`, `splice.done`). Shard events are emitted after the
/// join, in worker order, so the recorded sequence is independent of
/// thread scheduling.
pub fn restore_parallel_flight(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
    payload: &[u8],
    roots: &[u64],
    workers: usize,
    mode: TranslationMode,
    flight: Option<&FlightTrack>,
) -> Result<(RestoreStats, ShardReport), CoreError> {
    let (stats, _, report) =
        restore_parallel_inner(space, msrlt, payload, roots, workers, mode, flight, true)?;
    Ok((stats, report))
}

/// [`restore_parallel_flight`] over a stream *section*: restores `roots`
/// from the front of `payload` and returns how many bytes they consumed,
/// tolerating trailing payload (later frames' sections). This is what a
/// per-frame caller — one `restore_frame` of several — uses; the caller
/// is responsible for any end-of-stream exactness check.
pub fn restore_parallel_section(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
    payload: &[u8],
    roots: &[u64],
    workers: usize,
    mode: TranslationMode,
    flight: Option<&FlightTrack>,
) -> Result<(RestoreStats, usize, ShardReport), CoreError> {
    restore_parallel_inner(space, msrlt, payload, roots, workers, mode, flight, false)
}

#[allow(clippy::too_many_arguments)]
fn restore_parallel_inner(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
    payload: &[u8],
    roots: &[u64],
    workers: usize,
    mode: TranslationMode,
    flight: Option<&FlightTrack>,
    drain: bool,
) -> Result<(RestoreStats, usize, ShardReport), CoreError> {
    let workers = workers.max(1).min(roots.len().max(1));

    // Skim pass: validate the whole stream, allocate in stream order,
    // and learn each root's byte range and owned blocks.
    let mut segments: Vec<(Range<usize>, Range<usize>)> = Vec::with_capacity(roots.len());
    let (filled, blocks_allocated, consumed) = {
        let mut skim = Restorer::new(space, msrlt, payload)
            .with_translation(mode)
            .skim_mode();
        for &root in roots {
            let b0 = skim.consumed();
            let f0 = skim.filled_blocks().len();
            skim.restore_variable(root)?;
            segments.push((b0..skim.consumed(), f0..skim.filled_blocks().len()));
        }
        let filled = skim.filled_blocks().to_vec();
        let consumed = skim.consumed();
        let stats = if drain {
            skim.finish()? // trailing-byte check
        } else {
            skim.take_stats()
        };
        (filled, stats.blocks_allocated, consumed)
    };
    if let Some(t) = flight {
        t.event(
            "skim.done",
            &[
                ("roots", roots.len() as u64),
                ("workers", workers as u64),
                ("blocks", filled.len() as u64),
                ("allocated", blocks_allocated),
            ],
        );
    }

    struct Shard {
        space: AddressSpace,
        stats: RestoreStats,
        bytes: u64,
        roots: u64,
    }

    // Fill pass: workers decode their segments into private clones of
    // the post-skim space (every block already exists at its final
    // address, so the clones agree on all pointer values).
    let snap: &AddressSpace = space;
    let table: &Msrlt = msrlt;
    let shards: Vec<Shard> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let segments = &segments;
                s.spawn(move || -> Result<Shard, CoreError> {
                    let mut wspace = snap.clone();
                    let mut wmsrlt = table.clone();
                    let mut stats = RestoreStats::default();
                    let mut bytes = 0u64;
                    let mut nroots = 0u64;
                    for (ri, &root) in roots.iter().enumerate() {
                        if ri % workers != w {
                            continue;
                        }
                        let seg = &payload[segments[ri].0.clone()];
                        let mut r =
                            Restorer::new(&mut wspace, &mut wmsrlt, seg).with_translation(mode);
                        r.restore_variable(root)?;
                        stats.merge_from(&r.finish()?);
                        bytes += seg.len() as u64;
                        nroots += 1;
                    }
                    Ok(Shard {
                        space: wspace,
                        stats,
                        bytes,
                        roots: nroots,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("restore worker panicked"))
            .collect::<Result<Vec<_>, CoreError>>()
    })?;

    // Splice: each block's contents come from the clone of the worker
    // whose segment fills it, applied in global root order.
    for (ri, (_, frange)) in segments.iter().enumerate() {
        let owner = &shards[ri % workers];
        for &(addr, size) in &filled[frange.clone()] {
            let data = owner.space.read_bytes(addr, size)?;
            // One write borrow per block; `data` borrows the clone, not
            // the destination space, so the copy needs no staging.
            let copied = data.to_vec();
            space.write_bytes(addr, &copied)?;
        }
    }

    let mut stats = RestoreStats::default();
    let mut report = ShardReport::default();
    for (w, sh) in shards.iter().enumerate() {
        stats.merge_from(&sh.stats);
        report.shard_bytes.push(sh.bytes);
        report.shard_roots.push(sh.roots);
        if let Some(t) = flight {
            t.event(
                "shard.restored",
                &[
                    ("shard", w as u64),
                    ("roots", sh.roots),
                    ("bytes", sh.bytes),
                ],
            );
        }
    }
    // Workers never allocate (the skim pass owns every MSRLT update);
    // report the allocations the full restore performed.
    stats.blocks_allocated = blocks_allocated;
    stats.bytes_in = consumed as u64;
    if let Some(t) = flight {
        t.event(
            "splice.done",
            &[
                ("payload_bytes", consumed as u64),
                ("blocks", filled.len() as u64),
                ("shards", report.workers()),
            ],
        );
    }
    Ok((stats, consumed, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use crate::msrlt::LogicalId;
    use hpm_arch::Architecture;
    use hpm_types::Field;

    fn register(space: &AddressSpace, msrlt: &mut Msrlt, addr: u64) -> LogicalId {
        let info = space.info_at(addr).expect("block exists");
        msrlt.register(&info)
    }

    /// Same program image on any machine: a cell chain with two
    /// mid-chain heads, mirroring the collection-side shard test.
    fn program(arch: Architecture) -> (AddressSpace, Msrlt, Vec<u64>) {
        let mut space = AddressSpace::new(arch);
        let node = space.types_mut().declare_struct("cell");
        let pnode = space.types_mut().pointer_to(node);
        let int = space.types_mut().int();
        space
            .types_mut()
            .define_struct(node, vec![Field::new("v", int), Field::new("next", pnode)])
            .unwrap();
        let mut msrlt = Msrlt::new();
        let mut roots = Vec::new();
        for name in ["h0", "h1", "head", "tail"] {
            let h = space.define_global(name, pnode, 1).unwrap();
            register(&space, &mut msrlt, h);
            roots.push(h);
        }
        (space, msrlt, roots)
    }

    /// Source side: build the chain, point the heads into it, collect.
    fn collected_payload() -> (Vec<u8>, Vec<u8>) {
        let (mut space, mut msrlt, roots) = program(Architecture::dec5000());
        let node = space.types().struct_by_name("cell").unwrap();
        let mut nodes = Vec::new();
        for i in 0..24 {
            let n = space.malloc(node, 1).unwrap();
            register(&space, &mut msrlt, n);
            let v = space.elem_addr(n, 0).unwrap();
            space.store_int(v, i * 3 - 7).unwrap();
            if let Some(&prev) = nodes.last() {
                let next = space.elem_addr(prev, 1).unwrap();
                space.store_ptr(next, n).unwrap();
            }
            nodes.push(n);
        }
        space.store_ptr(roots[0], nodes[5]).unwrap();
        space.store_ptr(roots[1], nodes[15]).unwrap();
        space.store_ptr(roots[2], nodes[0]).unwrap();
        space.store_ptr(roots[3], nodes[23]).unwrap();
        let mut c = Collector::new(&mut space, &mut msrlt);
        for &r in &roots {
            c.save_variable(r).unwrap();
        }
        let (payload, _) = c.finish();
        let digest = digest(&space);
        (payload, digest)
    }

    /// Every registered block's bytes, in address order.
    fn digest(space: &AddressSpace) -> Vec<u8> {
        let mut infos = space.block_infos();
        infos.sort_by_key(|i| i.addr);
        let mut out = Vec::new();
        for i in infos {
            out.extend_from_slice(&i.addr.to_be_bytes());
            out.extend_from_slice(space.read_bytes(i.addr, i.size).unwrap());
        }
        out
    }

    fn sequential_restore(payload: &[u8]) -> (Vec<u8>, RestoreStats) {
        let (mut dst, mut dst_lt, roots) = program(Architecture::sparc20());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, payload);
        for &root in &roots {
            r.restore_variable(root).unwrap();
        }
        let stats = r.finish().unwrap();
        (digest(&dst), stats)
    }

    #[test]
    fn parallel_restore_matches_sequential_across_worker_counts() {
        let (payload, _) = collected_payload();
        let (seq_digest, seq_stats) = sequential_restore(&payload);
        for workers in [1, 2, 4, 8] {
            let (mut dst, mut dst_lt, roots) = program(Architecture::sparc20());
            let (stats, report) = restore_parallel(
                &mut dst,
                &mut dst_lt,
                &payload,
                &roots,
                workers,
                TranslationMode::default(),
            )
            .unwrap();
            assert_eq!(digest(&dst), seq_digest, "{workers} workers diverged");
            assert_eq!(stats.blocks_restored, seq_stats.blocks_restored);
            assert_eq!(stats.blocks_allocated, seq_stats.blocks_allocated);
            assert_eq!(stats.scalars_decoded, seq_stats.scalars_decoded);
            assert_eq!(stats.ptr_ref, seq_stats.ptr_ref);
            assert_eq!(stats.ptr_new, seq_stats.ptr_new);
            assert_eq!(stats.bytes_in, payload.len() as u64);
            assert_eq!(report.workers(), workers.min(4) as u64);
            assert_eq!(report.shard_roots.iter().sum::<u64>(), 4);
        }
    }

    #[test]
    fn parallel_restore_is_repeatable() {
        let (payload, _) = collected_payload();
        let run = || {
            let (mut dst, mut dst_lt, roots) = program(Architecture::x86_64_sim());
            restore_parallel(
                &mut dst,
                &mut dst_lt,
                &payload,
                &roots,
                3,
                TranslationMode::default(),
            )
            .unwrap();
            digest(&dst)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn heterogeneous_parallel_restore_translates() {
        // dec5000 (LE/ILP32) → x86_64_sim (LE/LP64): addresses and
        // layouts differ, values must survive.
        let (payload, _) = collected_payload();
        let (mut dst, mut dst_lt, roots) = program(Architecture::x86_64_sim());
        restore_parallel(
            &mut dst,
            &mut dst_lt,
            &payload,
            &roots,
            4,
            TranslationMode::default(),
        )
        .unwrap();
        // Walk the chain from `head` and check the stored values.
        let mut at = dst.load_ptr(roots[2]).unwrap();
        let mut i = 0i64;
        while at != 0 {
            let v = dst.elem_addr(at, 0).unwrap();
            assert_eq!(dst.load_int(v).unwrap(), i * 3 - 7);
            let next = dst.elem_addr(at, 1).unwrap();
            at = dst.load_ptr(next).unwrap();
            i += 1;
        }
        assert_eq!(i, 24, "whole chain reachable");
        // h0 and h1 alias into the same chain.
        assert_ne!(dst.load_ptr(roots[0]).unwrap(), 0);
        assert_ne!(dst.load_ptr(roots[1]).unwrap(), 0);
    }

    #[test]
    fn section_restore_reports_consumed_and_tolerates_trailing_payload() {
        let (payload, _) = collected_payload();
        let real_len = payload.len();
        // A later frame's section would follow ours on the wire; the
        // section API must stop at our roots' end and say where.
        let mut padded = payload.clone();
        padded.extend_from_slice(&[7, 7, 7, 7, 7, 7, 7, 7]);
        let (seq_digest, _) = sequential_restore(&payload);
        let (mut dst, mut dst_lt, roots) = program(Architecture::sparc20());
        let (stats, consumed, report) = restore_parallel_section(
            &mut dst,
            &mut dst_lt,
            &padded,
            &roots,
            3,
            TranslationMode::default(),
            None,
        )
        .unwrap();
        assert_eq!(consumed, real_len);
        assert_eq!(stats.bytes_in, real_len as u64);
        assert_eq!(digest(&dst), seq_digest);
        assert_eq!(report.shard_roots.iter().sum::<u64>(), 4);
    }

    #[test]
    fn trailing_garbage_still_detected() {
        let (mut payload, _) = collected_payload();
        payload.extend_from_slice(&[0, 0, 0, 0]);
        let (mut dst, mut dst_lt, roots) = program(Architecture::sparc20());
        let err = restore_parallel(
            &mut dst,
            &mut dst_lt,
            &payload,
            &roots,
            2,
            TranslationMode::default(),
        );
        assert!(matches!(err, Err(CoreError::TrailingBytes { .. })));
    }
}
