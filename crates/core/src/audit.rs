//! Pre-flight audit of a live MSRLT snapshot.
//!
//! Collection assumes the registry is coherent: every non-NULL pointer in
//! a registered block resolves to a registered block, frame groups nest
//! exactly as the live call chain does, no two blocks overlap, and the
//! byte accounting matches the entries. When one of those assumptions is
//! violated, the collector fails mid-flight with a half-built image; the
//! auditor checks all of them *before* collection starts, reporting every
//! violation at once instead of dying on the first.
//!
//! The driver runs this audit at the migration point (see
//! `hpm-migrate::driver`); `hpm-lint` re-surfaces the findings as
//! `HPM03x` diagnostics.

use crate::msrlt::{frame_group, LogicalId, Msrlt};
use crate::CoreError;
use hpm_arch::CScalar;
use hpm_memory::AddressSpace;
use hpm_obs::{StatField, StatGroup};
use hpm_types::plan::PlanOp;
use std::time::{Duration, Instant};

/// One coherence violation found in the registry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryFinding {
    /// A non-NULL pointer slot whose target is not a registered block:
    /// collection would abort with [`CoreError::UnregisteredPointer`].
    DanglingEdge {
        /// Block holding the pointer.
        from: LogicalId,
        /// Byte offset of the pointer slot within the block.
        offset: u64,
        /// The raw (machine-specific) target address.
        raw: u64,
    },
    /// A registered address the address space knows no block for — the
    /// registry and the space disagree about what is alive.
    UnknownBlock {
        /// The registered id.
        id: LogicalId,
        /// The registered address.
        addr: u64,
    },
    /// Two registered blocks overlap in the address space.
    OverlappingBlocks {
        /// Lower block.
        a: LogicalId,
        /// Upper block (starts inside `a`).
        b: LogicalId,
        /// Bytes of overlap.
        bytes: u64,
    },
    /// A live stack entry belongs to a frame group deeper than the live
    /// frame stack — its frame was popped without unregistering it.
    FrameNesting {
        /// The orphaned entry.
        id: LogicalId,
        /// The live frame-stack depth at audit time.
        live_depth: u32,
    },
    /// A registered block's recorded size disagrees with its type's
    /// layout (`plan.size * count`): the stream would mis-slice it.
    SizeMismatch {
        /// The block.
        id: LogicalId,
        /// Size the registry recorded.
        recorded: u64,
        /// Size the type plan implies.
        expected: u64,
    },
    /// The registry's running live-byte counter disagrees with the sum
    /// of its live entries.
    ByteAccounting {
        /// The running counter.
        recorded: u64,
        /// The recomputed sum.
        actual: u64,
    },
}

impl std::fmt::Display for RegistryFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryFinding::DanglingEdge { from, offset, raw } => write!(
                f,
                "pointer at {from}+{offset} targets unregistered address {raw:#x}"
            ),
            RegistryFinding::UnknownBlock { id, addr } => {
                write!(f, "registered block {id} at {addr:#x} unknown to the space")
            }
            RegistryFinding::OverlappingBlocks { a, b, bytes } => {
                write!(f, "blocks {a} and {b} overlap by {bytes} bytes")
            }
            RegistryFinding::FrameNesting { id, live_depth } => write!(
                f,
                "stack entry {id} outlives the live frame stack (depth {live_depth})"
            ),
            RegistryFinding::SizeMismatch {
                id,
                recorded,
                expected,
            } => write!(
                f,
                "block {id} registered as {recorded} bytes but its type plan covers {expected}"
            ),
            RegistryFinding::ByteAccounting { recorded, actual } => write!(
                f,
                "live-byte counter {recorded} != sum of live entries {actual}"
            ),
        }
    }
}

/// Counters for one pre-flight audit, surfaced through [`StatGroup`] so
/// the driver's report renders them alongside every other phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RegistryAuditStats {
    /// Live blocks examined.
    pub blocks_checked: u64,
    /// Pointer slots decoded and resolved.
    pub edges_checked: u64,
    /// Total findings (all kinds).
    pub findings: u64,
    /// Dangling-edge findings.
    pub dangling_edges: u64,
    /// Overlapping-block findings.
    pub overlaps: u64,
    /// Frame-nesting findings.
    pub frame_violations: u64,
    /// Wall time of the audit.
    pub audit_time: Duration,
}

impl StatGroup for RegistryAuditStats {
    fn group(&self) -> &'static str {
        "registry_audit"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("blocks_checked", self.blocks_checked),
            StatField::count("edges_checked", self.edges_checked),
            StatField::count("findings", self.findings),
            StatField::count("dangling_edges", self.dangling_edges),
            StatField::count("overlaps", self.overlaps),
            StatField::count("frame_violations", self.frame_violations),
            StatField::duration("audit_time", self.audit_time),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.blocks_checked += other.blocks_checked;
        self.edges_checked += other.edges_checked;
        self.findings += other.findings;
        self.dangling_edges += other.dangling_edges;
        self.overlaps += other.overlaps;
        self.frame_violations += other.frame_violations;
        self.audit_time += other.audit_time;
    }
}

/// Audit a live registry snapshot against its address space.
///
/// Unlike [`MsrGraph::snapshot`](crate::MsrGraph::snapshot), this never
/// errors on a coherence violation — violations *are* the output. `Err`
/// is reserved for plan-compilation failures (an incomplete type), which
/// mean the snapshot cannot be judged at all.
pub fn audit_registry(
    space: &mut AddressSpace,
    msrlt: &mut Msrlt,
) -> Result<(Vec<RegistryFinding>, RegistryAuditStats), CoreError> {
    let t0 = Instant::now();
    let mut findings = Vec::new();
    let mut stats = RegistryAuditStats::default();

    let entries: Vec<_> = msrlt
        .live_entries()
        .map(|e| (e.id, e.addr, e.ty, e.count, e.size))
        .collect();
    let live_depth = msrlt.frame_depth() as u32;
    let first_dead_group = frame_group(live_depth);

    // Per-block checks: existence, size, frame nesting, then edges.
    for &(id, addr, ty, count, size) in &entries {
        stats.blocks_checked += 1;
        if id.group >= first_dead_group {
            findings.push(RegistryFinding::FrameNesting { id, live_depth });
            stats.frame_violations += 1;
        }
        if space.block_at(addr).is_none() {
            findings.push(RegistryFinding::UnknownBlock { id, addr });
            // Without the block there are no bytes to decode pointers
            // from; skip the edge walk.
            continue;
        }
        let plan = space.plan_for(ty)?;
        let expected = plan.size * count;
        if expected != size {
            findings.push(RegistryFinding::SizeMismatch {
                id,
                recorded: size,
                expected,
            });
        }
        for elem in 0..count {
            let elem_base = elem * plan.size;
            for op in &plan.ops {
                if let PlanOp::PointerSlot { offset, .. } = op {
                    stats.edges_checked += 1;
                    let at = addr + elem_base + offset;
                    let raw = {
                        let bytes = space.read_bytes(at, space.arch().pointer_size)?;
                        space.arch().decode_scalar(CScalar::Ptr, bytes).as_ptr()
                    };
                    if raw != 0 && msrlt.lookup_addr(raw).is_none() {
                        findings.push(RegistryFinding::DanglingEdge {
                            from: id,
                            offset: elem_base + offset,
                            raw,
                        });
                        stats.dangling_edges += 1;
                    }
                }
            }
        }
    }

    // Overlap: adjacent pairs in address order.
    let mut by_addr: Vec<_> = entries
        .iter()
        .map(|&(id, addr, _, _, size)| (addr, size, id))
        .collect();
    by_addr.sort_unstable();
    for w in by_addr.windows(2) {
        let (a_addr, a_size, a_id) = w[0];
        let (b_addr, _, b_id) = w[1];
        let a_end = a_addr + a_size;
        if b_addr < a_end {
            findings.push(RegistryFinding::OverlappingBlocks {
                a: a_id,
                b: b_id,
                bytes: a_end - b_addr,
            });
            stats.overlaps += 1;
        }
    }

    // Byte accounting.
    let actual: u64 = entries.iter().map(|&(_, _, _, _, size)| size).sum();
    let recorded = msrlt.registered_bytes();
    if recorded != actual {
        findings.push(RegistryFinding::ByteAccounting { recorded, actual });
    }

    stats.findings = findings.len() as u64;
    stats.audit_time = t0.elapsed();
    Ok((findings, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_types::Field;

    fn reg_all(space: &AddressSpace, msrlt: &mut Msrlt) {
        for info in space.block_infos() {
            if msrlt.lookup_addr(info.addr).is_none() {
                msrlt.register(&info);
            }
        }
    }

    #[test]
    fn coherent_registry_audits_clean() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let node = space.types_mut().declare_struct("n");
        let pn = space.types_mut().pointer_to(node);
        let i = space.types_mut().int();
        space
            .types_mut()
            .define_struct(node, vec![Field::new("v", i), Field::new("next", pn)])
            .unwrap();
        let a = space.malloc(node, 1).unwrap();
        let b = space.malloc(node, 1).unwrap();
        let la = space.elem_addr(a, 1).unwrap();
        space.store_ptr(la, b).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        let (findings, stats) = audit_registry(&mut space, &mut msrlt).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(stats.blocks_checked, 2);
        assert_eq!(stats.edges_checked, 2);
        assert_eq!(stats.findings, 0);
    }

    #[test]
    fn dangling_pointer_reported_not_fatal() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let p = space.define_global("p", pi, 1).unwrap();
        space.store_ptr(p, 0xDEAD).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        let (findings, stats) = audit_registry(&mut space, &mut msrlt).unwrap();
        assert_eq!(stats.dangling_edges, 1);
        assert!(matches!(
            findings[0],
            RegistryFinding::DanglingEdge { raw: 0xDEAD, .. }
        ));
    }

    #[test]
    fn unregistered_space_block_is_not_a_finding() {
        // A block the space knows but the registry doesn't is legal
        // (registration is lazy); only the reverse is incoherent.
        let mut space = AddressSpace::new(Architecture::sparc20());
        let int = space.types_mut().int();
        space.define_global("x", int, 1).unwrap();
        let mut space2 = space; // no registrations at all
        let mut msrlt = Msrlt::new();
        let (findings, stats) = audit_registry(&mut space2, &mut msrlt).unwrap();
        assert!(findings.is_empty());
        assert_eq!(stats.blocks_checked, 0);
    }

    #[test]
    fn stale_frame_entry_reported() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let int = space.types_mut().int();
        let mut msrlt = Msrlt::new();
        msrlt.begin_frame();
        // Register a fake stack entry directly in frame group 2, then
        // pop the frame stack *without* the entry (register_at bypasses
        // the frame bookkeeping, as a buggy runtime would).
        let g = space.define_global("x", int, 1).unwrap();
        let info = space
            .block_infos()
            .into_iter()
            .find(|b| b.addr == g)
            .unwrap();
        msrlt.register_at(
            LogicalId { group: 2, index: 0 },
            info.addr,
            info.size,
            info.ty,
            info.count,
        );
        msrlt.end_frame();
        // end_frame drops group-2 entries it tracked; ours bypassed
        // begin_frame's group list? register_at appends to the group, so
        // end_frame removed it. Re-add after the pop to model the stale
        // entry.
        if msrlt.lookup_addr(info.addr).is_none() {
            msrlt.register_at(
                LogicalId { group: 2, index: 1 },
                info.addr,
                info.size,
                info.ty,
                info.count,
            );
        }
        let (findings, stats) = audit_registry(&mut space, &mut msrlt).unwrap();
        assert_eq!(stats.frame_violations, 1, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| matches!(f, RegistryFinding::FrameNesting { .. })));
    }

    #[test]
    fn stats_render_as_group() {
        let stats = RegistryAuditStats {
            blocks_checked: 3,
            ..Default::default()
        };
        assert_eq!(stats.group(), "registry_audit");
        assert!(stats
            .fields()
            .iter()
            .any(|f| f.name == "blocks_checked" && f.value.raw() == 3));
        let mut a = stats;
        a.merge_from(&stats);
        assert_eq!(a.blocks_checked, 6);
    }
}
