//! Data collection: `Save_variable` and `Save_pointer`.
//!
//! §3.1: "Save_pointer initiates a depth-first traversal through
//! connected components of the MSR graph. It examines memory blocks that
//! are referred to by pointers and then invokes type-specific saving
//! functions to save their contents. During the traversal, visited memory
//! blocks are marked so that they are not saved again."
//!
//! ## Stream grammar (all items XDR-encoded)
//!
//! ```text
//! item        := VAR_NEW id fp count contents
//!              | VAR_VISITED id
//! pointer     := PTR_NULL
//!              | PTR_REF id offset
//!              | PTR_NEW id offset fp count contents
//! contents    := leaf*                       (element order, per TI plan)
//! leaf        := scalar-in-XDR-form | pointer
//! id          := group:u32 index:u32
//! offset      := u64    (leaf ordinal inside the target block)
//! fp          := u64    (structural type fingerprint of the element type)
//! count       := u64    (element count of the block)
//! ```
//!
//! The traversal is depth-first *pre-order*: a `PTR_NEW` is immediately
//! followed by the complete contents of the target block (which may nest
//! further `PTR_NEW`s), after which the interrupted parent block resumes.
//! The DFS runs on an explicit work stack, so arbitrarily deep structures
//! (million-node linked lists) collect without exhausting the call stack.

use crate::fingerprint::type_fingerprint;
use crate::msrlt::{LogicalId, Msrlt};
use crate::CoreError;
use hpm_arch::CScalar;
use hpm_memory::AddressSpace;
use hpm_obs::{FlightTrack, StatField, StatGroup, Tracer};
use hpm_types::plan::{PlanOp, SavePlan};
use hpm_types::TypeId;
use hpm_xdr::XdrEncoder;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stream tag: block saved in place (named live variable), first visit.
pub(crate) const TAG_VAR_NEW: u32 = 1;
/// Stream tag: named variable whose block was already saved.
pub(crate) const TAG_VAR_VISITED: u32 = 2;
/// Stream tag: NULL pointer.
pub(crate) const TAG_PTR_NULL: u32 = 3;
/// Stream tag: pointer to an already-saved block.
pub(crate) const TAG_PTR_REF: u32 = 4;
/// Stream tag: pointer to a block saved inline right here.
pub(crate) const TAG_PTR_NEW: u32 = 5;

/// How visited-block marking is implemented (ablation of a design choice
/// called out in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarkStrategy {
    /// Epoch counter stored in each MSRLT entry; clearing is O(1).
    #[default]
    Epoch,
    /// Side hash-set of visited ids.
    HashSet,
}

/// How pointer-free scalar runs are turned into wire bytes.
///
/// XDR's wire layout is big-endian at 4/8-byte widths. On presets whose
/// native layout already matches (the big-endian ILP32 SPARCs), a
/// pointer-free run's wire image *is* its native bytes — so the whole
/// run can be copied in one `put_opaque_fixed` instead of a
/// decode/encode per scalar. Both sides gate independently: a
/// big-endian source can bulk-encode for a little-endian destination,
/// which then per-element-decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranslationMode {
    /// Copy same-wire-format runs in bulk; convert the rest per element.
    #[default]
    Bulk,
    /// Always convert scalar by scalar (ablation baseline; the bulk path
    /// must be bit-identical to this).
    PerElement,
}

/// Whether `kind`'s native byte layout on `arch` equals its XDR wire
/// form: big-endian at exactly the wire width. Such runs round-trip
/// through `decode_scalar`/`put_scalar_xdr` without changing a bit, so
/// they may be block-copied.
pub(crate) fn same_wire_format(arch: &hpm_arch::Architecture, kind: CScalar) -> bool {
    use hpm_arch::{Endianness, XdrForm};
    if arch.endianness != Endianness::Big {
        return false;
    }
    let wire = match kind.xdr_form() {
        XdrForm::Int | XdrForm::UInt | XdrForm::Float => 4,
        XdrForm::Hyper | XdrForm::UHyper | XdrForm::Double => 8,
        XdrForm::LogicalPointer => return false,
    };
    arch.scalar_size(kind) == wire
}

/// Whether `plan`'s wire image equals its native bytes on `arch`:
/// pointer-free, every scalar already in wire layout, and the runs tile
/// each element contiguously (no padding holes). Such blocks encode and
/// decode as single byte copies.
pub(crate) fn plan_is_wire_identical(arch: &hpm_arch::Architecture, plan: &SavePlan) -> bool {
    if plan.has_pointers {
        return false;
    }
    let mut at = 0u64;
    for op in &plan.ops {
        let PlanOp::ScalarRun {
            offset,
            kind,
            count,
            stride,
        } = op
        else {
            return false;
        };
        let size = arch.scalar_size(*kind);
        if !same_wire_format(arch, *kind) || *stride != size || *offset != at {
            return false;
        }
        at = offset + count * size;
    }
    at == plan.size
}

/// Slice bound for whole-block bulk copies, so sink mode still streams
/// multi-megabyte arrays in chunks and the borrow of the address space
/// is released between flushes.
pub(crate) const BULK_SLICE: u64 = 1 << 20;

/// Counters for one collection run (§4.2: `Collect = MSRLT_search +
/// Encode_and_Copy`; search counters live in [`MsrltStats`](crate::MsrltStats)).
#[derive(Debug, Default, Clone, Copy)]
pub struct CollectStats {
    /// Memory blocks saved (MSR vertices transmitted).
    pub blocks_saved: u64,
    /// Total scalar leaves encoded.
    pub scalars_encoded: u64,
    /// Pointers encoded, by kind.
    pub ptr_null: u64,
    /// Pointers to already-visited blocks (`PTR_REF`).
    pub ptr_ref: u64,
    /// Pointers whose target was saved inline (`PTR_NEW`).
    pub ptr_new: u64,
    /// Payload bytes produced.
    pub bytes_out: u64,
    /// Chunks handed to the sink (0 when collecting monolithically).
    pub chunks_flushed: u64,
    /// Time spent in the Encode-and-Copy phase (scalar conversion).
    pub encode_time: Duration,
}

impl StatGroup for CollectStats {
    fn group(&self) -> &'static str {
        "collect"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("blocks_saved", self.blocks_saved),
            StatField::count("scalars_encoded", self.scalars_encoded),
            StatField::count("ptr_null", self.ptr_null),
            StatField::count("ptr_ref", self.ptr_ref),
            StatField::count("ptr_new", self.ptr_new),
            StatField::bytes("bytes_out", self.bytes_out),
            StatField::count("chunks_flushed", self.chunks_flushed),
            StatField::duration("encode_time", self.encode_time),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.blocks_saved += other.blocks_saved;
        self.scalars_encoded += other.scalars_encoded;
        self.ptr_null += other.ptr_null;
        self.ptr_ref += other.ptr_ref;
        self.ptr_new += other.ptr_new;
        self.bytes_out += other.bytes_out;
        self.chunks_flushed += other.chunks_flushed;
        self.encode_time += other.encode_time;
    }
}

/// A destination for flushed payload chunks during streamed collection.
pub type ChunkSink<'a> = Box<dyn FnMut(Vec<u8>) -> Result<(), CoreError> + 'a>;

struct Cursor {
    block_addr: u64,
    plan: Arc<SavePlan>,
    count: u64,
    elem_idx: u64,
    op_idx: usize,
}

/// One collection session over a process image.
///
/// Construct, issue `save_variable`/`save_pointer` calls in live-variable
/// order (innermost frame first, as the paper's §3.2 walkthrough does),
/// then [`Collector::finish`].
pub struct Collector<'a> {
    space: &'a mut AddressSpace,
    msrlt: &'a mut Msrlt,
    enc: XdrEncoder,
    stats: CollectStats,
    marks: MarkStrategy,
    mark_set: std::collections::HashSet<LogicalId>,
    fp_cache: std::collections::HashMap<TypeId, u64>,
    tracer: Tracer,
    /// Streaming sink: when set, the encoder is flushed into it whenever
    /// at least `chunk_bytes` have accumulated, so transfer can start
    /// while the DFS is still traversing.
    sink: Option<ChunkSink<'a>>,
    chunk_bytes: usize,
    flushed_bytes: u64,
    mode: TranslationMode,
    /// Flight-recorder track: each flushed chunk leaves one event, so a
    /// post-mortem names the chunk the collector was cutting when a
    /// migration died. `None` costs one branch per flush.
    flight: Option<FlightTrack>,
}

/// Cap on the collector's pre-sized encoder buffer; images beyond this
/// simply grow the vector as before.
const MAX_PRESIZE: u64 = 256 * 1024 * 1024;

impl<'a> Collector<'a> {
    /// Begin a collection: starts a fresh visit epoch.
    pub fn new(space: &'a mut AddressSpace, msrlt: &'a mut Msrlt) -> Self {
        Self::with_marks(space, msrlt, MarkStrategy::Epoch)
    }

    /// Begin a collection with an explicit mark strategy.
    pub fn with_marks(
        space: &'a mut AddressSpace,
        msrlt: &'a mut Msrlt,
        marks: MarkStrategy,
    ) -> Self {
        msrlt.begin_epoch();
        // Pre-size from the MSRLT's registered byte total: the payload is
        // dominated by the raw block bytes, plus tag/id overhead per
        // block. Kills realloc churn on linpack-sized images.
        let estimate = (msrlt.registered_bytes() + msrlt.live_count() as u64 * 40).min(MAX_PRESIZE);
        Collector {
            space,
            msrlt,
            enc: XdrEncoder::with_capacity(estimate as usize),
            stats: CollectStats::default(),
            marks,
            mark_set: std::collections::HashSet::new(),
            fp_cache: std::collections::HashMap::new(),
            tracer: Tracer::disabled(),
            sink: None,
            chunk_bytes: usize::MAX,
            flushed_bytes: 0,
            mode: TranslationMode::default(),
            flight: None,
        }
    }

    /// Attach a flight-recorder track: every flushed chunk emits a
    /// `chunk.flush` event and [`Collector::finish`] a `collect.done`.
    pub fn with_flight(mut self, flight: FlightTrack) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Select bulk or per-element scalar translation (ablation control;
    /// the two must produce bit-identical payloads).
    pub fn with_translation(mut self, mode: TranslationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Mark ids as already visited before the session starts. Parallel
    /// workers seed blocks claimed by other shards here, so their DFS
    /// makes exactly the NEW/REF decisions the sequential collector
    /// would. Only meaningful with [`MarkStrategy::HashSet`]: epoch
    /// marks live in the MSRLT and would leak across sessions.
    pub fn preseed_visited(&mut self, ids: impl IntoIterator<Item = LogicalId>) {
        debug_assert_eq!(self.marks, MarkStrategy::HashSet);
        self.mark_set.extend(ids);
    }

    /// Stream the payload through `sink` in chunks of at least
    /// `chunk_bytes` (cut at the next item boundary past the watermark,
    /// so every chunk is a whole number of XDR units). [`Collector::finish`]
    /// flushes the remainder and returns an empty vector; the
    /// concatenation of the sunk chunks is byte-identical to the
    /// monolithic payload.
    pub fn with_sink(mut self, chunk_bytes: usize, sink: ChunkSink<'a>) -> Self {
        let chunk_bytes = chunk_bytes.max(4);
        self.enc = XdrEncoder::with_capacity(chunk_bytes * 2);
        self.chunk_bytes = chunk_bytes;
        self.sink = Some(sink);
        self
    }

    /// Attach a tracer: block saves emit `collect.block` instants and
    /// every MSRLT address search becomes an `msrlt.search` span. With
    /// the default disabled tracer each site costs one branch.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// A traced MSRLT address search.
    fn lookup_addr(&mut self, addr: u64) -> Option<(LogicalId, u64)> {
        self.tracer.begin("msrlt.search");
        let r = self.msrlt.lookup_addr(addr);
        match r {
            Some((id, _)) => self.tracer.end_args(
                "msrlt.search",
                &[("group", id.group as f64), ("index", id.index as f64)],
            ),
            None => self.tracer.end_args("msrlt.search", &[("miss", 1.0)]),
        }
        r
    }

    fn fingerprint(&mut self, ty: TypeId) -> u64 {
        if let Some(&fp) = self.fp_cache.get(&ty) {
            return fp;
        }
        let fp = type_fingerprint(self.space.types(), ty);
        self.fp_cache.insert(ty, fp);
        fp
    }

    fn is_visited(&self, id: LogicalId) -> bool {
        match self.marks {
            MarkStrategy::Epoch => self.msrlt.is_visited(id),
            MarkStrategy::HashSet => self.mark_set.contains(&id),
        }
    }

    fn mark(&mut self, id: LogicalId) {
        match self.marks {
            MarkStrategy::Epoch => self.msrlt.mark_visited(id),
            MarkStrategy::HashSet => {
                self.mark_set.insert(id);
            }
        }
    }

    /// `Save_variable`: save the memory block of a live variable.
    ///
    /// `addr` must be the start address of a registered block. Emits the
    /// block's contents unless the DFS already saved it, in which case
    /// only a `VAR_VISITED` reference is emitted (the paper: "the node v7
    /// and its subsequent links and nodes have already been visited").
    pub fn save_variable(&mut self, addr: u64) -> Result<(), CoreError> {
        let (id, off) = self
            .lookup_addr(addr)
            .ok_or(CoreError::UnregisteredPointer(addr))?;
        if off != 0 {
            return Err(CoreError::SequenceMismatch(format!(
                "save_variable at interior address {addr:#x}"
            )));
        }
        if self.is_visited(id) {
            self.enc.put_u32(TAG_VAR_VISITED);
            put_id(&mut self.enc, id);
            return self.maybe_flush();
        }
        self.mark(id);
        let entry = self.msrlt.entry(id).unwrap();
        let (ty, count) = (entry.ty, entry.count);
        self.enc.put_u32(TAG_VAR_NEW);
        put_id(&mut self.enc, id);
        let fp = self.fingerprint(ty);
        self.enc.put_u64(fp);
        self.enc.put_u64(count);
        self.emit_block(addr, ty, count)?;
        self.maybe_flush()
    }

    /// `Save_pointer`: save a pointer *value*, rewriting it to logical
    /// form and saving the target block graph if not yet visited.
    pub fn save_pointer(&mut self, ptr: u64) -> Result<(), CoreError> {
        let mut stack = Vec::new();
        self.encode_pointer(ptr, &mut stack)?;
        self.drain(stack)
    }

    /// Finish, returning the payload and the statistics. In sink mode
    /// the remainder is flushed and the returned payload is empty (every
    /// byte went through the sink); `bytes_out` counts the total either
    /// way.
    pub fn finish(mut self) -> (Vec<u8>, CollectStats) {
        if let Some(sink) = self.sink.as_mut() {
            if !self.enc.is_empty() {
                let bytes = std::mem::take(&mut self.enc).into_bytes();
                self.flushed_bytes += bytes.len() as u64;
                self.stats.chunks_flushed += 1;
                if let Some(t) = &self.flight {
                    t.event(
                        "chunk.flush",
                        &[
                            ("chunk", self.stats.chunks_flushed - 1),
                            ("bytes", bytes.len() as u64),
                        ],
                    );
                }
                // The stream is complete; a sink failure here cannot be
                // surfaced through the historical signature, so drop it —
                // the receiver detects the missing tail as truncation.
                let _ = sink(bytes);
            }
            let mut stats = self.stats;
            stats.bytes_out = self.flushed_bytes;
            if let Some(t) = &self.flight {
                t.event(
                    "collect.done",
                    &[("bytes", stats.bytes_out), ("chunks", stats.chunks_flushed)],
                );
            }
            return (Vec::new(), stats);
        }
        let mut stats = self.stats;
        let bytes = self.enc.into_bytes();
        stats.bytes_out = bytes.len() as u64;
        if let Some(t) = &self.flight {
            t.event("collect.done", &[("bytes", stats.bytes_out), ("chunks", 0)]);
        }
        (bytes, stats)
    }

    /// Payload bytes produced so far (flushed chunks included).
    pub fn bytes_so_far(&self) -> usize {
        self.flushed_bytes as usize + self.enc.len()
    }

    /// The `bytes_so_far()` watermark check: flush a chunk to the sink
    /// once enough has accumulated. One branch when no sink is attached.
    fn maybe_flush(&mut self) -> Result<(), CoreError> {
        if self.enc.len() < self.chunk_bytes {
            return Ok(());
        }
        if let Some(sink) = self.sink.as_mut() {
            flush_now(
                &mut self.enc,
                sink,
                self.chunk_bytes,
                &mut self.flushed_bytes,
                &mut self.stats,
                &self.flight,
            )?;
        }
        Ok(())
    }

    // ----- internals -----

    fn emit_block(&mut self, addr: u64, ty: TypeId, count: u64) -> Result<(), CoreError> {
        self.stats.blocks_saved += 1;
        self.tracer
            .instant_args("collect.block", &[("count", count as f64)]);
        let plan = self.space.plan_for(ty)?;
        if !plan.has_pointers {
            return self.encode_block_bulk(addr, &plan, count);
        }
        self.drain(vec![Cursor {
            block_addr: addr,
            plan,
            count,
            elem_idx: 0,
            op_idx: 0,
        }])
    }

    /// Fast path for pointer-free blocks (the linpack case): one address
    /// resolution and one timing probe for the whole block, then a tight
    /// native→XDR loop. This is what makes Encode-and-Copy the dominant
    /// linpack term rather than per-element bookkeeping.
    fn encode_block_bulk(
        &mut self,
        addr: u64,
        plan: &hpm_types::plan::SavePlan,
        count: u64,
    ) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let total = plan.size * count;
        let arch = self.space.arch().clone();
        // Whole-block fast path: when the block's wire image IS its
        // native bytes, copy it in bounded slices — one memcpy per
        // megabyte instead of a decode/encode per scalar.
        if self.mode == TranslationMode::Bulk && plan_is_wire_identical(&arch, plan) {
            let per_elem: u64 = plan
                .ops
                .iter()
                .map(|op| match op {
                    PlanOp::ScalarRun { count, .. } => *count,
                    _ => 0,
                })
                .sum();
            let mut off = 0u64;
            while off < total {
                let len = (total - off).min(BULK_SLICE);
                let bytes = self.space.read_bytes(addr + off, len)?;
                self.enc.put_opaque_fixed(bytes);
                off += len;
                if self.enc.len() >= self.chunk_bytes {
                    if let Some(sink) = self.sink.as_mut() {
                        flush_now(
                            &mut self.enc,
                            sink,
                            self.chunk_bytes,
                            &mut self.flushed_bytes,
                            &mut self.stats,
                            &self.flight,
                        )?;
                    }
                }
            }
            self.stats.scalars_encoded += per_elem * count;
            self.stats.encode_time += t0.elapsed();
            return Ok(());
        }
        let bytes = self.space.read_bytes(addr, total)?;
        let mut scalars = 0u64;
        for elem in 0..count {
            let elem_base = (elem * plan.size) as usize;
            for op in &plan.ops {
                let PlanOp::ScalarRun {
                    offset,
                    kind,
                    count: rc,
                    stride,
                } = op
                else {
                    unreachable!("bulk path requires a pointer-free plan");
                };
                let size = arch.scalar_size(*kind) as usize;
                if self.mode == TranslationMode::Bulk
                    && same_wire_format(&arch, *kind)
                    && *stride == size as u64
                {
                    // Contiguous same-format run inside a padded or
                    // mixed-format element: one copy for the run.
                    let at = elem_base + *offset as usize;
                    self.enc
                        .put_opaque_fixed(&bytes[at..at + (*rc as usize) * size]);
                } else {
                    for k in 0..*rc {
                        let at = elem_base + (*offset + k * *stride) as usize;
                        let v = arch.decode_scalar(*kind, &bytes[at..at + size]);
                        put_scalar_xdr(&mut self.enc, *kind, v);
                    }
                }
                scalars += *rc;
            }
            // Per-element watermark check: a single huge pointer-free
            // block (linpack's matrix) must still stream in chunks.
            // Split-field flush: `bytes` above borrows the space.
            if self.enc.len() >= self.chunk_bytes {
                if let Some(sink) = self.sink.as_mut() {
                    flush_now(
                        &mut self.enc,
                        sink,
                        self.chunk_bytes,
                        &mut self.flushed_bytes,
                        &mut self.stats,
                        &self.flight,
                    )?;
                }
            }
        }
        self.stats.scalars_encoded += scalars;
        self.stats.encode_time += t0.elapsed();
        Ok(())
    }

    fn drain(&mut self, mut stack: Vec<Cursor>) -> Result<(), CoreError> {
        loop {
            // Take the next op from the top cursor; borrow of `stack`
            // ends with this block so pointer handling can push onto it.
            let next = match stack.last_mut() {
                None => break,
                Some(cur) => {
                    if cur.elem_idx >= cur.count {
                        stack.pop();
                        continue;
                    }
                    if cur.op_idx >= cur.plan.ops.len() {
                        cur.elem_idx += 1;
                        cur.op_idx = 0;
                        continue;
                    }
                    let elem_base = cur.elem_idx * cur.plan.size;
                    let op = cur.plan.ops[cur.op_idx].clone();
                    cur.op_idx += 1;
                    (cur.block_addr, elem_base, op)
                }
            };
            let (block_addr, elem_base, op) = next;
            match op {
                PlanOp::ScalarRun {
                    offset,
                    kind,
                    count,
                    stride,
                } => {
                    self.encode_run(block_addr, elem_base + offset, kind, count, stride)?;
                }
                PlanOp::PointerSlot { offset, .. } => {
                    let ptr = self.read_ptr(block_addr, elem_base + offset)?;
                    self.encode_pointer(ptr, &mut stack)?;
                }
            }
            self.maybe_flush()?;
        }
        Ok(())
    }

    fn read_ptr(&mut self, block_addr: u64, offset: u64) -> Result<u64, CoreError> {
        let size = self.space.arch().pointer_size;
        let bytes = self.space.read_bytes(block_addr + offset, size)?;
        Ok(self
            .space
            .arch()
            .decode_scalar(CScalar::Ptr, bytes)
            .as_ptr())
    }

    fn encode_run(
        &mut self,
        block_addr: u64,
        offset: u64,
        kind: CScalar,
        count: u64,
        stride: u64,
    ) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let arch = self.space.arch().clone();
        let size = arch.scalar_size(kind) as usize;
        let total_span = if count == 0 {
            0
        } else {
            (count - 1) * stride + size as u64
        };
        let bytes = self.space.read_bytes(block_addr + offset, total_span)?;
        if self.mode == TranslationMode::Bulk
            && same_wire_format(&arch, kind)
            && stride == size as u64
        {
            self.enc.put_opaque_fixed(&bytes[..total_span as usize]);
        } else {
            for k in 0..count {
                let at = (k * stride) as usize;
                let v = arch.decode_scalar(kind, &bytes[at..at + size]);
                put_scalar_xdr(&mut self.enc, kind, v);
                if self.enc.len() >= self.chunk_bytes {
                    if let Some(sink) = self.sink.as_mut() {
                        flush_now(
                            &mut self.enc,
                            sink,
                            self.chunk_bytes,
                            &mut self.flushed_bytes,
                            &mut self.stats,
                            &self.flight,
                        )?;
                    }
                }
            }
        }
        self.stats.scalars_encoded += count;
        self.stats.encode_time += t0.elapsed();
        Ok(())
    }

    fn encode_pointer(&mut self, ptr: u64, stack: &mut Vec<Cursor>) -> Result<(), CoreError> {
        if ptr == 0 {
            self.stats.ptr_null += 1;
            self.enc.put_u32(TAG_PTR_NULL);
            return Ok(());
        }
        // THE MSRLT search (counted, timed in MsrltStats).
        let (id, _byte_off) = self
            .lookup_addr(ptr)
            .ok_or(CoreError::UnregisteredPointer(ptr))?;
        // Element ordinal of the pointed-to leaf within the target block.
        let (leaf_idx, _) = self.space.leaf_at_addr(ptr)?;
        if self.is_visited(id) {
            self.stats.ptr_ref += 1;
            self.enc.put_u32(TAG_PTR_REF);
            put_id(&mut self.enc, id);
            self.enc.put_u64(leaf_idx);
            return Ok(());
        }
        self.mark(id);
        self.stats.ptr_new += 1;
        self.stats.blocks_saved += 1;
        let entry = self.msrlt.entry(id).unwrap();
        self.tracer
            .instant_args("collect.block", &[("count", entry.count as f64)]);
        let (ty, count, target_addr) = (entry.ty, entry.count, entry.addr);
        self.enc.put_u32(TAG_PTR_NEW);
        put_id(&mut self.enc, id);
        self.enc.put_u64(leaf_idx);
        let fp = self.fingerprint(ty);
        self.enc.put_u64(fp);
        self.enc.put_u64(count);
        let plan = self.space.plan_for(ty)?;
        if !plan.has_pointers {
            self.encode_block_bulk(target_addr, &plan, count)?;
        } else {
            stack.push(Cursor {
                block_addr: target_addr,
                plan,
                count,
                elem_idx: 0,
                op_idx: 0,
            });
        }
        Ok(())
    }
}

/// Hand the encoder's contents to the sink as one chunk. Free-standing
/// over split fields so flush checks can sit inside loops that hold a
/// borrow of the address space.
fn flush_now(
    enc: &mut XdrEncoder,
    sink: &mut ChunkSink<'_>,
    chunk_bytes: usize,
    flushed_bytes: &mut u64,
    stats: &mut CollectStats,
    flight: &Option<FlightTrack>,
) -> Result<(), CoreError> {
    let bytes = std::mem::replace(enc, XdrEncoder::with_capacity(chunk_bytes * 2)).into_bytes();
    *flushed_bytes += bytes.len() as u64;
    stats.chunks_flushed += 1;
    if let Some(t) = flight {
        t.event(
            "chunk.flush",
            &[
                ("chunk", stats.chunks_flushed - 1),
                ("bytes", bytes.len() as u64),
            ],
        );
    }
    sink(bytes)
}

pub(crate) fn put_id(enc: &mut XdrEncoder, id: LogicalId) {
    enc.put_u32(id.group);
    enc.put_u32(id.index);
}

/// Encode one scalar in its machine-independent XDR form.
pub(crate) fn put_scalar_xdr(enc: &mut XdrEncoder, kind: CScalar, v: hpm_arch::ScalarValue) {
    use hpm_arch::XdrForm;
    match kind.xdr_form() {
        XdrForm::Int => enc.put_i32(v.as_i64() as i32),
        XdrForm::UInt => enc.put_u32(v.as_i64() as u32),
        XdrForm::Hyper => enc.put_i64(v.as_i64()),
        XdrForm::UHyper => enc.put_u64(v.as_i64() as u64),
        XdrForm::Float => enc.put_f32(match v {
            hpm_arch::ScalarValue::F32(f) => f,
            other => other.as_f64() as f32,
        }),
        XdrForm::Double => enc.put_f64(v.as_f64()),
        XdrForm::LogicalPointer => unreachable!("pointers use PTR_* tags"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_types::Field;

    fn setup() -> (AddressSpace, Msrlt) {
        (AddressSpace::new(Architecture::dec5000()), Msrlt::new())
    }

    fn register(space: &AddressSpace, msrlt: &mut Msrlt, addr: u64) -> LogicalId {
        let info = space.info_at(addr).expect("block exists");
        msrlt.register(&info)
    }

    #[test]
    fn save_scalar_global() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let g = space.define_global("x", int, 1).unwrap();
        space.store_int(g, -42).unwrap();
        register(&space, &mut msrlt, g);
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_variable(g).unwrap();
        let (bytes, stats) = c.finish();
        assert_eq!(stats.blocks_saved, 1);
        assert_eq!(stats.scalars_encoded, 1);
        // TAG_VAR_NEW + id(8) + fp(8) + count(8) + int(4)
        assert_eq!(bytes.len(), 4 + 8 + 8 + 8 + 4);
        // Payload int is XDR -42 at the tail.
        assert_eq!(&bytes[bytes.len() - 4..], (-42i32).to_be_bytes());
    }

    #[test]
    fn second_save_emits_visited() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let g = space.define_global("x", int, 1).unwrap();
        register(&space, &mut msrlt, g);
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_variable(g).unwrap();
        let len1 = c.bytes_so_far();
        c.save_variable(g).unwrap();
        let (bytes, stats) = c.finish();
        assert_eq!(stats.blocks_saved, 1, "no duplicate save");
        assert_eq!(bytes.len() - len1, 4 + 8, "VAR_VISITED is tag + id only");
    }

    #[test]
    fn null_pointer_encodes_null_tag() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let g = space.define_global("p", pi, 1).unwrap();
        register(&space, &mut msrlt, g);
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_variable(g).unwrap();
        let (_, stats) = c.finish();
        assert_eq!(stats.ptr_null, 1);
        assert_eq!(stats.ptr_new, 0);
    }

    #[test]
    fn pointer_chase_saves_target_once() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        // int a; int *b = &a; int *c = &a;
        let a = space.define_global("a", int, 1).unwrap();
        let b = space.define_global("b", pi, 1).unwrap();
        let cc = space.define_global("c", pi, 1).unwrap();
        space.store_int(a, 7).unwrap();
        space.store_ptr(b, a).unwrap();
        space.store_ptr(cc, a).unwrap();
        for addr in [a, b, cc] {
            register(&space, &mut msrlt, addr);
        }
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_variable(b).unwrap();
        c.save_variable(cc).unwrap();
        c.save_variable(a).unwrap();
        let (_, stats) = c.finish();
        assert_eq!(stats.blocks_saved, 3, "a saved once (inline), b, c");
        assert_eq!(stats.ptr_new, 1, "first pointer inlines a");
        assert_eq!(stats.ptr_ref, 1, "second pointer references a");
    }

    #[test]
    fn cycle_terminates() {
        let (mut space, mut msrlt) = setup();
        let node = space.types_mut().declare_struct("node");
        let pnode = space.types_mut().pointer_to(node);
        let fl = space.types_mut().float();
        space
            .types_mut()
            .define_struct(
                node,
                vec![Field::new("data", fl), Field::new("link", pnode)],
            )
            .unwrap();
        let n1 = space.malloc(node, 1).unwrap();
        let n2 = space.malloc(node, 1).unwrap();
        // n1 → n2 → n1 (cycle)
        let l1 = space.elem_addr(n1, 1).unwrap();
        let l2 = space.elem_addr(n2, 1).unwrap();
        space.store_ptr(l1, n2).unwrap();
        space.store_ptr(l2, n1).unwrap();
        register(&space, &mut msrlt, n1);
        register(&space, &mut msrlt, n2);
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_pointer(n1).unwrap();
        let (_, stats) = c.finish();
        assert_eq!(stats.blocks_saved, 2);
        assert_eq!(stats.ptr_new, 2);
        assert_eq!(stats.ptr_ref, 1, "back-edge to n1");
    }

    #[test]
    fn deep_list_does_not_overflow() {
        let (mut space, mut msrlt) = setup();
        let node = space.types_mut().declare_struct("cell");
        let pnode = space.types_mut().pointer_to(node);
        let int = space.types_mut().int();
        space
            .types_mut()
            .define_struct(node, vec![Field::new("v", int), Field::new("next", pnode)])
            .unwrap();
        const N: usize = 60_000;
        let mut prev = 0u64;
        let mut head = 0u64;
        for i in 0..N {
            let n = space.malloc(node, 1).unwrap();
            register(&space, &mut msrlt, n);
            let v = space.elem_addr(n, 0).unwrap();
            space.store_int(v, i as i64).unwrap();
            if prev != 0 {
                let next = space.elem_addr(prev, 1).unwrap();
                space.store_ptr(next, n).unwrap();
            } else {
                head = n;
            }
            prev = n;
        }
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_pointer(head).unwrap();
        let (_, stats) = c.finish();
        assert_eq!(stats.blocks_saved, N as u64);
    }

    #[test]
    fn dangling_pointer_detected() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let p = space.define_global("p", pi, 1).unwrap();
        register(&space, &mut msrlt, p);
        // Point into unregistered memory.
        space.store_ptr(p, 0x1234_5678).unwrap();
        let mut c = Collector::new(&mut space, &mut msrlt);
        assert!(matches!(
            c.save_variable(p),
            Err(CoreError::UnregisteredPointer(0x1234_5678))
        ));
    }

    #[test]
    fn interior_pointer_offset_is_leaf_ordinal() {
        let (mut space, mut msrlt) = setup();
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let arr = space.define_global("arr", int, 10).unwrap();
        let p = space.define_global("p", pi, 1).unwrap();
        let target = space.elem_addr(arr, 7).unwrap();
        space.store_ptr(p, target).unwrap();
        register(&space, &mut msrlt, arr);
        register(&space, &mut msrlt, p);
        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_variable(p).unwrap();
        let (bytes, _) = c.finish();
        // Find the PTR_NEW tag and check the offset field == 7.
        // Layout: VAR_NEW(4) id(8) fp(8) count(8) | PTR_NEW(4) id(8) off(8) ...
        let off = u64::from_be_bytes(bytes[40..48].try_into().unwrap());
        assert_eq!(
            u32::from_be_bytes(bytes[28..32].try_into().unwrap()),
            TAG_PTR_NEW
        );
        assert_eq!(off, 7);
    }

    #[test]
    fn sink_chunks_concat_to_monolithic_payload() {
        // Build a list long enough to span many chunks, collect it once
        // monolithically and once through a tiny-chunk sink: the
        // concatenation must be byte-identical (the streaming guarantee).
        let (mut space, mut msrlt) = setup();
        let node = space.types_mut().declare_struct("cell");
        let pnode = space.types_mut().pointer_to(node);
        let int = space.types_mut().int();
        space
            .types_mut()
            .define_struct(node, vec![Field::new("v", int), Field::new("next", pnode)])
            .unwrap();
        let mut prev = 0u64;
        let mut head = 0u64;
        for i in 0..300 {
            let n = space.malloc(node, 1).unwrap();
            register(&space, &mut msrlt, n);
            let v = space.elem_addr(n, 0).unwrap();
            space.store_int(v, i).unwrap();
            if prev != 0 {
                let next = space.elem_addr(prev, 1).unwrap();
                space.store_ptr(next, n).unwrap();
            } else {
                head = n;
            }
            prev = n;
        }

        let mut c = Collector::new(&mut space, &mut msrlt);
        c.save_pointer(head).unwrap();
        let (mono, mono_stats) = c.finish();

        let mut chunks: Vec<Vec<u8>> = Vec::new();
        {
            let sink_chunks = std::cell::RefCell::new(&mut chunks);
            let mut c = Collector::new(&mut space, &mut msrlt).with_sink(
                64,
                Box::new(|b| {
                    sink_chunks.borrow_mut().push(b);
                    Ok(())
                }),
            );
            c.save_pointer(head).unwrap();
            assert!(c.bytes_so_far() > 0);
            let (tail, stats) = c.finish();
            assert!(tail.is_empty(), "sink mode returns no payload");
            assert_eq!(stats.bytes_out, mono.len() as u64);
            assert!(stats.chunks_flushed > 1, "{stats:?}");
            assert_eq!(stats.chunks_flushed as usize, sink_chunks.borrow().len());
        }
        let streamed: Vec<u8> = chunks.concat();
        assert_eq!(streamed, mono, "chunk concatenation != monolithic image");
        assert!(
            chunks.iter().all(|c| c.len() % 4 == 0),
            "chunks cut at XDR unit boundaries"
        );
        assert_eq!(mono_stats.chunks_flushed, 0);
    }

    #[test]
    fn hashset_marks_agree_with_epoch() {
        for marks in [MarkStrategy::Epoch, MarkStrategy::HashSet] {
            let (mut space, mut msrlt) = setup();
            let int = space.types_mut().int();
            let pi = space.types_mut().pointer_to(int);
            let a = space.define_global("a", int, 1).unwrap();
            let b = space.define_global("b", pi, 1).unwrap();
            space.store_ptr(b, a).unwrap();
            register(&space, &mut msrlt, a);
            register(&space, &mut msrlt, b);
            let mut c = Collector::with_marks(&mut space, &mut msrlt, marks);
            c.save_variable(b).unwrap();
            c.save_variable(a).unwrap();
            let (_, stats) = c.finish();
            assert_eq!(stats.blocks_saved, 2, "strategy {marks:?}");
        }
    }
}
