//! The MSR Lookup Table (MSRLT).
//!
//! §3.1: "At runtime, the MSRLT data structure is created in process
//! memory space to keep track of memory blocks. It also provides
//! machine-independent identification to the memory blocks and supports
//! memory block search during data collection and restoration operations.
//! The MSRLT works as a mapping table which supports address translation
//! between the machine-specific and machine-independent memory address."
//!
//! Logical identification is a `(group, index)` pair:
//!
//! * group 0 — global variables, indexed in definition order;
//! * group 1 — heap blocks, indexed in allocation order;
//! * group `2 + d` — locals of the stack frame at depth `d`, indexed in
//!   declaration order.
//!
//! Because the migrating program and the destination program are the same
//! executable, both sides assign identical ids to the same source-level
//! entities — the property the paper relies on to match blocks across
//! machines.
//!
//! Address→id lookup is the instrumented search whose cost appears in the
//! paper's collection complexity (`O(n log n)` over `n` blocks); id→entry
//! lookup is `O(1)` indexing, which is why restoration's MSRLT term is
//! only `O(n)`. Both strategies of the §4.2 ablation are provided
//! ([`SearchStrategy::Binary`] and [`SearchStrategy::Linear`]).

use hpm_arch::SegmentKind;
use hpm_memory::BlockInfo;
use hpm_obs::{StatField, StatGroup};
use hpm_types::TypeId;
use std::time::{Duration, Instant};

/// Group number of the global-variable group.
pub const GROUP_GLOBAL: u32 = 0;
/// Group number of the heap group.
pub const GROUP_HEAP: u32 = 1;

/// Slots in the direct-mapped address→id translation cache. Small on
/// purpose: it fronts the binary search the way a TLB fronts a page
/// walk, and pointer-heavy workloads re-resolve a working set far
/// smaller than the table.
const CACHE_SLOTS: usize = 64;

/// Group number for the stack frame at `depth`.
pub fn frame_group(depth: u32) -> u32 {
    2 + depth
}

/// Machine-independent identification of a memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalId {
    /// The MSRLT group.
    pub group: u32,
    /// The index within the group.
    pub index: u32,
}

impl std::fmt::Display for LogicalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.group, self.index)
    }
}

/// One MSRLT entry: a live memory block's identification and location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrltEntry {
    /// Logical identification.
    pub id: LogicalId,
    /// Machine-specific start address.
    pub addr: u64,
    /// Block size in bytes on this machine.
    pub size: u64,
    /// Element type.
    pub ty: TypeId,
    /// Element count.
    pub count: u64,
    visited_epoch: u64,
}

/// How address→block search is implemented (§4.2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Binary search over a sorted address index — `O(log n)` per search,
    /// the design the paper's complexity model assumes.
    #[default]
    Binary,
    /// Linear scan — `O(n)` per search; the naive baseline.
    Linear,
}

/// Instrumentation counters, feeding the §4.2 complexity experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct MsrltStats {
    /// Blocks registered (the "MSRLT update" operations).
    pub registrations: u64,
    /// Blocks unregistered (free / frame pop).
    pub unregistrations: u64,
    /// Address→block searches performed.
    pub searches: u64,
    /// Total comparison steps across all searches.
    pub search_steps: u64,
    /// id→entry lookups (O(1) each).
    pub id_lookups: u64,
    /// Searches answered by the translation cache (no comparison steps).
    pub cache_hits: u64,
    /// Searches that fell through the cache to the configured strategy.
    pub cache_misses: u64,
    /// Wall time spent registering.
    pub register_time: Duration,
    /// Wall time spent searching.
    pub search_time: Duration,
}

impl MsrltStats {
    /// Fraction of searches served by the translation cache, in [0, 1].
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl StatGroup for MsrltStats {
    fn group(&self) -> &'static str {
        "msrlt"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("registrations", self.registrations),
            StatField::count("unregistrations", self.unregistrations),
            StatField::count("searches", self.searches),
            StatField::count("search_steps", self.search_steps),
            StatField::count("id_lookups", self.id_lookups),
            StatField::count("cache_hits", self.cache_hits),
            StatField::count("cache_misses", self.cache_misses),
            StatField::ratio("cache_hit_rate", self.cache_hit_rate()),
            StatField::duration("register_time", self.register_time),
            StatField::duration("search_time", self.search_time),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.registrations += other.registrations;
        self.unregistrations += other.unregistrations;
        self.searches += other.searches;
        self.search_steps += other.search_steps;
        self.id_lookups += other.id_lookups;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.register_time += other.register_time;
        self.search_time += other.search_time;
    }
}

/// The MSR Lookup Table.
#[derive(Debug, Clone)]
pub struct Msrlt {
    /// `groups[g][i]` is the entry with id `(g, i)`; `None` for ids that
    /// are dead (freed) or not yet seen on this side.
    groups: Vec<Vec<Option<MsrltEntry>>>,
    /// Sorted by block start address.
    by_addr: Vec<(u64, LogicalId)>,
    /// Live frame groups (innermost last).
    frame_stack: Vec<u32>,
    strategy: SearchStrategy,
    epoch: u64,
    stats: MsrltStats,
    /// Total bytes of live registered blocks (collector pre-sizing hint).
    live_bytes: u64,
    /// Id of the most recently resolved block; checked first on every
    /// search. Hits are validated against the live table, so stale
    /// entries simply miss — no invalidation traffic.
    cache_last: Option<LogicalId>,
    /// Direct-mapped exact-address cache behind the last-hit check.
    cache_slots: Vec<Option<(u64, LogicalId)>>,
    cache_enabled: bool,
}

impl Default for Msrlt {
    fn default() -> Self {
        Self::new()
    }
}

impl Msrlt {
    /// New table with the global and heap groups ready.
    pub fn new() -> Self {
        Msrlt::with_strategy(SearchStrategy::Binary)
    }

    /// New table using the given search strategy. The translation cache
    /// fronts [`SearchStrategy::Binary`] by default; the linear baseline
    /// stays pure so the §4.2 ablation measures the raw scan.
    pub fn with_strategy(strategy: SearchStrategy) -> Self {
        Msrlt {
            groups: vec![Vec::new(), Vec::new()],
            by_addr: Vec::new(),
            frame_stack: Vec::new(),
            strategy,
            epoch: 1,
            stats: MsrltStats::default(),
            live_bytes: 0,
            cache_last: None,
            cache_slots: vec![None; CACHE_SLOTS],
            cache_enabled: matches!(strategy, SearchStrategy::Binary),
        }
    }

    /// Enable or disable the translation cache (ablation control).
    /// Disabling drops all cached translations.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache_last = None;
            self.cache_slots = vec![None; CACHE_SLOTS];
        }
    }

    /// Whether the translation cache is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Instrumentation counters so far.
    pub fn stats(&self) -> MsrltStats {
        self.stats
    }

    /// Zero the counters (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = MsrltStats::default();
    }

    /// Number of live entries.
    pub fn live_count(&self) -> usize {
        self.by_addr.len()
    }

    /// Begin tracking a new stack frame; returns its group.
    pub fn begin_frame(&mut self) -> u32 {
        let g = frame_group(self.frame_stack.len() as u32);
        self.frame_stack.push(g);
        if self.groups.len() <= g as usize {
            self.groups.resize_with(g as usize + 1, Vec::new);
        }
        self.groups[g as usize].clear();
        g
    }

    /// Stop tracking the innermost frame, dropping its entries.
    pub fn end_frame(&mut self) {
        let g = self.frame_stack.pop().expect("end_frame with no frame");
        let dead: Vec<u64> = self.groups[g as usize]
            .iter()
            .flatten()
            .map(|e| e.addr)
            .collect();
        for addr in dead {
            self.remove_addr(addr);
        }
        self.groups[g as usize].clear();
    }

    /// Depth of the live frame stack.
    pub fn frame_depth(&self) -> usize {
        self.frame_stack.len()
    }

    /// Register a block, assigning the next index in the group implied by
    /// its segment (globals → 0, heap → 1, stack → innermost frame).
    pub fn register(&mut self, info: &BlockInfo) -> LogicalId {
        let group = match info.segment {
            SegmentKind::Global => GROUP_GLOBAL,
            SegmentKind::Heap => GROUP_HEAP,
            SegmentKind::Stack => *self
                .frame_stack
                .last()
                .expect("stack block registered with no live frame"),
        };
        let index = self.groups[group as usize].len() as u32;
        let id = LogicalId { group, index };
        self.register_at(id, info.addr, info.size, info.ty, info.count);
        id
    }

    /// Register a block under an explicit id (used on the destination,
    /// where the stream dictates heap ids).
    pub fn register_at(&mut self, id: LogicalId, addr: u64, size: u64, ty: TypeId, count: u64) {
        let t0 = Instant::now();
        if self.groups.len() <= id.group as usize {
            self.groups.resize_with(id.group as usize + 1, Vec::new);
        }
        let g = &mut self.groups[id.group as usize];
        if g.len() <= id.index as usize {
            g.resize(id.index as usize + 1, None);
        }
        debug_assert!(
            g[id.index as usize].is_none(),
            "duplicate registration of {id}"
        );
        g[id.index as usize] = Some(MsrltEntry {
            id,
            addr,
            size,
            ty,
            count,
            visited_epoch: 0,
        });
        let pos = self.by_addr.partition_point(|&(a, _)| a < addr);
        self.by_addr.insert(pos, (addr, id));
        self.live_bytes += size;
        self.stats.registrations += 1;
        self.stats.register_time += t0.elapsed();
    }

    /// Total bytes of currently registered live blocks — the collector
    /// uses this to pre-size its encoder, since the payload is dominated
    /// by the raw bytes of the blocks it will emit.
    pub fn registered_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Reserve heap indices `0..n`: future [`Msrlt::register`] calls for
    /// heap blocks assign indices ≥ `n`. Used on the destination so that
    /// blocks allocated by resumed execution never collide with source
    /// heap ids still pending in un-restored stream sections.
    pub fn reserve_heap_indices(&mut self, n: u32) {
        let g = &mut self.groups[GROUP_HEAP as usize];
        if g.len() < n as usize {
            g.resize(n as usize, None);
        }
    }

    /// Current length of the heap group (the source-side high-water mark
    /// carried in the execution state).
    pub fn heap_len(&self) -> u32 {
        self.groups[GROUP_HEAP as usize].len() as u32
    }

    /// Drop the entry for the block starting at `addr` (heap `free`).
    pub fn unregister(&mut self, addr: u64) -> Option<LogicalId> {
        let id = self.remove_addr(addr)?;
        self.groups[id.group as usize][id.index as usize] = None;
        self.stats.unregistrations += 1;
        Some(id)
    }

    fn remove_addr(&mut self, addr: u64) -> Option<LogicalId> {
        let pos = self.by_addr.partition_point(|&(a, _)| a < addr);
        if pos < self.by_addr.len() && self.by_addr[pos].0 == addr {
            let id = self.by_addr.remove(pos).1;
            if let Some(e) = self.groups[id.group as usize][id.index as usize].as_ref() {
                self.live_bytes -= e.size;
            }
            Some(id)
        } else {
            None
        }
    }

    /// Cache slot for a probe address. Addresses are at least word
    /// aligned, so drop the low bits before mixing.
    fn cache_slot(addr: u64) -> usize {
        (((addr >> 2) ^ (addr >> 8)) as usize) & (CACHE_SLOTS - 1)
    }

    /// Validate a cached id against the live table: a hit is real only
    /// if the block still exists and contains `addr`. Live blocks are
    /// disjoint, so a validated hit equals the strategy-search result.
    fn cache_validate(&self, id: LogicalId, addr: u64) -> Option<(LogicalId, u64)> {
        let e = self
            .groups
            .get(id.group as usize)?
            .get(id.index as usize)?
            .as_ref()?;
        if addr >= e.addr && addr < e.addr + e.size {
            Some((id, addr - e.addr))
        } else {
            None
        }
    }

    /// Probe the last-hit entry, then the direct-mapped slot.
    fn cache_probe(&self, addr: u64) -> Option<(LogicalId, u64)> {
        if let Some(id) = self.cache_last {
            if let Some(hit) = self.cache_validate(id, addr) {
                return Some(hit);
            }
        }
        match self.cache_slots[Self::cache_slot(addr)] {
            Some((a, id)) if a == addr => self.cache_validate(id, addr),
            _ => None,
        }
    }

    /// *The* MSRLT search: find the block containing `addr`, returning its
    /// id and the byte offset of `addr` within it. Counts comparisons.
    pub fn lookup_addr(&mut self, addr: u64) -> Option<(LogicalId, u64)> {
        let t0 = Instant::now();
        self.stats.searches += 1;
        if self.cache_enabled {
            if let Some(hit) = self.cache_probe(addr) {
                self.stats.cache_hits += 1;
                self.cache_last = Some(hit.0);
                self.stats.search_time += t0.elapsed();
                return Some(hit);
            }
            self.stats.cache_misses += 1;
        }
        let found = match self.strategy {
            SearchStrategy::Binary => {
                let mut lo = 0usize;
                let mut hi = self.by_addr.len();
                while lo < hi {
                    self.stats.search_steps += 1;
                    let mid = (lo + hi) / 2;
                    if self.by_addr[mid].0 <= addr {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                lo.checked_sub(1).map(|i| self.by_addr[i].1)
            }
            SearchStrategy::Linear => {
                let mut best: Option<(u64, LogicalId)> = None;
                for &(a, id) in &self.by_addr {
                    self.stats.search_steps += 1;
                    if a <= addr && best.map(|(ba, _)| a > ba).unwrap_or(true) {
                        best = Some((a, id));
                    }
                }
                best.map(|(_, id)| id)
            }
        };
        let result = found.and_then(|id| {
            let e = self.entry(id)?;
            if addr >= e.addr && addr < e.addr + e.size {
                Some((id, addr - e.addr))
            } else {
                None
            }
        });
        if self.cache_enabled {
            if let Some((id, _)) = result {
                self.cache_last = Some(id);
                self.cache_slots[Self::cache_slot(addr)] = Some((addr, id));
            }
        }
        self.stats.search_time += t0.elapsed();
        result
    }

    /// O(1) id→entry translation (the restoration-side operation).
    pub fn entry(&self, id: LogicalId) -> Option<&MsrltEntry> {
        self.stats_id_lookup();
        self.groups
            .get(id.group as usize)?
            .get(id.index as usize)?
            .as_ref()
    }

    // `entry` takes &self for ergonomics; count id lookups with interior
    // mutability-free approximation: promoted to a method on &mut in hot
    // paths. Cold callers go through this no-op.
    fn stats_id_lookup(&self) {}

    /// Counted variant of [`Msrlt::entry`] for instrumented paths.
    pub fn entry_counted(&mut self, id: LogicalId) -> Option<&MsrltEntry> {
        self.stats.id_lookups += 1;
        self.groups
            .get(id.group as usize)?
            .get(id.index as usize)?
            .as_ref()
    }

    /// All live entries, unordered.
    pub fn live_entries(&self) -> impl Iterator<Item = &MsrltEntry> {
        self.by_addr
            .iter()
            .filter_map(|(_, id)| self.groups[id.group as usize][id.index as usize].as_ref())
    }

    // ----- visit marking (collection-time DFS) -----

    /// Start a new collection: invalidates all visit marks in O(1).
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Mark the block visited in the current epoch.
    pub fn mark_visited(&mut self, id: LogicalId) {
        let epoch = self.epoch;
        if let Some(e) = self.groups[id.group as usize][id.index as usize].as_mut() {
            e.visited_epoch = epoch;
        }
    }

    /// Whether the block was visited in the current epoch.
    pub fn is_visited(&self, id: LogicalId) -> bool {
        self.groups[id.group as usize][id.index as usize]
            .as_ref()
            .map(|e| e.visited_epoch == self.epoch)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(addr: u64, size: u64, seg: SegmentKind) -> BlockInfo {
        BlockInfo {
            addr,
            ty: TypeId(0),
            count: 1,
            segment: seg,
            name: None,
            frame: None,
            size,
        }
    }

    #[test]
    fn groups_assign_in_order() {
        let mut m = Msrlt::new();
        let g1 = m.register(&info(0x100, 8, SegmentKind::Global));
        let g2 = m.register(&info(0x200, 8, SegmentKind::Global));
        let h1 = m.register(&info(0x1000, 8, SegmentKind::Heap));
        assert_eq!(g1, LogicalId { group: 0, index: 0 });
        assert_eq!(g2, LogicalId { group: 0, index: 1 });
        assert_eq!(h1, LogicalId { group: 1, index: 0 });
    }

    #[test]
    fn frame_groups_by_depth() {
        let mut m = Msrlt::new();
        assert_eq!(m.begin_frame(), 2);
        let a = m.register(&info(0x7000, 4, SegmentKind::Stack));
        assert_eq!(a.group, 2);
        assert_eq!(m.begin_frame(), 3);
        let b = m.register(&info(0x6000, 4, SegmentKind::Stack));
        assert_eq!(b.group, 3);
        m.end_frame();
        assert!(m.entry(b).is_none() || m.lookup_addr(0x6000).is_none());
        // Re-entering a frame at the same depth reuses group 3.
        assert_eq!(m.begin_frame(), 3);
        let c = m.register(&info(0x6000, 4, SegmentKind::Stack));
        assert_eq!(c, LogicalId { group: 3, index: 0 });
    }

    #[test]
    fn lookup_interior_addresses() {
        let mut m = Msrlt::new();
        let id = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_eq!(m.lookup_addr(0x1000), Some((id, 0)));
        assert_eq!(m.lookup_addr(0x100F), Some((id, 15)));
        assert_eq!(m.lookup_addr(0x1010), None);
        assert_eq!(m.lookup_addr(0xFFF), None);
    }

    #[test]
    fn linear_and_binary_agree() {
        let mut b = Msrlt::with_strategy(SearchStrategy::Binary);
        let mut l = Msrlt::with_strategy(SearchStrategy::Linear);
        for i in 0..50u64 {
            let inf = info(0x1000 + i * 32, 16, SegmentKind::Heap);
            b.register(&inf);
            l.register(&inf);
        }
        for probe in (0x0F00..0x1800).step_by(7) {
            assert_eq!(
                b.lookup_addr(probe),
                l.lookup_addr(probe),
                "probe {probe:#x}"
            );
        }
        assert!(l.stats().search_steps > b.stats().search_steps);
    }

    #[test]
    fn search_steps_logarithmic() {
        let mut m = Msrlt::new();
        for i in 0..1024u64 {
            m.register(&info(0x1000 + i * 16, 16, SegmentKind::Heap));
        }
        m.reset_stats();
        m.lookup_addr(0x1000 + 500 * 16);
        let s = m.stats();
        assert_eq!(s.searches, 1);
        assert!(
            s.search_steps <= 11,
            "expected ≤ log2(1024)+1 steps, got {}",
            s.search_steps
        );
    }

    #[test]
    fn unregister_removes() {
        let mut m = Msrlt::new();
        let id = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_eq!(m.unregister(0x1000), Some(id));
        assert_eq!(m.lookup_addr(0x1008), None);
        assert!(m.entry(id).is_none());
        assert_eq!(m.unregister(0x1000), None);
    }

    #[test]
    fn heap_index_not_reused_after_free() {
        let mut m = Msrlt::new();
        let a = m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.unregister(0x1000);
        let b = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_ne!(a, b, "a freed id must not be recycled within a run");
    }

    #[test]
    fn visit_marks_reset_per_epoch() {
        let mut m = Msrlt::new();
        let id = m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.begin_epoch();
        assert!(!m.is_visited(id));
        m.mark_visited(id);
        assert!(m.is_visited(id));
        m.begin_epoch();
        assert!(!m.is_visited(id), "new epoch must clear marks");
    }

    #[test]
    fn register_at_sparse_destination() {
        let mut m = Msrlt::new();
        // Stream delivers heap ids out of order and sparse.
        m.register_at(LogicalId { group: 1, index: 7 }, 0x1000, 8, TypeId(0), 1);
        m.register_at(LogicalId { group: 1, index: 2 }, 0x2000, 8, TypeId(0), 1);
        assert!(m.entry(LogicalId { group: 1, index: 7 }).is_some());
        assert!(m.entry(LogicalId { group: 1, index: 2 }).is_some());
        assert!(m.entry(LogicalId { group: 1, index: 3 }).is_none());
        assert_eq!(
            m.lookup_addr(0x2004).unwrap().0,
            LogicalId { group: 1, index: 2 }
        );
    }

    #[test]
    fn cache_hit_skips_search_steps() {
        let mut m = Msrlt::new();
        for i in 0..256u64 {
            m.register(&info(0x1000 + i * 16, 16, SegmentKind::Heap));
        }
        m.reset_stats();
        let first = m.lookup_addr(0x1000 + 100 * 16).unwrap();
        let cold_steps = m.stats().search_steps;
        assert!(cold_steps > 0);
        assert_eq!(m.stats().cache_misses, 1);
        // Same block again: last-hit cache answers with zero steps.
        let again = m.lookup_addr(0x1000 + 100 * 16 + 8).unwrap();
        assert_eq!(again.0, first.0);
        assert_eq!(again.1, 8);
        assert_eq!(m.stats().cache_hits, 1);
        assert_eq!(m.stats().search_steps, cold_steps);
        assert_eq!(m.stats().searches, 2);
    }

    #[test]
    fn cache_survives_intervening_lookups_via_direct_map() {
        let mut m = Msrlt::new();
        for i in 0..64u64 {
            m.register(&info(0x1000 + i * 64, 32, SegmentKind::Heap));
        }
        m.reset_stats();
        let a = m.lookup_addr(0x1000).unwrap();
        let b = m.lookup_addr(0x1000 + 10 * 64).unwrap();
        assert_ne!(a.0, b.0);
        // `a`'s exact address is no longer the last hit, but the
        // direct-mapped slot still holds it.
        let a2 = m.lookup_addr(0x1000).unwrap();
        assert_eq!(a2, a);
        assert!(m.stats().cache_hits >= 1, "{:?}", m.stats());
    }

    #[test]
    fn stale_cache_entries_miss_after_free_and_realloc() {
        let mut m = Msrlt::new();
        let a = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_eq!(m.lookup_addr(0x1008).unwrap().0, a);
        m.unregister(0x1000);
        assert_eq!(m.lookup_addr(0x1008), None, "freed block must not hit");
        // Same address range re-registered under a new id: the cached
        // translation must resolve to the live block.
        let b = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_ne!(a, b);
        assert_eq!(m.lookup_addr(0x1008).unwrap().0, b);
    }

    #[test]
    fn linear_strategy_has_no_cache() {
        let mut m = Msrlt::with_strategy(SearchStrategy::Linear);
        assert!(!m.cache_enabled());
        m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.lookup_addr(0x1000);
        m.lookup_addr(0x1000);
        assert_eq!(m.stats().cache_hits, 0);
        assert_eq!(m.stats().cache_misses, 0);
    }

    #[test]
    fn disabling_cache_drops_translations() {
        let mut m = Msrlt::new();
        m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.lookup_addr(0x1000);
        m.set_cache_enabled(false);
        m.reset_stats();
        m.lookup_addr(0x1000);
        let s = m.stats();
        assert_eq!(s.cache_hits + s.cache_misses, 0);
        assert!(s.search_steps > 0);
    }

    #[test]
    fn registered_bytes_tracks_live_blocks() {
        let mut m = Msrlt::new();
        assert_eq!(m.registered_bytes(), 0);
        m.register(&info(0x100, 8, SegmentKind::Global));
        m.register(&info(0x1000, 24, SegmentKind::Heap));
        assert_eq!(m.registered_bytes(), 32);
        m.unregister(0x1000);
        assert_eq!(m.registered_bytes(), 8);
        // Frame pop path (end_frame bypasses unregister).
        m.begin_frame();
        m.register(&info(0x7000, 16, SegmentKind::Stack));
        assert_eq!(m.registered_bytes(), 24);
        m.end_frame();
        assert_eq!(m.registered_bytes(), 8);
    }

    #[test]
    fn live_entries_iterates_all() {
        let mut m = Msrlt::new();
        m.register(&info(0x100, 8, SegmentKind::Global));
        m.register(&info(0x1000, 8, SegmentKind::Heap));
        assert_eq!(m.live_entries().count(), 2);
        assert_eq!(m.live_count(), 2);
    }
}
