//! The MSR Lookup Table (MSRLT).
//!
//! §3.1: "At runtime, the MSRLT data structure is created in process
//! memory space to keep track of memory blocks. It also provides
//! machine-independent identification to the memory blocks and supports
//! memory block search during data collection and restoration operations.
//! The MSRLT works as a mapping table which supports address translation
//! between the machine-specific and machine-independent memory address."
//!
//! Logical identification is a `(group, index)` pair:
//!
//! * group 0 — global variables, indexed in definition order;
//! * group 1 — heap blocks, indexed in allocation order;
//! * group `2 + d` — locals of the stack frame at depth `d`, indexed in
//!   declaration order.
//!
//! Because the migrating program and the destination program are the same
//! executable, both sides assign identical ids to the same source-level
//! entities — the property the paper relies on to match blocks across
//! machines.
//!
//! Address→id lookup is the instrumented search whose cost appears in the
//! paper's collection complexity (`O(n log n)` over `n` blocks); id→entry
//! lookup is `O(1)` indexing, which is why restoration's MSRLT term is
//! only `O(n)`. The default [`SearchStrategy::PageIndex`] collapses the
//! address→id direction to amortized `O(1)` with a two-level page table
//! (page directory → per-page granule owners), demoting the sorted-index
//! binary search to a cold fallback; [`SearchStrategy::Binary`] and
//! [`SearchStrategy::Linear`] remain as the §4.2 ablation points.

use hpm_arch::SegmentKind;
use hpm_memory::BlockInfo;
use hpm_obs::{StatField, StatGroup, TranslateStats};
use hpm_types::TypeId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Group number of the global-variable group.
pub const GROUP_GLOBAL: u32 = 0;
/// Group number of the heap group.
pub const GROUP_HEAP: u32 = 1;

/// Slots in the direct-mapped translation cache. Small on purpose: it
/// fronts the page walk the way a TLB fronts a hardware page table, and
/// pointer-heavy workloads re-resolve a working set of pages far smaller
/// than the table.
const CACHE_SLOTS: usize = 64;

/// Page size of the address→id page index (4 KiB, like the machines the
/// presets model).
const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Within a page, block ownership is tracked per 4-byte granule — the
/// smallest scalar alignment any preset uses — so one array read
/// resolves an interior address to its covering block.
const GRANULE_SHIFT: u64 = 2;
const GRANULES_PER_PAGE: usize = (PAGE_SIZE >> GRANULE_SHIFT) as usize;

/// Granule owner sentinel for "no block claims these bytes".
const EMPTY_GRANULE: u64 = u64::MAX;

fn pack_id(id: LogicalId) -> u64 {
    ((id.group as u64) << 32) | id.index as u64
}

fn unpack_id(packed: u64) -> LogicalId {
    LogicalId {
        group: (packed >> 32) as u32,
        index: packed as u32,
    }
}

/// Group number for the stack frame at `depth`.
pub fn frame_group(depth: u32) -> u32 {
    2 + depth
}

/// Machine-independent identification of a memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalId {
    /// The MSRLT group.
    pub group: u32,
    /// The index within the group.
    pub index: u32,
}

impl std::fmt::Display for LogicalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.group, self.index)
    }
}

/// One MSRLT entry: a live memory block's identification and location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrltEntry {
    /// Logical identification.
    pub id: LogicalId,
    /// Machine-specific start address.
    pub addr: u64,
    /// Block size in bytes on this machine.
    pub size: u64,
    /// Element type.
    pub ty: TypeId,
    /// Element count.
    pub count: u64,
    visited_epoch: u64,
}

/// How address→block search is implemented (§4.2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Two-level page index — amortized `O(1)` per search: a page
    /// directory keyed on `addr >> 12` locates a per-page owner cell,
    /// and one granule read inside the cell names the covering block.
    /// The sorted-index binary search remains as the cold fallback for
    /// unmapped probes and sub-granule shadowing.
    #[default]
    PageIndex,
    /// Binary search over a sorted address index — `O(log n)` per search,
    /// the design the paper's complexity model assumes.
    Binary,
    /// Linear scan — `O(n)` per search; the naive baseline.
    Linear,
}

/// Instrumentation counters, feeding the §4.2 complexity experiments.
#[derive(Debug, Default, Clone, Copy)]
pub struct MsrltStats {
    /// Blocks registered (the "MSRLT update" operations).
    pub registrations: u64,
    /// Blocks unregistered (free / frame pop).
    pub unregistrations: u64,
    /// Address→block searches performed.
    pub searches: u64,
    /// Total comparison steps across all searches.
    pub search_steps: u64,
    /// id→entry lookups (O(1) each).
    pub id_lookups: u64,
    /// Searches answered by the translation cache (no comparison steps).
    pub cache_hits: u64,
    /// Searches that fell through the cache to the configured strategy.
    pub cache_misses: u64,
    /// Cached translations displaced by a different page mapping to the
    /// same direct-mapped slot.
    pub cache_evictions: u64,
    /// Per-segment cache accounting plus page-walk/fallback breakdown.
    pub translate: TranslateStats,
    /// Wall time spent registering.
    pub register_time: Duration,
    /// Wall time spent searching.
    pub search_time: Duration,
}

impl MsrltStats {
    /// Fraction of searches served by the translation cache, in [0, 1].
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl StatGroup for MsrltStats {
    fn group(&self) -> &'static str {
        "msrlt"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("registrations", self.registrations),
            StatField::count("unregistrations", self.unregistrations),
            StatField::count("searches", self.searches),
            StatField::count("search_steps", self.search_steps),
            StatField::count("id_lookups", self.id_lookups),
            StatField::count("cache_hits", self.cache_hits),
            StatField::count("cache_misses", self.cache_misses),
            StatField::count("cache_evictions", self.cache_evictions),
            StatField::ratio("cache_hit_rate", self.cache_hit_rate()),
            StatField::duration("register_time", self.register_time),
            StatField::duration("search_time", self.search_time),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.registrations += other.registrations;
        self.unregistrations += other.unregistrations;
        self.searches += other.searches;
        self.search_steps += other.search_steps;
        self.id_lookups += other.id_lookups;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.translate.merge_from(&other.translate);
        self.register_time += other.register_time;
        self.search_time += other.search_time;
    }
}

/// One page's owner record in the page index.
#[derive(Debug, Clone)]
enum PageCell {
    /// The whole page lies inside a single block (packed id). Large
    /// arrays cover thousands of pages; storing one word per page keeps
    /// registration O(pages), not O(bytes).
    Whole(u64),
    /// Per-granule owners; `used` counts non-empty granules so the cell
    /// can be reclaimed the moment its last owner unregisters.
    Granules {
        used: u32,
        g: Box<[u64; GRANULES_PER_PAGE]>,
    },
}

impl PageCell {
    fn empty_granules() -> Self {
        PageCell::Granules {
            used: 0,
            g: Box::new([EMPTY_GRANULE; GRANULES_PER_PAGE]),
        }
    }
}

/// How a translation-cache slot resolves its page.
#[derive(Debug, Clone, Copy)]
enum CacheWay {
    /// Resolve through the page-index cell at this arena slot (the
    /// [`SearchStrategy::PageIndex`] TLB: a tag match plus one granule
    /// read answers *any* address in the page, so interior heap
    /// addresses hit even when every block is visited exactly once).
    Cell(u32),
    /// A single cached block translation (fallback strategies, which
    /// keep no granule cells).
    Block(LogicalId),
}

/// The MSR Lookup Table.
#[derive(Debug, Clone)]
pub struct Msrlt {
    /// `groups[g][i]` is the entry with id `(g, i)`; `None` for ids that
    /// are dead (freed) or not yet seen on this side.
    groups: Vec<Vec<Option<MsrltEntry>>>,
    /// Sorted by block start address. Maintained under every strategy:
    /// it is the fallback search structure and the live-entry iterator.
    by_addr: Vec<(u64, LogicalId)>,
    /// Live frame groups (innermost last).
    frame_stack: Vec<u32>,
    strategy: SearchStrategy,
    epoch: u64,
    stats: MsrltStats,
    /// Total bytes of live registered blocks (collector pre-sizing hint).
    live_bytes: u64,
    /// Page directory: page number → arena slot of its owner cell.
    /// Maintained only under [`SearchStrategy::PageIndex`].
    page_dir: HashMap<u64, u32>,
    /// Owner-cell arena; `None` slots are free (listed in `page_free`).
    page_arena: Vec<Option<PageCell>>,
    page_free: Vec<u32>,
    /// Id of the most recently resolved block; checked first on every
    /// search. Hits are validated against the live table, so stale
    /// entries simply miss — no invalidation traffic.
    cache_last: Option<LogicalId>,
    /// Direct-mapped cache behind the last-hit check, slotted and tagged
    /// on *page number* (not raw address) so distinct interior addresses
    /// of the same page share a slot.
    cache_slots: Vec<Option<(u64, CacheWay)>>,
    cache_enabled: bool,
}

impl Default for Msrlt {
    fn default() -> Self {
        Self::new()
    }
}

impl Msrlt {
    /// New table with the global and heap groups ready.
    pub fn new() -> Self {
        Msrlt::with_strategy(SearchStrategy::PageIndex)
    }

    /// New table using the given search strategy. The translation cache
    /// fronts [`SearchStrategy::PageIndex`] and [`SearchStrategy::Binary`]
    /// by default; the linear baseline stays pure so the §4.2 ablation
    /// measures the raw scan.
    pub fn with_strategy(strategy: SearchStrategy) -> Self {
        Msrlt {
            groups: vec![Vec::new(), Vec::new()],
            by_addr: Vec::new(),
            frame_stack: Vec::new(),
            strategy,
            epoch: 1,
            stats: MsrltStats::default(),
            live_bytes: 0,
            page_dir: HashMap::new(),
            page_arena: Vec::new(),
            page_free: Vec::new(),
            cache_last: None,
            cache_slots: vec![None; CACHE_SLOTS],
            cache_enabled: !matches!(strategy, SearchStrategy::Linear),
        }
    }

    /// The configured address→block search strategy.
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Enable or disable the translation cache (ablation control).
    /// Disabling drops all cached translations.
    pub fn set_cache_enabled(&mut self, enabled: bool) {
        self.cache_enabled = enabled;
        if !enabled {
            self.cache_last = None;
            self.cache_slots = vec![None; CACHE_SLOTS];
        }
    }

    /// Whether the translation cache is active.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Instrumentation counters so far.
    pub fn stats(&self) -> MsrltStats {
        self.stats
    }

    /// Zero the counters (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = MsrltStats::default();
    }

    /// Number of live entries.
    pub fn live_count(&self) -> usize {
        self.by_addr.len()
    }

    /// Begin tracking a new stack frame; returns its group.
    pub fn begin_frame(&mut self) -> u32 {
        let g = frame_group(self.frame_stack.len() as u32);
        self.frame_stack.push(g);
        if self.groups.len() <= g as usize {
            self.groups.resize_with(g as usize + 1, Vec::new);
        }
        self.groups[g as usize].clear();
        g
    }

    /// Stop tracking the innermost frame, dropping its entries.
    pub fn end_frame(&mut self) {
        let g = self.frame_stack.pop().expect("end_frame with no frame");
        let dead: Vec<u64> = self.groups[g as usize]
            .iter()
            .flatten()
            .map(|e| e.addr)
            .collect();
        for addr in dead {
            self.remove_addr(addr);
        }
        self.groups[g as usize].clear();
    }

    /// Depth of the live frame stack.
    pub fn frame_depth(&self) -> usize {
        self.frame_stack.len()
    }

    /// Register a block, assigning the next index in the group implied by
    /// its segment (globals → 0, heap → 1, stack → innermost frame).
    pub fn register(&mut self, info: &BlockInfo) -> LogicalId {
        let group = match info.segment {
            SegmentKind::Global => GROUP_GLOBAL,
            SegmentKind::Heap => GROUP_HEAP,
            SegmentKind::Stack => *self
                .frame_stack
                .last()
                .expect("stack block registered with no live frame"),
        };
        let index = self.groups[group as usize].len() as u32;
        let id = LogicalId { group, index };
        self.register_at(id, info.addr, info.size, info.ty, info.count);
        id
    }

    /// Register a block under an explicit id (used on the destination,
    /// where the stream dictates heap ids).
    pub fn register_at(&mut self, id: LogicalId, addr: u64, size: u64, ty: TypeId, count: u64) {
        let t0 = Instant::now();
        if self.groups.len() <= id.group as usize {
            self.groups.resize_with(id.group as usize + 1, Vec::new);
        }
        let g = &mut self.groups[id.group as usize];
        if g.len() <= id.index as usize {
            g.resize(id.index as usize + 1, None);
        }
        debug_assert!(
            g[id.index as usize].is_none(),
            "duplicate registration of {id}"
        );
        g[id.index as usize] = Some(MsrltEntry {
            id,
            addr,
            size,
            ty,
            count,
            visited_epoch: 0,
        });
        let pos = self.by_addr.partition_point(|&(a, _)| a < addr);
        self.by_addr.insert(pos, (addr, id));
        self.page_index_insert(id, addr, size);
        self.live_bytes += size;
        self.stats.registrations += 1;
        self.stats.register_time += t0.elapsed();
    }

    /// Total bytes of currently registered live blocks — the collector
    /// uses this to pre-size its encoder, since the payload is dominated
    /// by the raw bytes of the blocks it will emit.
    pub fn registered_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Reserve heap indices `0..n`: future [`Msrlt::register`] calls for
    /// heap blocks assign indices ≥ `n`. Used on the destination so that
    /// blocks allocated by resumed execution never collide with source
    /// heap ids still pending in un-restored stream sections.
    pub fn reserve_heap_indices(&mut self, n: u32) {
        let g = &mut self.groups[GROUP_HEAP as usize];
        if g.len() < n as usize {
            g.resize(n as usize, None);
        }
    }

    /// Current length of the heap group (the source-side high-water mark
    /// carried in the execution state).
    pub fn heap_len(&self) -> u32 {
        self.groups[GROUP_HEAP as usize].len() as u32
    }

    /// Drop the entry for the block starting at `addr` (heap `free`).
    pub fn unregister(&mut self, addr: u64) -> Option<LogicalId> {
        let id = self.remove_addr(addr)?;
        self.groups[id.group as usize][id.index as usize] = None;
        self.stats.unregistrations += 1;
        Some(id)
    }

    fn remove_addr(&mut self, addr: u64) -> Option<LogicalId> {
        let pos = self.by_addr.partition_point(|&(a, _)| a < addr);
        if pos < self.by_addr.len() && self.by_addr[pos].0 == addr {
            let id = self.by_addr.remove(pos).1;
            if let Some(e) = self.groups[id.group as usize][id.index as usize].as_ref() {
                let size = e.size;
                self.live_bytes -= size;
                self.page_index_remove(id, addr, size);
            }
            Some(id)
        } else {
            None
        }
    }

    // ----- page index maintenance -----

    fn alloc_cell(&mut self, cell: PageCell) -> u32 {
        if let Some(ci) = self.page_free.pop() {
            self.page_arena[ci as usize] = Some(cell);
            ci
        } else {
            self.page_arena.push(Some(cell));
            (self.page_arena.len() - 1) as u32
        }
    }

    fn set_page_cell(&mut self, page: u64, cell: PageCell) {
        if let Some(&ci) = self.page_dir.get(&page) {
            self.page_arena[ci as usize] = Some(cell);
        } else {
            let ci = self.alloc_cell(cell);
            self.page_dir.insert(page, ci);
        }
    }

    /// Arena slot of `page`'s granule cell, creating one if the page is
    /// untracked (a stale `Whole` cell cannot coexist with a live
    /// overlapping block, so replacing it is safe).
    fn granule_cell_for(&mut self, page: u64) -> u32 {
        if let Some(&ci) = self.page_dir.get(&page) {
            if matches!(
                self.page_arena[ci as usize],
                Some(PageCell::Granules { .. })
            ) {
                return ci;
            }
            self.page_arena[ci as usize] = Some(PageCell::empty_granules());
            ci
        } else {
            let ci = self.alloc_cell(PageCell::empty_granules());
            self.page_dir.insert(page, ci);
            ci
        }
    }

    /// Record `[addr, addr+size)` as owned by `id` in the page index.
    /// Pages wholly inside the block get one-word `Whole` cells; edge
    /// pages get their overlapped granules stamped.
    fn page_index_insert(&mut self, id: LogicalId, addr: u64, size: u64) {
        if size == 0 || !matches!(self.strategy, SearchStrategy::PageIndex) {
            return;
        }
        let packed = pack_id(id);
        let end = addr + size;
        for page in (addr >> PAGE_SHIFT)..=((end - 1) >> PAGE_SHIFT) {
            let p_start = page << PAGE_SHIFT;
            let p_end = p_start + PAGE_SIZE;
            if addr <= p_start && end >= p_end {
                self.set_page_cell(page, PageCell::Whole(packed));
            } else {
                let g_lo = ((addr.max(p_start) - p_start) >> GRANULE_SHIFT) as usize;
                let g_hi = ((end.min(p_end) - 1 - p_start) >> GRANULE_SHIFT) as usize;
                let ci = self.granule_cell_for(page);
                if let Some(PageCell::Granules { used, g }) = self.page_arena[ci as usize].as_mut()
                {
                    for slot in g[g_lo..=g_hi].iter_mut() {
                        if *slot == EMPTY_GRANULE {
                            *used += 1;
                        }
                        *slot = packed;
                    }
                }
            }
        }
    }

    /// Clear `id`'s ownership of `[addr, addr+size)`. Granules stamped
    /// over by a later sub-granule neighbour are left alone; cells are
    /// reclaimed when their last owner leaves.
    fn page_index_remove(&mut self, id: LogicalId, addr: u64, size: u64) {
        if size == 0 || !matches!(self.strategy, SearchStrategy::PageIndex) {
            return;
        }
        let packed = pack_id(id);
        let end = addr + size;
        for page in (addr >> PAGE_SHIFT)..=((end - 1) >> PAGE_SHIFT) {
            let Some(&ci) = self.page_dir.get(&page) else {
                continue;
            };
            let free = match self.page_arena[ci as usize].as_mut() {
                Some(PageCell::Whole(p)) => *p == packed,
                Some(PageCell::Granules { used, g }) => {
                    let p_start = page << PAGE_SHIFT;
                    let g_lo = ((addr.max(p_start) - p_start) >> GRANULE_SHIFT) as usize;
                    let g_hi =
                        ((end.min(p_start + PAGE_SIZE) - 1 - p_start) >> GRANULE_SHIFT) as usize;
                    for slot in g[g_lo..=g_hi].iter_mut() {
                        if *slot == packed {
                            *slot = EMPTY_GRANULE;
                            *used -= 1;
                        }
                    }
                    *used == 0
                }
                None => false,
            };
            if free {
                self.page_dir.remove(&page);
                self.page_arena[ci as usize] = None;
                self.page_free.push(ci);
            }
        }
    }

    /// Resolve `addr` through the owner cell at arena slot `ci`,
    /// validating against the live table.
    fn cell_resolve(&self, ci: u32, addr: u64) -> Option<(LogicalId, u64)> {
        match self.page_arena.get(ci as usize)?.as_ref()? {
            PageCell::Whole(p) => self.cache_validate(unpack_id(*p), addr),
            PageCell::Granules { g, .. } => {
                let gi = ((addr & (PAGE_SIZE - 1)) >> GRANULE_SHIFT) as usize;
                let p = g[gi];
                if p == EMPTY_GRANULE {
                    None
                } else {
                    self.cache_validate(unpack_id(p), addr)
                }
            }
        }
    }

    // ----- translation cache -----

    /// Cache slot for a page number.
    fn cache_slot(page: u64) -> usize {
        ((page ^ (page >> 6)) as usize) & (CACHE_SLOTS - 1)
    }

    /// Validate a cached id against the live table: a hit is real only
    /// if the block still exists and contains `addr`. Live blocks are
    /// disjoint, so a validated hit equals the strategy-search result.
    fn cache_validate(&self, id: LogicalId, addr: u64) -> Option<(LogicalId, u64)> {
        let e = self
            .groups
            .get(id.group as usize)?
            .get(id.index as usize)?
            .as_ref()?;
        if addr >= e.addr && addr < e.addr + e.size {
            Some((id, addr - e.addr))
        } else {
            None
        }
    }

    /// Probe the last-hit entry, then the page-tagged direct-mapped slot.
    fn cache_probe(&self, addr: u64) -> Option<(LogicalId, u64)> {
        if let Some(id) = self.cache_last {
            if let Some(hit) = self.cache_validate(id, addr) {
                return Some(hit);
            }
        }
        let page = addr >> PAGE_SHIFT;
        match self.cache_slots[Self::cache_slot(page)] {
            Some((p, CacheWay::Cell(ci))) if p == page => self.cell_resolve(ci, addr),
            Some((p, CacheWay::Block(id))) if p == page => self.cache_validate(id, addr),
            _ => None,
        }
    }

    /// Bucket a cache outcome by the resolved block's segment.
    fn note_translate(&mut self, group: u32, hit: bool) {
        let t = &mut self.stats.translate;
        let (h, m) = match group {
            GROUP_GLOBAL => (&mut t.global_hits, &mut t.global_misses),
            GROUP_HEAP => (&mut t.heap_hits, &mut t.heap_misses),
            _ => (&mut t.stack_hits, &mut t.stack_misses),
        };
        if hit {
            *h += 1;
        } else {
            *m += 1;
        }
    }

    /// *The* MSRLT search: find the block containing `addr`, returning its
    /// id and the byte offset of `addr` within it. Counts comparisons.
    pub fn lookup_addr(&mut self, addr: u64) -> Option<(LogicalId, u64)> {
        let t0 = Instant::now();
        self.stats.searches += 1;
        if self.cache_enabled {
            if let Some(hit) = self.cache_probe(addr) {
                self.stats.cache_hits += 1;
                self.note_translate(hit.0.group, true);
                self.cache_last = Some(hit.0);
                self.stats.search_time += t0.elapsed();
                return Some(hit);
            }
            self.stats.cache_misses += 1;
        }
        // Page-index walk: one directory probe plus one granule read
        // resolves any mapped, granule-aligned-visible address.
        let mut walked_cell: Option<u32> = None;
        let mut result: Option<(LogicalId, u64)> = None;
        if matches!(self.strategy, SearchStrategy::PageIndex) {
            let page = addr >> PAGE_SHIFT;
            if let Some(&ci) = self.page_dir.get(&page) {
                self.stats.search_steps += 1;
                walked_cell = Some(ci);
                result = self.cell_resolve(ci, addr);
            }
        }
        if result.is_some() {
            self.stats.translate.page_walks += 1;
        } else {
            // Cold fallback: unmapped probe, granule shadowed by a
            // sub-4-byte neighbour, or a non-page-index strategy.
            if matches!(self.strategy, SearchStrategy::PageIndex) {
                self.stats.translate.fallback_searches += 1;
            }
            let found = match self.strategy {
                SearchStrategy::PageIndex | SearchStrategy::Binary => {
                    let mut lo = 0usize;
                    let mut hi = self.by_addr.len();
                    while lo < hi {
                        self.stats.search_steps += 1;
                        let mid = (lo + hi) / 2;
                        if self.by_addr[mid].0 <= addr {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    lo.checked_sub(1).map(|i| self.by_addr[i].1)
                }
                SearchStrategy::Linear => {
                    let mut best: Option<(u64, LogicalId)> = None;
                    for &(a, id) in &self.by_addr {
                        self.stats.search_steps += 1;
                        if a <= addr && best.map(|(ba, _)| a > ba).unwrap_or(true) {
                            best = Some((a, id));
                        }
                    }
                    best.map(|(_, id)| id)
                }
            };
            result = found.and_then(|id| {
                let e = self.entry(id)?;
                if addr >= e.addr && addr < e.addr + e.size {
                    Some((id, addr - e.addr))
                } else {
                    None
                }
            });
        }
        if self.cache_enabled {
            if let Some((id, _)) = result {
                self.note_translate(id.group, false);
                self.cache_last = Some(id);
                let page = addr >> PAGE_SHIFT;
                let way = match self.strategy {
                    SearchStrategy::PageIndex => walked_cell
                        .or_else(|| self.page_dir.get(&page).copied())
                        .map(CacheWay::Cell)
                        .unwrap_or(CacheWay::Block(id)),
                    _ => CacheWay::Block(id),
                };
                let slot = Self::cache_slot(page);
                if matches!(self.cache_slots[slot], Some((p, _)) if p != page) {
                    self.stats.cache_evictions += 1;
                }
                self.cache_slots[slot] = Some((page, way));
            }
        }
        self.stats.search_time += t0.elapsed();
        result
    }

    /// O(1) id→entry translation (the restoration-side operation).
    pub fn entry(&self, id: LogicalId) -> Option<&MsrltEntry> {
        self.stats_id_lookup();
        self.groups
            .get(id.group as usize)?
            .get(id.index as usize)?
            .as_ref()
    }

    // `entry` takes &self for ergonomics; count id lookups with interior
    // mutability-free approximation: promoted to a method on &mut in hot
    // paths. Cold callers go through this no-op.
    fn stats_id_lookup(&self) {}

    /// Counted variant of [`Msrlt::entry`] for instrumented paths.
    pub fn entry_counted(&mut self, id: LogicalId) -> Option<&MsrltEntry> {
        self.stats.id_lookups += 1;
        self.groups
            .get(id.group as usize)?
            .get(id.index as usize)?
            .as_ref()
    }

    /// Index capacity of each id group (dead slots included). A dense
    /// per-id index built from these sizes covers every id this table
    /// can currently produce — the parallel collector's shared visited
    /// bitmap is laid out this way.
    pub fn group_sizes(&self) -> Vec<u32> {
        self.groups.iter().map(|g| g.len() as u32).collect()
    }

    /// Fold externally accumulated counters into this table's stats —
    /// used by the parallel collector, whose workers search private
    /// clones of the table.
    pub fn absorb_stats(&mut self, other: &MsrltStats) {
        self.stats.merge_from(other);
    }

    /// All live entries, unordered.
    pub fn live_entries(&self) -> impl Iterator<Item = &MsrltEntry> {
        self.by_addr
            .iter()
            .filter_map(|(_, id)| self.groups[id.group as usize][id.index as usize].as_ref())
    }

    // ----- visit marking (collection-time DFS) -----

    /// Start a new collection: invalidates all visit marks in O(1).
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Mark the block visited in the current epoch.
    pub fn mark_visited(&mut self, id: LogicalId) {
        let epoch = self.epoch;
        if let Some(e) = self.groups[id.group as usize][id.index as usize].as_mut() {
            e.visited_epoch = epoch;
        }
    }

    /// Whether the block was visited in the current epoch.
    pub fn is_visited(&self, id: LogicalId) -> bool {
        self.groups[id.group as usize][id.index as usize]
            .as_ref()
            .map(|e| e.visited_epoch == self.epoch)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(addr: u64, size: u64, seg: SegmentKind) -> BlockInfo {
        BlockInfo {
            addr,
            ty: TypeId(0),
            count: 1,
            segment: seg,
            name: None,
            frame: None,
            size,
        }
    }

    #[test]
    fn groups_assign_in_order() {
        let mut m = Msrlt::new();
        let g1 = m.register(&info(0x100, 8, SegmentKind::Global));
        let g2 = m.register(&info(0x200, 8, SegmentKind::Global));
        let h1 = m.register(&info(0x1000, 8, SegmentKind::Heap));
        assert_eq!(g1, LogicalId { group: 0, index: 0 });
        assert_eq!(g2, LogicalId { group: 0, index: 1 });
        assert_eq!(h1, LogicalId { group: 1, index: 0 });
    }

    #[test]
    fn frame_groups_by_depth() {
        let mut m = Msrlt::new();
        assert_eq!(m.begin_frame(), 2);
        let a = m.register(&info(0x7000, 4, SegmentKind::Stack));
        assert_eq!(a.group, 2);
        assert_eq!(m.begin_frame(), 3);
        let b = m.register(&info(0x6000, 4, SegmentKind::Stack));
        assert_eq!(b.group, 3);
        m.end_frame();
        assert!(m.entry(b).is_none() || m.lookup_addr(0x6000).is_none());
        // Re-entering a frame at the same depth reuses group 3.
        assert_eq!(m.begin_frame(), 3);
        let c = m.register(&info(0x6000, 4, SegmentKind::Stack));
        assert_eq!(c, LogicalId { group: 3, index: 0 });
    }

    #[test]
    fn lookup_interior_addresses() {
        let mut m = Msrlt::new();
        let id = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_eq!(m.lookup_addr(0x1000), Some((id, 0)));
        assert_eq!(m.lookup_addr(0x100F), Some((id, 15)));
        assert_eq!(m.lookup_addr(0x1010), None);
        assert_eq!(m.lookup_addr(0xFFF), None);
    }

    #[test]
    fn linear_and_binary_agree() {
        let mut b = Msrlt::with_strategy(SearchStrategy::Binary);
        let mut l = Msrlt::with_strategy(SearchStrategy::Linear);
        for i in 0..50u64 {
            let inf = info(0x1000 + i * 32, 16, SegmentKind::Heap);
            b.register(&inf);
            l.register(&inf);
        }
        for probe in (0x0F00..0x1800).step_by(7) {
            assert_eq!(
                b.lookup_addr(probe),
                l.lookup_addr(probe),
                "probe {probe:#x}"
            );
        }
        assert!(l.stats().search_steps > b.stats().search_steps);
    }

    #[test]
    fn page_index_and_binary_agree() {
        let mut p = Msrlt::new();
        let mut b = Msrlt::with_strategy(SearchStrategy::Binary);
        // Irregular sizes (including sub-granule and multi-page blocks)
        // with irregular gaps.
        let mut addr = 0x1000u64;
        let mut end = addr;
        for i in 0..200u64 {
            let size = match i % 5 {
                0 => 1,
                1 => 3,
                2 => 16,
                3 => 2 * PAGE_SIZE + 8,
                _ => 64,
            };
            let inf = info(addr, size, SegmentKind::Heap);
            p.register(&inf);
            b.register(&inf);
            end = addr + size;
            addr = end + (i % 7);
        }
        for probe in (0x0F00..end + 0x100).step_by(5) {
            assert_eq!(
                p.lookup_addr(probe),
                b.lookup_addr(probe),
                "probe {probe:#x}"
            );
        }
        // Free every third block and re-verify agreement over the holes.
        let addrs: Vec<u64> = p.live_entries().map(|e| e.addr).collect();
        for a in addrs.iter().step_by(3) {
            assert!(p.unregister(*a).is_some());
            assert!(b.unregister(*a).is_some());
        }
        for probe in (0x0F00..end + 0x100).step_by(11) {
            assert_eq!(
                p.lookup_addr(probe),
                b.lookup_addr(probe),
                "post-free probe {probe:#x}"
            );
        }
    }

    #[test]
    fn page_index_resolves_in_constant_steps() {
        let mut m = Msrlt::new();
        m.set_cache_enabled(false);
        for i in 0..4096u64 {
            m.register(&info(0x1000 + i * 16, 16, SegmentKind::Heap));
        }
        m.reset_stats();
        for i in (0..4096u64).step_by(97) {
            assert!(m.lookup_addr(0x1000 + i * 16 + 4).is_some());
        }
        let s = m.stats();
        assert!(s.searches > 0);
        assert_eq!(
            s.search_steps, s.searches,
            "one page-walk step per mapped lookup"
        );
        assert_eq!(s.translate.page_walks, s.searches);
        assert_eq!(s.translate.fallback_searches, 0);
    }

    #[test]
    fn whole_page_blocks_resolve_via_page_index() {
        let mut m = Msrlt::new();
        m.set_cache_enabled(false);
        // Page-aligned block covering three whole pages plus a tail.
        let id = m.register(&info(0x10000, 3 * PAGE_SIZE + 32, SegmentKind::Heap));
        m.reset_stats();
        assert_eq!(
            m.lookup_addr(0x10000 + PAGE_SIZE + 8),
            Some((id, PAGE_SIZE + 8))
        );
        assert_eq!(m.stats().search_steps, 1);
        assert_eq!(m.lookup_addr(0x10000 + 3 * PAGE_SIZE + 8).unwrap().0, id);
        m.unregister(0x10000);
        assert_eq!(m.lookup_addr(0x10000 + PAGE_SIZE), None);
    }

    #[test]
    fn sub_granule_neighbours_fall_back_correctly() {
        let mut m = Msrlt::new();
        // Two 1-byte blocks sharing one 4-byte granule: the later
        // registration shadows the earlier in the granule cell, so the
        // earlier resolves through the fallback search.
        let a = m.register(&info(0x1000, 1, SegmentKind::Heap));
        let b = m.register(&info(0x1001, 1, SegmentKind::Heap));
        assert_eq!(m.lookup_addr(0x1000), Some((a, 0)));
        assert_eq!(m.lookup_addr(0x1001), Some((b, 0)));
        m.unregister(0x1001);
        assert_eq!(
            m.lookup_addr(0x1000),
            Some((a, 0)),
            "survivor must resolve after its granule owner freed"
        );
        assert_eq!(m.lookup_addr(0x1001), None);
    }

    #[test]
    fn search_steps_logarithmic_on_binary_fallback() {
        let mut m = Msrlt::with_strategy(SearchStrategy::Binary);
        for i in 0..1024u64 {
            m.register(&info(0x1000 + i * 16, 16, SegmentKind::Heap));
        }
        m.reset_stats();
        m.lookup_addr(0x1000 + 500 * 16);
        let s = m.stats();
        assert_eq!(s.searches, 1);
        assert!(
            s.search_steps <= 11,
            "expected ≤ log2(1024)+1 steps, got {}",
            s.search_steps
        );
    }

    #[test]
    fn unregister_removes() {
        let mut m = Msrlt::new();
        let id = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_eq!(m.unregister(0x1000), Some(id));
        assert_eq!(m.lookup_addr(0x1008), None);
        assert!(m.entry(id).is_none());
        assert_eq!(m.unregister(0x1000), None);
    }

    #[test]
    fn heap_index_not_reused_after_free() {
        let mut m = Msrlt::new();
        let a = m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.unregister(0x1000);
        let b = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_ne!(a, b, "a freed id must not be recycled within a run");
    }

    #[test]
    fn visit_marks_reset_per_epoch() {
        let mut m = Msrlt::new();
        let id = m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.begin_epoch();
        assert!(!m.is_visited(id));
        m.mark_visited(id);
        assert!(m.is_visited(id));
        m.begin_epoch();
        assert!(!m.is_visited(id), "new epoch must clear marks");
    }

    #[test]
    fn register_at_sparse_destination() {
        let mut m = Msrlt::new();
        // Stream delivers heap ids out of order and sparse.
        m.register_at(LogicalId { group: 1, index: 7 }, 0x1000, 8, TypeId(0), 1);
        m.register_at(LogicalId { group: 1, index: 2 }, 0x2000, 8, TypeId(0), 1);
        assert!(m.entry(LogicalId { group: 1, index: 7 }).is_some());
        assert!(m.entry(LogicalId { group: 1, index: 2 }).is_some());
        assert!(m.entry(LogicalId { group: 1, index: 3 }).is_none());
        assert_eq!(
            m.lookup_addr(0x2004).unwrap().0,
            LogicalId { group: 1, index: 2 }
        );
    }

    #[test]
    fn cache_hit_skips_search_steps() {
        let mut m = Msrlt::new();
        for i in 0..256u64 {
            m.register(&info(0x1000 + i * 16, 16, SegmentKind::Heap));
        }
        m.reset_stats();
        let first = m.lookup_addr(0x1000 + 100 * 16).unwrap();
        let cold_steps = m.stats().search_steps;
        assert!(cold_steps > 0);
        assert_eq!(m.stats().cache_misses, 1);
        // Same block again: last-hit cache answers with zero steps.
        let again = m.lookup_addr(0x1000 + 100 * 16 + 8).unwrap();
        assert_eq!(again.0, first.0);
        assert_eq!(again.1, 8);
        assert_eq!(m.stats().cache_hits, 1);
        assert_eq!(m.stats().search_steps, cold_steps);
        assert_eq!(m.stats().searches, 2);
    }

    #[test]
    fn page_slotted_cache_hits_across_distinct_blocks() {
        // The bitonic pattern: every block is looked up exactly once, so
        // a block- or address-tagged cache can never hit. A page-tagged
        // slot resolving through the granule cell hits for every block
        // that shares a previously touched page.
        let mut m = Msrlt::new();
        for i in 0..64u64 {
            m.register(&info(0x1000 + i * 8, 8, SegmentKind::Heap));
        }
        m.reset_stats();
        for i in 0..64u64 {
            assert!(m.lookup_addr(0x1000 + i * 8 + 4).is_some());
        }
        let s = m.stats();
        assert_eq!(s.searches, 64);
        assert!(
            s.cache_hits >= 62,
            "single-page working set should hit after the first walk: {s:?}"
        );
    }

    #[test]
    fn cache_survives_intervening_lookups_via_direct_map() {
        let mut m = Msrlt::new();
        for i in 0..64u64 {
            m.register(&info(0x1000 + i * 64, 32, SegmentKind::Heap));
        }
        m.reset_stats();
        let a = m.lookup_addr(0x1000).unwrap();
        let b = m.lookup_addr(0x1000 + 10 * 64).unwrap();
        assert_ne!(a.0, b.0);
        // `a`'s block is no longer the last hit, but the page-tagged
        // direct-mapped slot still resolves it.
        let a2 = m.lookup_addr(0x1000).unwrap();
        assert_eq!(a2, a);
        assert!(m.stats().cache_hits >= 1, "{:?}", m.stats());
    }

    #[test]
    fn stale_cache_entries_miss_after_free_and_realloc() {
        let mut m = Msrlt::new();
        let a = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_eq!(m.lookup_addr(0x1008).unwrap().0, a);
        m.unregister(0x1000);
        assert_eq!(m.lookup_addr(0x1008), None, "freed block must not hit");
        // Same address range re-registered under a new id: the cached
        // translation must resolve to the live block.
        let b = m.register(&info(0x1000, 16, SegmentKind::Heap));
        assert_ne!(a, b);
        assert_eq!(m.lookup_addr(0x1008).unwrap().0, b);
    }

    #[test]
    fn linear_strategy_has_no_cache() {
        let mut m = Msrlt::with_strategy(SearchStrategy::Linear);
        assert!(!m.cache_enabled());
        m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.lookup_addr(0x1000);
        m.lookup_addr(0x1000);
        assert_eq!(m.stats().cache_hits, 0);
        assert_eq!(m.stats().cache_misses, 0);
    }

    #[test]
    fn disabling_cache_drops_translations() {
        let mut m = Msrlt::new();
        m.register(&info(0x1000, 16, SegmentKind::Heap));
        m.lookup_addr(0x1000);
        m.set_cache_enabled(false);
        m.reset_stats();
        m.lookup_addr(0x1000);
        let s = m.stats();
        assert_eq!(s.cache_hits + s.cache_misses, 0);
        assert!(s.search_steps > 0);
    }

    #[test]
    fn translate_stats_bucket_by_segment() {
        let mut m = Msrlt::new();
        m.register(&info(0x100, 8, SegmentKind::Global));
        m.register(&info(0x100000, 8, SegmentKind::Heap));
        m.begin_frame();
        m.register(&info(0x700000, 8, SegmentKind::Stack));
        m.reset_stats();
        m.lookup_addr(0x100);
        m.lookup_addr(0x104);
        m.lookup_addr(0x100000);
        m.lookup_addr(0x100004);
        m.lookup_addr(0x700000);
        m.lookup_addr(0x700004);
        let t = m.stats().translate;
        assert_eq!(t.global_hits + t.global_misses, 2);
        assert_eq!(t.heap_hits + t.heap_misses, 2);
        assert_eq!(t.stack_hits + t.stack_misses, 2);
        // The second probe of each block hits via the last-hit check.
        assert!(t.hits() >= 3, "{t:?}");
        assert!(t.hit_rate() > 0.0);
        assert_eq!(t.hits() + t.misses(), 6);
    }

    #[test]
    fn registered_bytes_tracks_live_blocks() {
        let mut m = Msrlt::new();
        assert_eq!(m.registered_bytes(), 0);
        m.register(&info(0x100, 8, SegmentKind::Global));
        m.register(&info(0x1000, 24, SegmentKind::Heap));
        assert_eq!(m.registered_bytes(), 32);
        m.unregister(0x1000);
        assert_eq!(m.registered_bytes(), 8);
        // Frame pop path (end_frame bypasses unregister).
        m.begin_frame();
        m.register(&info(0x7000, 16, SegmentKind::Stack));
        assert_eq!(m.registered_bytes(), 24);
        m.end_frame();
        assert_eq!(m.registered_bytes(), 8);
    }

    #[test]
    fn live_entries_iterates_all() {
        let mut m = Msrlt::new();
        m.register(&info(0x100, 8, SegmentKind::Global));
        m.register(&info(0x1000, 8, SegmentKind::Heap));
        assert_eq!(m.live_entries().count(), 2);
        assert_eq!(m.live_count(), 2);
    }
}
