//! Data restoration: `Restore_variable` and `Restore_pointer`.
//!
//! §3.1: "At the destination machine, the function Restore_pointer is
//! called recursively to rebuild memory blocks in memory space from the
//! output of Save_pointer. … The functions consult the MSRLT data
//! structures for appropriate memory locations and restore the memory
//! block contents there."
//!
//! The restorer consumes the stream produced by
//! [`Collector`](crate::Collector) and mirrors its explicit-stack DFS.
//! Because every transmitted block carries its logical id, restoration
//! never searches: named blocks (globals, re-created stack locals) are
//! found by `O(1)` id lookup, and heap blocks are allocated on first
//! sight and recorded under the id the stream dictates. This is the §4.2
//! asymmetry — `Restore = MSRLT_update + Decode_and_Copy` with only an
//! `O(n)` MSRLT term.

use crate::collect::{
    plan_is_wire_identical, same_wire_format, TranslationMode, BULK_SLICE, TAG_PTR_NEW,
    TAG_PTR_NULL, TAG_PTR_REF, TAG_VAR_NEW, TAG_VAR_VISITED,
};
use crate::fingerprint::type_fingerprint;
use crate::msrlt::{LogicalId, Msrlt};
use crate::stream::ChunkPayload;
use crate::CoreError;
use hpm_arch::{CScalar, ScalarValue, XdrForm};
use hpm_memory::AddressSpace;
use hpm_obs::{FlightTrack, StatField, StatGroup, Tracer};
use hpm_types::plan::{PlanOp, SavePlan};
use hpm_types::TypeId;
use hpm_xdr::XdrDecoder;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters for one restoration run.
#[derive(Debug, Default, Clone, Copy)]
pub struct RestoreStats {
    /// Blocks whose contents were written.
    pub blocks_restored: u64,
    /// Heap blocks allocated on first sight.
    pub blocks_allocated: u64,
    /// Scalar leaves decoded.
    pub scalars_decoded: u64,
    /// Pointers decoded, by kind.
    pub ptr_null: u64,
    /// `PTR_REF` pointers translated by id lookup.
    pub ptr_ref: u64,
    /// `PTR_NEW` pointers (target materialized inline).
    pub ptr_new: u64,
    /// Payload bytes consumed.
    pub bytes_in: u64,
    /// Time spent in the Decode-and-Copy phase.
    pub decode_time: Duration,
}

impl StatGroup for RestoreStats {
    fn group(&self) -> &'static str {
        "restore"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("blocks_restored", self.blocks_restored),
            StatField::count("blocks_allocated", self.blocks_allocated),
            StatField::count("scalars_decoded", self.scalars_decoded),
            StatField::count("ptr_null", self.ptr_null),
            StatField::count("ptr_ref", self.ptr_ref),
            StatField::count("ptr_new", self.ptr_new),
            StatField::bytes("bytes_in", self.bytes_in),
            StatField::duration("decode_time", self.decode_time),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.blocks_restored += other.blocks_restored;
        self.blocks_allocated += other.blocks_allocated;
        self.scalars_decoded += other.scalars_decoded;
        self.ptr_null += other.ptr_null;
        self.ptr_ref += other.ptr_ref;
        self.ptr_new += other.ptr_new;
        self.bytes_in += other.bytes_in;
        self.decode_time += other.decode_time;
    }
}

struct Cursor {
    block_addr: u64,
    plan: Arc<SavePlan>,
    count: u64,
    elem_idx: u64,
    op_idx: usize,
}

/// The restorer's input: either a complete in-memory payload slice, or a
/// pull-based chunk stream still arriving while decoding runs.
enum Dec<'a> {
    Slice(XdrDecoder<'a>),
    Pull {
        cp: &'a mut ChunkPayload,
        /// Stream position when this session began (per-frame sessions
        /// share one payload).
        start: u64,
    },
}

impl Dec<'_> {
    fn get_u32(&mut self) -> Result<u32, CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_u32()?),
            Dec::Pull { cp, .. } => cp.get_u32(),
        }
    }

    fn get_i32(&mut self) -> Result<i32, CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_i32()?),
            Dec::Pull { cp, .. } => cp.get_i32(),
        }
    }

    fn get_u64(&mut self) -> Result<u64, CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_u64()?),
            Dec::Pull { cp, .. } => cp.get_u64(),
        }
    }

    fn get_i64(&mut self) -> Result<i64, CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_i64()?),
            Dec::Pull { cp, .. } => cp.get_i64(),
        }
    }

    fn get_f32(&mut self) -> Result<f32, CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_f32()?),
            Dec::Pull { cp, .. } => cp.get_f32(),
        }
    }

    fn get_f64(&mut self) -> Result<f64, CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_f64()?),
            Dec::Pull { cp, .. } => cp.get_f64(),
        }
    }

    /// Borrow the next `n` raw payload bytes (the bulk-copy read
    /// primitive; `n` must be a multiple of 4 so XDR framing holds).
    fn take(&mut self, n: usize) -> Result<&[u8], CoreError> {
        match self {
            Dec::Slice(d) => Ok(d.get_opaque_fixed_ref(n)?),
            Dec::Pull { cp, .. } => cp.take(n),
        }
    }

    fn consumed(&self) -> u64 {
        match self {
            Dec::Slice(d) => d.position() as u64,
            Dec::Pull { cp, start } => cp.position() - start,
        }
    }
}

/// One restoration session over a received migration image.
pub struct Restorer<'a> {
    space: &'a mut AddressSpace,
    msrlt: &'a mut Msrlt,
    dec: Dec<'a>,
    fp_to_type: HashMap<u64, TypeId>,
    fp_cache: HashMap<TypeId, u64>,
    stats: RestoreStats,
    tracer: Tracer,
    mode: TranslationMode,
    /// Flight-recorder track: each restored variable leaves one event so
    /// a post-mortem names how far restoration got. `None` costs one
    /// branch per variable.
    flight: Option<FlightTrack>,
    /// Skim mode: consume and validate every stream item and perform the
    /// MSRLT updates (heap allocation + registration in stream order),
    /// but skip all block-content writes. This is the pre-pass of
    /// [`restore_parallel`](crate::restore_parallel::restore_parallel):
    /// it reproduces the exact addresses a sequential restore would
    /// assign while costing only the stream walk.
    skim: bool,
    /// Blocks whose contents the stream fills, as `(addr, bytes)` in
    /// stream order (skim mode only) — the parallel splice's ownership
    /// record.
    filled: Vec<(u64, u64)>,
}

impl<'a> Restorer<'a> {
    /// Begin restoring from `payload`.
    ///
    /// The fingerprint→type index is built once from the receiver's TI
    /// table (the receiving executable knows every type the sender can
    /// transmit — they are the same program).
    pub fn new(space: &'a mut AddressSpace, msrlt: &'a mut Msrlt, payload: &'a [u8]) -> Self {
        Self::with_dec(space, msrlt, Dec::Slice(XdrDecoder::new(payload)))
    }

    /// Begin restoring from a chunk stream that may still be arriving.
    /// Decoding pulls chunks on demand, so frame *k* restores while frame
    /// *k+1* is in flight.
    pub fn from_chunks(
        space: &'a mut AddressSpace,
        msrlt: &'a mut Msrlt,
        cp: &'a mut ChunkPayload,
    ) -> Self {
        let start = cp.position();
        Self::with_dec(space, msrlt, Dec::Pull { cp, start })
    }

    fn with_dec(space: &'a mut AddressSpace, msrlt: &'a mut Msrlt, dec: Dec<'a>) -> Self {
        let mut fp_to_type = HashMap::new();
        let types = space.types();
        for i in 0..types.len() {
            let id = TypeId(i as u32);
            if types.is_complete(id) {
                fp_to_type.insert(type_fingerprint(types, id), id);
            }
        }
        Restorer {
            space,
            msrlt,
            dec,
            fp_to_type,
            fp_cache: HashMap::new(),
            stats: RestoreStats::default(),
            tracer: Tracer::disabled(),
            mode: TranslationMode::default(),
            flight: None,
            skim: false,
            filled: Vec::new(),
        }
    }

    /// Switch to skim mode: the stream is consumed, validated, and its
    /// MSRLT side effects applied, but no block contents are written.
    pub(crate) fn skim_mode(mut self) -> Self {
        self.skim = true;
        self
    }

    /// Blocks the stream has filled so far (skim mode), in stream order.
    pub(crate) fn filled_blocks(&self) -> &[(u64, u64)] {
        &self.filled
    }

    /// Attach a flight-recorder track: every `restore_variable` emits a
    /// `var.restored` event carrying the stream position.
    pub fn with_flight(mut self, flight: FlightTrack) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Select bulk or per-element scalar translation. The gate is this
    /// side's architecture alone — the wire format is fixed XDR, so a
    /// bulk-encoded payload decodes per element and vice versa.
    pub fn with_translation(mut self, mode: TranslationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attach a tracer: restored blocks emit `restore.block` instants
    /// and heap allocations emit `restore.alloc` instants. With the
    /// default disabled tracer each site costs one branch.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn fingerprint(&mut self, ty: TypeId) -> u64 {
        if let Some(&fp) = self.fp_cache.get(&ty) {
            return fp;
        }
        let fp = type_fingerprint(self.space.types(), ty);
        self.fp_cache.insert(ty, fp);
        fp
    }

    /// `Restore_variable`: restore the next stream item into the live
    /// variable block at `addr` (paper: `Restore_variable(&first)`).
    pub fn restore_variable(&mut self, addr: u64) -> Result<(), CoreError> {
        let r = self.restore_variable_inner(addr);
        if let Some(t) = &self.flight {
            match &r {
                Ok(()) => t.event(
                    "var.restored",
                    &[
                        ("consumed", self.dec.consumed()),
                        ("blocks", self.stats.blocks_restored),
                    ],
                ),
                Err(e) => t.event_note(
                    "var.failed",
                    &[("consumed", self.dec.consumed())],
                    &e.to_string(),
                ),
            }
        }
        r
    }

    fn restore_variable_inner(&mut self, addr: u64) -> Result<(), CoreError> {
        let (local_id, off) = self
            .msrlt
            .lookup_addr(addr)
            .ok_or(CoreError::UnregisteredPointer(addr))?;
        if off != 0 {
            return Err(CoreError::SequenceMismatch(format!(
                "restore_variable at interior address {addr:#x}"
            )));
        }
        let tag = self.dec.get_u32()?;
        match tag {
            TAG_VAR_VISITED => {
                let id = get_id(&mut self.dec)?;
                if id != local_id {
                    return Err(CoreError::SequenceMismatch(format!(
                        "VAR_VISITED id {id} but local block is {local_id}"
                    )));
                }
                Ok(())
            }
            TAG_VAR_NEW => {
                let id = get_id(&mut self.dec)?;
                if id != local_id {
                    return Err(CoreError::SequenceMismatch(format!(
                        "VAR_NEW id {id} but local block is {local_id}"
                    )));
                }
                let fp = self.dec.get_u64()?;
                let count = self.dec.get_u64()?;
                let entry = self.msrlt.entry(id).ok_or(CoreError::UnknownId(id))?;
                let (ty, local_count) = (entry.ty, entry.count);
                let local_fp = self.fingerprint(ty);
                if local_fp != fp {
                    return Err(CoreError::TypeMismatch {
                        id,
                        expected: fp,
                        found: local_fp,
                    });
                }
                if local_count != count {
                    return Err(CoreError::SequenceMismatch(format!(
                        "block {id} has {local_count} elements locally but {count} in stream"
                    )));
                }
                self.fill_block(addr, ty, count)
            }
            t => Err(CoreError::BadTag(t)),
        }
    }

    /// `Restore_pointer`: decode the next pointer item, materializing its
    /// target graph if needed, and return the machine-specific address
    /// (paper: `p = Restore_pointer()`).
    pub fn restore_pointer(&mut self) -> Result<u64, CoreError> {
        let mut stack = Vec::new();
        let ptr = self.decode_pointer(&mut stack)?;
        self.drain(stack)?;
        Ok(ptr)
    }

    /// Bytes of the payload consumed so far. Lets a caller that restores
    /// a stream in several sessions (one per frame) resume at the right
    /// offset.
    pub fn consumed(&self) -> usize {
        self.dec.consumed() as usize
    }

    /// Consume the restorer, returning its statistics without requiring
    /// the payload to be exhausted (per-frame sessions stop mid-stream).
    pub fn take_stats(mut self) -> RestoreStats {
        self.stats.bytes_in = self.dec.consumed();
        self.stats
    }

    /// Finish, returning statistics. Errors with
    /// [`CoreError::TrailingBytes`] — including the offending chunk for
    /// streamed payloads — if unconsumed payload remains (the call
    /// sequences diverged).
    pub fn finish(mut self) -> Result<RestoreStats, CoreError> {
        self.stats.bytes_in = self.dec.consumed();
        match &mut self.dec {
            Dec::Slice(d) => {
                if !d.is_empty() {
                    return Err(CoreError::TrailingBytes {
                        bytes: d.remaining(),
                        chunk: None,
                    });
                }
            }
            Dec::Pull { cp, .. } => {
                if cp.has_remaining()? {
                    return Err(CoreError::TrailingBytes {
                        bytes: cp.buffered_remaining(),
                        chunk: Some(cp.current_chunk()),
                    });
                }
            }
        }
        Ok(self.stats)
    }

    // ----- internals -----

    fn fill_block(&mut self, addr: u64, ty: TypeId, count: u64) -> Result<(), CoreError> {
        self.stats.blocks_restored += 1;
        self.tracer
            .instant_args("restore.block", &[("count", count as f64)]);
        let plan = self.space.plan_for(ty)?;
        if self.skim {
            self.filled.push((addr, plan.size * count));
        }
        if !plan.has_pointers {
            return self.decode_block_bulk(addr, &plan, count);
        }
        self.drain(vec![Cursor {
            block_addr: addr,
            plan,
            count,
            elem_idx: 0,
            op_idx: 0,
        }])
    }

    /// Fast path for pointer-free blocks: one write borrow of the block
    /// and a tight XDR→native loop.
    fn decode_block_bulk(
        &mut self,
        addr: u64,
        plan: &hpm_types::plan::SavePlan,
        count: u64,
    ) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let total = (plan.size * count) as usize;
        let (arch, bytes) = self.space.arch_and_bytes_mut(addr)?;
        if bytes.len() < total {
            return Err(CoreError::Mem(format!(
                "block at {addr:#x} shorter than stream data"
            )));
        }
        // Whole-block fast path: the wire image IS this machine's native
        // bytes, so copy the payload straight into the block in bounded
        // slices (mirror of the collector's bulk encode).
        if self.mode == TranslationMode::Bulk && plan_is_wire_identical(arch, plan) {
            let per_elem: u64 = plan
                .ops
                .iter()
                .map(|op| match op {
                    PlanOp::ScalarRun { count, .. } => *count,
                    _ => 0,
                })
                .sum();
            let mut off = 0usize;
            while off < total {
                let len = (total - off).min(BULK_SLICE as usize);
                let raw = self.dec.take(len)?;
                if !self.skim {
                    bytes[off..off + len].copy_from_slice(raw);
                }
                off += len;
            }
            self.stats.scalars_decoded += per_elem * count;
            self.stats.decode_time += t0.elapsed();
            return Ok(());
        }
        let mut native = Vec::with_capacity(8);
        let mut scalars = 0u64;
        for elem in 0..count {
            let elem_base = (elem * plan.size) as usize;
            for op in &plan.ops {
                let PlanOp::ScalarRun {
                    offset,
                    kind,
                    count: rc,
                    stride,
                } = op
                else {
                    unreachable!("bulk path requires a pointer-free plan");
                };
                let size = arch.scalar_size(*kind) as usize;
                if self.mode == TranslationMode::Bulk
                    && same_wire_format(arch, *kind)
                    && *stride == size as u64
                {
                    let at = elem_base + *offset as usize;
                    let len = (*rc as usize) * size;
                    let raw = self.dec.take(len)?;
                    if !self.skim {
                        bytes[at..at + len].copy_from_slice(raw);
                    }
                } else {
                    for k in 0..*rc {
                        let v = get_scalar_xdr(&mut self.dec, *kind)?;
                        if !self.skim {
                            native.clear();
                            arch.encode_scalar(*kind, v, &mut native);
                            let at = elem_base + (*offset + k * *stride) as usize;
                            bytes[at..at + native.len()].copy_from_slice(&native);
                        }
                    }
                }
                scalars += *rc;
            }
        }
        self.stats.scalars_decoded += scalars;
        self.stats.decode_time += t0.elapsed();
        Ok(())
    }

    fn drain(&mut self, mut stack: Vec<Cursor>) -> Result<(), CoreError> {
        loop {
            let next = match stack.last_mut() {
                None => break,
                Some(cur) => {
                    if cur.elem_idx >= cur.count {
                        stack.pop();
                        continue;
                    }
                    if cur.op_idx >= cur.plan.ops.len() {
                        cur.elem_idx += 1;
                        cur.op_idx = 0;
                        continue;
                    }
                    let elem_base = cur.elem_idx * cur.plan.size;
                    let op = cur.plan.ops[cur.op_idx].clone();
                    cur.op_idx += 1;
                    (cur.block_addr, elem_base, op)
                }
            };
            let (block_addr, elem_base, op) = next;
            match op {
                PlanOp::ScalarRun {
                    offset,
                    kind,
                    count,
                    stride,
                } => {
                    self.decode_run(block_addr, elem_base + offset, kind, count, stride)?;
                }
                PlanOp::PointerSlot { offset, .. } => {
                    let ptr = self.decode_pointer(&mut stack)?;
                    self.write_ptr(block_addr, elem_base + offset, ptr)?;
                }
            }
        }
        Ok(())
    }

    fn decode_run(
        &mut self,
        block_addr: u64,
        offset: u64,
        kind: CScalar,
        count: u64,
        stride: u64,
    ) -> Result<(), CoreError> {
        let t0 = Instant::now();
        let arch = self.space.arch().clone();
        let size = arch.scalar_size(kind) as usize;
        if self.mode == TranslationMode::Bulk
            && same_wire_format(&arch, kind)
            && stride == size as u64
        {
            let len = (count as usize) * size;
            let raw = self.dec.take(len)?;
            if !self.skim {
                self.space.write_bytes(block_addr + offset, raw)?;
            }
        } else {
            let mut native = Vec::with_capacity(8);
            for k in 0..count {
                let v = get_scalar_xdr(&mut self.dec, kind)?;
                if !self.skim {
                    native.clear();
                    arch.encode_scalar(kind, v, &mut native);
                    self.space
                        .write_bytes(block_addr + offset + k * stride, &native)?;
                }
            }
        }
        self.stats.scalars_decoded += count;
        self.stats.decode_time += t0.elapsed();
        Ok(())
    }

    fn write_ptr(&mut self, block_addr: u64, offset: u64, ptr: u64) -> Result<(), CoreError> {
        if self.skim {
            return Ok(());
        }
        let mut native = Vec::with_capacity(8);
        self.space
            .arch()
            .encode_scalar(CScalar::Ptr, ScalarValue::Ptr(ptr), &mut native);
        self.space.write_bytes(block_addr + offset, &native)?;
        Ok(())
    }

    fn decode_pointer(&mut self, stack: &mut Vec<Cursor>) -> Result<u64, CoreError> {
        let tag = self.dec.get_u32()?;
        match tag {
            TAG_PTR_NULL => {
                self.stats.ptr_null += 1;
                Ok(0)
            }
            TAG_PTR_REF => {
                self.stats.ptr_ref += 1;
                let id = get_id(&mut self.dec)?;
                let leaf_idx = self.dec.get_u64()?;
                let entry = self
                    .msrlt
                    .entry_counted(id)
                    .ok_or(CoreError::UnknownId(id))?;
                let addr = entry.addr;
                Ok(self.space.elem_addr(addr, leaf_idx)?)
            }
            TAG_PTR_NEW => {
                self.stats.ptr_new += 1;
                let id = get_id(&mut self.dec)?;
                let leaf_idx = self.dec.get_u64()?;
                let fp = self.dec.get_u64()?;
                let count = self.dec.get_u64()?;
                let addr = match self.msrlt.entry_counted(id) {
                    Some(e) => {
                        // A named block that already exists locally
                        // (global / re-created stack local): validate and
                        // fill in place.
                        let (ty, local_count, addr) = (e.ty, e.count, e.addr);
                        let local_fp = self.fingerprint(ty);
                        if local_fp != fp {
                            return Err(CoreError::TypeMismatch {
                                id,
                                expected: fp,
                                found: local_fp,
                            });
                        }
                        if local_count != count {
                            return Err(CoreError::SequenceMismatch(format!(
                                "block {id}: {local_count} local vs {count} stream elements"
                            )));
                        }
                        self.push_fill(stack, addr, ty, count)?;
                        addr
                    }
                    None => {
                        // A heap block: allocate it now (the MSRLT update
                        // of §4.2) and fill it.
                        // (bulk fast path applies inside push_fill's
                        // pointer-free branch below)
                        let ty = *self.fp_to_type.get(&fp).ok_or(CoreError::TypeMismatch {
                            id,
                            expected: fp,
                            found: 0,
                        })?;
                        let addr = self.space.malloc(ty, count)?;
                        let size = self.space.layout_of(ty)?.size * count;
                        self.msrlt.register_at(id, addr, size, ty, count);
                        self.stats.blocks_allocated += 1;
                        self.tracer
                            .instant_args("restore.alloc", &[("bytes", size as f64)]);
                        self.push_fill(stack, addr, ty, count)?;
                        addr
                    }
                };
                Ok(self.space.elem_addr(addr, leaf_idx)?)
            }
            t => Err(CoreError::BadTag(t)),
        }
    }

    fn push_fill(
        &mut self,
        stack: &mut Vec<Cursor>,
        addr: u64,
        ty: TypeId,
        count: u64,
    ) -> Result<(), CoreError> {
        self.stats.blocks_restored += 1;
        self.tracer
            .instant_args("restore.block", &[("count", count as f64)]);
        let plan = self.space.plan_for(ty)?;
        if self.skim {
            self.filled.push((addr, plan.size * count));
        }
        if !plan.has_pointers {
            // The stream inlines the whole block right here; decode it
            // now so the parent cursor resumes at the right offset.
            return self.decode_block_bulk(addr, &plan, count);
        }
        stack.push(Cursor {
            block_addr: addr,
            plan,
            count,
            elem_idx: 0,
            op_idx: 0,
        });
        Ok(())
    }
}

fn get_id(dec: &mut Dec<'_>) -> Result<LogicalId, CoreError> {
    let group = dec.get_u32()?;
    let index = dec.get_u32()?;
    Ok(LogicalId { group, index })
}

/// Decode one scalar from its machine-independent XDR form.
fn get_scalar_xdr(dec: &mut Dec<'_>, kind: CScalar) -> Result<ScalarValue, CoreError> {
    Ok(match kind.xdr_form() {
        XdrForm::Int => ScalarValue::Int(dec.get_i32()? as i64),
        XdrForm::UInt => ScalarValue::Uint(dec.get_u32()? as u64),
        XdrForm::Hyper => ScalarValue::Int(dec.get_i64()?),
        XdrForm::UHyper => ScalarValue::Uint(dec.get_u64()?),
        XdrForm::Float => ScalarValue::F32(dec.get_f32()?),
        XdrForm::Double => ScalarValue::F64(dec.get_f64()?),
        XdrForm::LogicalPointer => unreachable!("pointers use PTR_* tags"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;
    use hpm_arch::Architecture;
    use hpm_memory::BlockInfo;
    use hpm_types::Field;

    /// Build "the same program image" on a given machine: globals
    /// `int a; int *b; struct node *head;` — returns (space, msrlt,
    /// [a, b, head]).
    fn program(arch: Architecture) -> (AddressSpace, Msrlt, [u64; 3]) {
        let mut space = AddressSpace::new(arch);
        let node = space.types_mut().declare_struct("node");
        let pnode = space.types_mut().pointer_to(node);
        let fl = space.types_mut().float();
        space
            .types_mut()
            .define_struct(
                node,
                vec![Field::new("data", fl), Field::new("link", pnode)],
            )
            .unwrap();
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let a = space.define_global("a", int, 1).unwrap();
        let b = space.define_global("b", pi, 1).unwrap();
        let head = space.define_global("head", pnode, 1).unwrap();
        let mut msrlt = Msrlt::new();
        for info in space.block_infos() {
            msrlt.register(&info);
        }
        (space, msrlt, [a, b, head])
    }

    fn reg(space: &AddressSpace, msrlt: &mut Msrlt, addr: u64) {
        let info: BlockInfo = space.info_at(addr).unwrap();
        msrlt.register(&info);
    }

    #[test]
    fn scalar_and_pointer_roundtrip_heterogeneous() {
        // DEC (little-endian) → SPARC (big-endian).
        let (mut src, mut src_lt, [a, b, _]) = program(Architecture::dec5000());
        src.store_int(a, -1234).unwrap();
        src.store_ptr(b, a).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(a).unwrap();
        c.save_variable(b).unwrap();
        let (payload, _) = c.finish();

        let (mut dst, mut dst_lt, [da, db, _]) = program(Architecture::sparc20());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(da).unwrap();
        r.restore_variable(db).unwrap();
        r.finish().unwrap();
        assert_eq!(dst.load_int(da).unwrap(), -1234);
        assert_eq!(
            dst.load_ptr(db).unwrap(),
            da,
            "pointer retargeted to dest's a"
        );
    }

    #[test]
    fn heap_list_roundtrip() {
        let (mut src, mut src_lt, [_, _, head]) = program(Architecture::dec5000());
        let node = src.types().struct_by_name("node").unwrap();
        // Build head → n1 → n2 → NULL with data 1.5, 2.5.
        let n1 = src.malloc(node, 1).unwrap();
        reg(&src, &mut src_lt, n1);
        let n2 = src.malloc(node, 1).unwrap();
        reg(&src, &mut src_lt, n2);
        let d1 = src.elem_addr(n1, 0).unwrap();
        let l1 = src.elem_addr(n1, 1).unwrap();
        let d2 = src.elem_addr(n2, 0).unwrap();
        src.store_f64(d1, 1.5).unwrap();
        src.store_f64(d2, 2.5).unwrap();
        src.store_ptr(l1, n2).unwrap();
        src.store_ptr(head, n1).unwrap();

        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(head).unwrap();
        let (payload, cs) = c.finish();
        assert_eq!(cs.blocks_saved, 3); // head, n1, n2

        let (mut dst, mut dst_lt, [_, _, dhead]) = program(Architecture::x86_64_sim());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(dhead).unwrap();
        let rs = r.finish().unwrap();
        assert_eq!(rs.blocks_allocated, 2, "n1, n2 malloc'd on dest");

        let dn1 = dst.load_ptr(dhead).unwrap();
        assert_ne!(dn1, 0);
        let dd1 = dst.elem_addr(dn1, 0).unwrap();
        let dl1 = dst.elem_addr(dn1, 1).unwrap();
        assert_eq!(dst.load_f64(dd1).unwrap(), 1.5);
        let dn2 = dst.load_ptr(dl1).unwrap();
        let dd2 = dst.elem_addr(dn2, 0).unwrap();
        let dl2 = dst.elem_addr(dn2, 1).unwrap();
        assert_eq!(dst.load_f64(dd2).unwrap(), 2.5);
        assert_eq!(dst.load_ptr(dl2).unwrap(), 0, "list terminator survives");
    }

    #[test]
    fn shared_target_restores_shared() {
        // b and head_as_int_ptr both point at a: sharing must survive.
        let (mut src, mut src_lt, [a, b, _]) = program(Architecture::sparc20());
        let int = src.types_mut().int();
        let pi = src.types_mut().pointer_to(int);
        let c2 = src.define_global("c2", pi, 1).unwrap();
        reg(&src, &mut src_lt, c2);
        src.store_int(a, 7).unwrap();
        src.store_ptr(b, a).unwrap();
        src.store_ptr(c2, a).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(b).unwrap();
        c.save_variable(c2).unwrap();
        let (payload, _) = c.finish();

        let (mut dst, mut dst_lt, [da, db, _]) = program(Architecture::dec5000());
        let int = dst.types_mut().int();
        let pi = dst.types_mut().pointer_to(int);
        let dc2 = dst.define_global("c2", pi, 1).unwrap();
        reg(&dst, &mut dst_lt, dc2);
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(db).unwrap();
        r.restore_variable(dc2).unwrap();
        r.finish().unwrap();
        let p1 = dst.load_ptr(db).unwrap();
        let p2 = dst.load_ptr(dc2).unwrap();
        assert_eq!(p1, p2, "aliasing preserved");
        assert_eq!(p1, da);
        assert_eq!(dst.load_int(da).unwrap(), 7);
    }

    #[test]
    fn cycle_roundtrip() {
        let (mut src, mut src_lt, [_, _, head]) = program(Architecture::dec5000());
        let node = src.types().struct_by_name("node").unwrap();
        let n1 = src.malloc(node, 1).unwrap();
        reg(&src, &mut src_lt, n1);
        let l1 = src.elem_addr(n1, 1).unwrap();
        src.store_ptr(l1, n1).unwrap(); // self-loop
        src.store_ptr(head, n1).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(head).unwrap();
        let (payload, _) = c.finish();

        let (mut dst, mut dst_lt, [_, _, dhead]) = program(Architecture::sparc20());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(dhead).unwrap();
        r.finish().unwrap();
        let dn1 = dst.load_ptr(dhead).unwrap();
        let dl1 = dst.elem_addr(dn1, 1).unwrap();
        assert_eq!(dst.load_ptr(dl1).unwrap(), dn1, "self-loop preserved");
    }

    #[test]
    fn interior_pointer_roundtrip_across_pointer_widths() {
        // p points at arr[7]; migrate ILP32 → LP64 where the element's
        // byte offset differs but the leaf ordinal is identical.
        let (mut src, mut src_lt, _) = program(Architecture::sparc20());
        let int = src.types_mut().int();
        let pi = src.types_mut().pointer_to(int);
        let arr = src.define_global("arr", int, 10).unwrap();
        let p = src.define_global("p", pi, 1).unwrap();
        reg(&src, &mut src_lt, arr);
        reg(&src, &mut src_lt, p);
        for i in 0..10 {
            let e = src.elem_addr(arr, i).unwrap();
            src.store_int(e, (i * i) as i64).unwrap();
        }
        let t = src.elem_addr(arr, 7).unwrap();
        src.store_ptr(p, t).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(p).unwrap();
        c.save_variable(arr).unwrap();
        let (payload, _) = c.finish();

        let (mut dst, mut dst_lt, _) = program(Architecture::x86_64_sim());
        let int = dst.types_mut().int();
        let pi = dst.types_mut().pointer_to(int);
        let darr = dst.define_global("arr", int, 10).unwrap();
        let dp = dst.define_global("p", pi, 1).unwrap();
        reg(&dst, &mut dst_lt, darr);
        reg(&dst, &mut dst_lt, dp);
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(dp).unwrap();
        r.restore_variable(darr).unwrap();
        r.finish().unwrap();
        let got = dst.load_ptr(dp).unwrap();
        assert_eq!(got, dst.elem_addr(darr, 7).unwrap());
        assert_eq!(dst.load_int(got).unwrap(), 49);
    }

    #[test]
    fn type_mismatch_detected() {
        let (mut src, mut src_lt, [a, _, _]) = program(Architecture::dec5000());
        src.store_int(a, 1).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(a).unwrap();
        let (payload, _) = c.finish();

        // Destination program declares `a` as double — different layout.
        let mut dst = AddressSpace::new(Architecture::sparc20());
        let d = dst.types_mut().double();
        let da = dst.define_global("a", d, 1).unwrap();
        let mut dst_lt = Msrlt::new();
        for info in dst.block_infos() {
            dst_lt.register(&info);
        }
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        assert!(matches!(
            r.restore_variable(da),
            Err(CoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_detected() {
        let (mut src, mut src_lt, [a, _, _]) = program(Architecture::dec5000());
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_variable(a).unwrap();
        let (mut payload, _) = c.finish();
        payload.extend_from_slice(&[0, 0, 0, 0]);

        let (mut dst, mut dst_lt, [da, _, _]) = program(Architecture::sparc20());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        r.restore_variable(da).unwrap();
        assert!(matches!(
            r.finish(),
            Err(CoreError::TrailingBytes {
                bytes: 4,
                chunk: None
            })
        ));
    }

    #[test]
    fn restore_pointer_returns_translated_address() {
        let (mut src, mut src_lt, [a, _, _]) = program(Architecture::dec5000());
        src.store_int(a, 99).unwrap();
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_pointer(a).unwrap(); // a pointer rvalue to global `a`
        let (payload, _) = c.finish();

        let (mut dst, mut dst_lt, [da, _, _]) = program(Architecture::sparc20());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        let p = r.restore_pointer().unwrap();
        r.finish().unwrap();
        assert_eq!(p, da);
        assert_eq!(dst.load_int(p).unwrap(), 99);
    }

    #[test]
    fn null_restore_pointer() {
        let (mut src, mut src_lt, _) = program(Architecture::dec5000());
        let mut c = Collector::new(&mut src, &mut src_lt);
        c.save_pointer(0).unwrap();
        let (payload, _) = c.finish();
        let (mut dst, mut dst_lt, _) = program(Architecture::sparc20());
        let mut r = Restorer::new(&mut dst, &mut dst_lt, &payload);
        assert_eq!(r.restore_pointer().unwrap(), 0);
        r.finish().unwrap();
    }
}
