//! Pull-based chunked payload for streaming restoration.
//!
//! The pipelined migration path delivers the memory-state payload as a
//! sequence of chunks rather than one contiguous buffer. [`ChunkSource`]
//! abstracts where chunks come from (a network channel, a test vector);
//! [`ChunkPayload`] reassembles them into a sequential byte stream the
//! [`Restorer`](crate::Restorer) can decode while later chunks are still
//! in flight.
//!
//! The payload keeps only a small window buffered: bytes already decoded
//! are compacted away on the next pull, so memory stays bounded by a few
//! chunks regardless of image size.

use crate::CoreError;
use std::time::{Duration, Instant};

/// A producer of payload chunks, pulled in stream order.
pub trait ChunkSource {
    /// The next chunk, `None` once the stream has ended cleanly.
    /// Blocking until a chunk arrives is expected; the time spent is
    /// accounted as stall by [`ChunkPayload`].
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, CoreError>;
}

/// An in-memory [`ChunkSource`] over a fixed list of chunks (tests and
/// replay tooling).
pub struct VecChunks {
    chunks: std::collections::VecDeque<Vec<u8>>,
}

impl VecChunks {
    /// Source yielding `chunks` in order.
    pub fn new(chunks: Vec<Vec<u8>>) -> Self {
        VecChunks {
            chunks: chunks.into(),
        }
    }
}

impl ChunkSource for VecChunks {
    fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, CoreError> {
        Ok(self.chunks.pop_front())
    }
}

/// Sequential decoder state over a [`ChunkSource`].
///
/// Offers the scalar getters the restorer needs; each getter pulls
/// chunks on demand and fails with [`CoreError::TruncatedChunk`] — which
/// names the offending chunk index — if the source runs dry mid-item.
pub struct ChunkPayload {
    src: Box<dyn ChunkSource + Send>,
    buf: Vec<u8>,
    /// Read offset into `buf`.
    pos: usize,
    /// Absolute stream position of `buf[0]`.
    consumed_base: u64,
    /// `(absolute start offset, chunk index)` per received chunk.
    boundaries: Vec<(u64, u64)>,
    /// Absolute stream offset one past the last received byte.
    total_received: u64,
    /// Index the next pulled chunk will get.
    next_idx: u64,
    chunks_pulled: u64,
    eof: bool,
    stall: Duration,
}

impl ChunkPayload {
    /// Payload fed entirely by `src`.
    pub fn new(src: Box<dyn ChunkSource + Send>) -> Self {
        ChunkPayload {
            src,
            buf: Vec::new(),
            pos: 0,
            consumed_base: 0,
            boundaries: Vec::new(),
            total_received: 0,
            next_idx: 0,
            chunks_pulled: 0,
            eof: false,
            stall: Duration::ZERO,
        }
    }

    /// Payload whose first bytes arrived out-of-band (the tail of the
    /// image-prefix chunk); they count as chunk 0.
    pub fn with_initial(src: Box<dyn ChunkSource + Send>, initial: Vec<u8>) -> Self {
        let mut cp = Self::new(src);
        if !initial.is_empty() {
            cp.boundaries.push((0, 0));
            cp.total_received = initial.len() as u64;
            cp.buf = initial;
        }
        cp.next_idx = 1;
        cp
    }

    /// Absolute stream offset of the next unread byte.
    pub fn position(&self) -> u64 {
        self.consumed_base + self.pos as u64
    }

    /// Chunks pulled from the source so far.
    pub fn chunks_pulled(&self) -> u64 {
        self.chunks_pulled
    }

    /// Total time spent waiting on the source for the next chunk.
    pub fn stall_time(&self) -> Duration {
        self.stall
    }

    /// Bytes received but not yet consumed.
    pub fn buffered_remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Chunk index containing the byte at the current position (or the
    /// last chunk, if the position is at end of stream).
    pub fn current_chunk(&self) -> u64 {
        let pos = self.position();
        let i = self.boundaries.partition_point(|&(start, _)| start <= pos);
        match i.checked_sub(1) {
            Some(i) => self.boundaries[i].1,
            None => 0,
        }
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.consumed_base += self.pos as u64;
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Pull one chunk; `Ok(false)` once the source is exhausted.
    fn pull(&mut self) -> Result<bool, CoreError> {
        if self.eof {
            return Ok(false);
        }
        let t0 = Instant::now();
        let chunk = self.src.next_chunk()?;
        self.stall += t0.elapsed();
        match chunk {
            None => {
                self.eof = true;
                Ok(false)
            }
            Some(c) => {
                self.compact();
                self.boundaries.push((self.total_received, self.next_idx));
                self.total_received += c.len() as u64;
                self.buf.extend_from_slice(&c);
                self.chunks_pulled += 1;
                self.next_idx += 1;
                Ok(true)
            }
        }
    }

    fn ensure(&mut self, n: usize) -> Result<(), CoreError> {
        while self.buffered_remaining() < n {
            if !self.pull()? {
                return Err(CoreError::TruncatedChunk {
                    chunk: self.next_idx,
                    needed: n,
                    available: self.buffered_remaining(),
                });
            }
        }
        Ok(())
    }

    /// Read `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&[u8], CoreError> {
        self.ensure(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// 4-byte big-endian unsigned integer.
    pub fn get_u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// 4-byte big-endian signed integer.
    pub fn get_i32(&mut self) -> Result<i32, CoreError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// 8-byte big-endian unsigned integer.
    pub fn get_u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// 8-byte big-endian signed integer.
    pub fn get_i64(&mut self) -> Result<i64, CoreError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// IEEE-754 single.
    pub fn get_f32(&mut self) -> Result<f32, CoreError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// IEEE-754 double.
    pub fn get_f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Whether any payload bytes remain (pulls past empty chunks). Used
    /// for end-of-stream trailing-byte detection.
    pub fn has_remaining(&mut self) -> Result<bool, CoreError> {
        while self.buffered_remaining() == 0 {
            if !self.pull()? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload_over(chunks: Vec<Vec<u8>>) -> ChunkPayload {
        ChunkPayload::new(Box::new(VecChunks::new(chunks)))
    }

    #[test]
    fn reads_across_chunk_boundaries() {
        // A u64 split 3/5 across two chunks.
        let whole = 0x0102_0304_0506_0708u64.to_be_bytes();
        let mut cp = payload_over(vec![whole[..3].to_vec(), whole[3..].to_vec()]);
        assert_eq!(cp.get_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(cp.position(), 8);
        assert!(!cp.has_remaining().unwrap());
    }

    #[test]
    fn empty_chunks_are_skipped() {
        let mut cp = payload_over(vec![vec![], vec![0, 0, 0, 5], vec![], vec![]]);
        assert_eq!(cp.get_u32().unwrap(), 5);
        assert!(!cp.has_remaining().unwrap());
    }

    #[test]
    fn truncation_names_the_chunk() {
        let mut cp = payload_over(vec![vec![0, 0, 0, 1], vec![0, 0]]);
        cp.get_u32().unwrap();
        match cp.get_u32() {
            Err(CoreError::TruncatedChunk {
                chunk,
                needed,
                available,
            }) => {
                assert_eq!(chunk, 2, "missing bytes would be in chunk 2");
                assert_eq!(needed, 4);
                assert_eq!(available, 2);
            }
            other => panic!("expected TruncatedChunk, got {other:?}"),
        }
    }

    #[test]
    fn initial_bytes_count_as_chunk_zero() {
        let src = Box::new(VecChunks::new(vec![vec![5, 6, 7, 8]]));
        let mut cp = ChunkPayload::with_initial(src, vec![1, 2, 3, 4]);
        assert_eq!(cp.get_u32().unwrap(), 0x0102_0304);
        assert_eq!(cp.current_chunk(), 0);
        assert_eq!(cp.get_u32().unwrap(), 0x0506_0708);
        assert_eq!(cp.position(), 8);
    }

    #[test]
    fn current_chunk_tracks_position() {
        let mut cp = payload_over(vec![vec![0; 4], vec![0; 4], vec![0; 4]]);
        cp.get_u32().unwrap();
        assert_eq!(cp.current_chunk(), 0);
        cp.get_u32().unwrap();
        assert_eq!(cp.current_chunk(), 1);
        cp.get_u32().unwrap();
        assert_eq!(cp.current_chunk(), 2);
    }

    #[test]
    fn compaction_bounds_the_buffer() {
        let chunks: Vec<Vec<u8>> = (0..64).map(|_| vec![0u8; 1024]).collect();
        let mut cp = payload_over(chunks);
        for _ in 0..(64 * 1024 / 8) {
            cp.get_u64().unwrap();
        }
        assert!(cp.buf.len() <= 2 * 1024, "buffer must not accumulate");
        assert_eq!(cp.position(), 64 * 1024);
    }
}
