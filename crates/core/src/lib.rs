//! # hpm-core — the paper's contribution: data collection & restoration
//!
//! This crate implements §3 of *"Data Collection and Restoration for
//! Heterogeneous Process Migration"* (Chanchio & Sun, IPPS 2001):
//!
//! * [`msrlt`] — the **MSR Lookup Table**: assigns every memory block a
//!   machine-independent logical identification `(group, index)`, and
//!   translates addresses in both directions. Address→block lookup is a
//!   genuine `O(log n)` search (with instrumented comparison counts);
//!   id→address is `O(1)` table indexing. This asymmetry produces the
//!   paper's §4.2 result: collection carries an `O(n log n)` MSRLT term,
//!   restoration only `O(n)`.
//! * [`collect`] — the MSRM saving half: `Save_variable` / `Save_pointer`.
//!   `Save_pointer` drives a depth-first traversal of the MSR graph
//!   (implemented with an explicit stack, so million-node lists cannot
//!   overflow), marking visited blocks so nothing is saved twice, and
//!   rewriting every pointer into *(pointer header, offset)* form.
//! * [`restore`] — the restoring half: `Restore_variable` /
//!   `Restore_pointer`, rebuilding blocks on the destination machine and
//!   translating logical pointers back into local raw addresses.
//! * [`graph`] — an explicit MSR graph snapshot `G = (V, E)` with DOT
//!   export, used to validate examples like the paper's Figure 1.
//! * [`image`] — the migration-image framing (header + sections) shared
//!   by both sides.
//!
//! The wire format rides on [`hpm_xdr`] and is fully machine-independent:
//! the same stream produced on a little-endian ILP32 machine restores on a
//! big-endian LP64 machine.

pub mod audit;
pub mod collect;
pub mod fingerprint;
pub mod graph;
pub mod image;
pub mod msrlt;
pub mod parallel;
pub mod restore;
pub mod restore_parallel;
pub mod stream;

pub use audit::{audit_registry, RegistryAuditStats, RegistryFinding};
pub use collect::{ChunkSink, CollectStats, Collector, MarkStrategy, TranslationMode};
pub use fingerprint::type_fingerprint;
pub use graph::{MsrEdge, MsrGraph, MsrVertex};
pub use image::{ImageHeader, IMAGE_MAGIC, IMAGE_VERSION};
pub use msrlt::{LogicalId, Msrlt, MsrltEntry, MsrltStats, SearchStrategy};
pub use parallel::{collect_parallel, collect_parallel_flight, ShardReport, SharedVisited};
pub use restore::{RestoreStats, Restorer};
pub use restore_parallel::{restore_parallel, restore_parallel_flight, restore_parallel_section};
pub use stream::{ChunkPayload, ChunkSource};

use hpm_memory::MemError;
use hpm_xdr::XdrError;

/// Errors across collection and restoration.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying address-space failure.
    Mem(String),
    /// Underlying XDR failure.
    Xdr(XdrError),
    /// A pointer referred to memory not registered in the MSRLT — a
    /// migration-unsafe pointer (dangling, foreign, or forged).
    UnregisteredPointer(u64),
    /// Stream and receiver disagree about a block's type.
    TypeMismatch {
        /// Logical id of the offending block.
        id: LogicalId,
        /// Fingerprint carried in the stream.
        expected: u64,
        /// Fingerprint of the local type.
        found: u64,
    },
    /// Stream carried an unknown tag; the streams are out of step.
    BadTag(u32),
    /// A logical id in the stream could not be matched on this side.
    UnknownId(LogicalId),
    /// Save/restore call sequences diverged between the two processes.
    SequenceMismatch(String),
    /// A streamed payload ended mid-item: the producer stopped (or a
    /// chunk was lost) before the stream grammar was complete.
    TruncatedChunk {
        /// Index of the chunk in which the stream ran dry.
        chunk: u64,
        /// Bytes needed to finish the current item.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The chunk source or sink feeding a streamed migration failed —
    /// a transport-level failure surfaced into the stream layer.
    Source(String),
    /// Payload bytes remained after the stream grammar completed.
    TrailingBytes {
        /// Number of leftover bytes.
        bytes: usize,
        /// Chunk index holding the first leftover byte (streamed
        /// payloads only; `None` for monolithic images).
        chunk: Option<u64>,
    },
}

impl From<MemError> for CoreError {
    fn from(e: MemError) -> Self {
        CoreError::Mem(e.to_string())
    }
}

impl From<XdrError> for CoreError {
    fn from(e: XdrError) -> Self {
        CoreError::Xdr(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Mem(m) => write!(f, "memory error: {m}"),
            CoreError::Xdr(e) => write!(f, "xdr error: {e}"),
            CoreError::UnregisteredPointer(a) => {
                write!(
                    f,
                    "pointer {a:#x} does not refer to a registered memory block"
                )
            }
            CoreError::TypeMismatch {
                id,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for block {id}: stream {expected:#x} != local {found:#x}"
            ),
            CoreError::BadTag(t) => write!(f, "unknown stream tag {t}"),
            CoreError::UnknownId(id) => write!(f, "logical id {id} unknown on this machine"),
            CoreError::SequenceMismatch(m) => write!(f, "save/restore sequence mismatch: {m}"),
            CoreError::TruncatedChunk {
                chunk,
                needed,
                available,
            } => write!(
                f,
                "payload truncated in chunk {chunk}: needed {needed} bytes, {available} available"
            ),
            CoreError::Source(m) => write!(f, "chunk stream transport error: {m}"),
            CoreError::TrailingBytes { bytes, chunk } => match chunk {
                Some(c) => write!(
                    f,
                    "{bytes} payload bytes after end of stream (starting in chunk {c})"
                ),
                None => write!(f, "{bytes} payload bytes after end of stream"),
            },
        }
    }
}

impl std::error::Error for CoreError {}
