//! Explicit MSR graph snapshots: `G = (V, E)`.
//!
//! §3: "we model a snapshot of a program memory space as a graph
//! G = (V, E) … Each vertex in the graph represents a memory block,
//! whereas each edge represents a relationship between two memory blocks
//! when one of them contains a pointer."
//!
//! The collection machinery never materializes this graph (it traverses
//! implicitly); this module builds it explicitly for validation — e.g.
//! reproducing the paper's Figure 1 — and for visualization via DOT.

use crate::msrlt::{LogicalId, Msrlt};
use crate::CoreError;
use hpm_arch::CScalar;
use hpm_memory::AddressSpace;
use hpm_types::plan::PlanOp;

/// A vertex: one live memory block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrVertex {
    /// Logical id of the block.
    pub id: LogicalId,
    /// Start address.
    pub addr: u64,
    /// Display label (variable name or heap address).
    pub label: String,
    /// Segment name ("global" / "heap" / "stack").
    pub segment: String,
    /// Size in bytes.
    pub size: u64,
}

/// An edge: a non-NULL pointer stored in `from` referring into `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsrEdge {
    /// Source block.
    pub from: LogicalId,
    /// Byte offset within `from` where the pointer lives.
    pub from_offset: u64,
    /// Target block.
    pub to: LogicalId,
    /// Leaf ordinal within `to` that the pointer addresses.
    pub to_leaf: u64,
}

/// A snapshot of the process's MSR graph.
#[derive(Debug, Clone, Default)]
pub struct MsrGraph {
    /// All vertices, in address order.
    pub vertices: Vec<MsrVertex>,
    /// All edges, in (from, offset) order.
    pub edges: Vec<MsrEdge>,
}

impl MsrGraph {
    /// Snapshot the full graph of every registered block.
    ///
    /// Dangling pointers (non-NULL values that resolve to no registered
    /// block) produce [`CoreError::UnregisteredPointer`].
    pub fn snapshot(space: &mut AddressSpace, msrlt: &mut Msrlt) -> Result<Self, CoreError> {
        let mut g = MsrGraph::default();
        let entries: Vec<_> = msrlt
            .live_entries()
            .map(|e| (e.id, e.addr, e.ty, e.count, e.size))
            .collect();
        for &(id, addr, ty, count, size) in &entries {
            let block = space
                .block_at(addr)
                .ok_or(CoreError::UnregisteredPointer(addr))?;
            g.vertices.push(MsrVertex {
                id,
                addr,
                label: block.label(),
                segment: block.segment.to_string(),
                size,
            });
            let plan = space.plan_for(ty)?;
            for elem in 0..count {
                let elem_base = elem * plan.size;
                for op in &plan.ops {
                    if let PlanOp::PointerSlot { offset, .. } = op {
                        let at = addr + elem_base + offset;
                        let raw = {
                            let bytes = space.read_bytes(at, space.arch().pointer_size)?;
                            space.arch().decode_scalar(CScalar::Ptr, bytes).as_ptr()
                        };
                        if raw == 0 {
                            continue;
                        }
                        let (to, _) = msrlt
                            .lookup_addr(raw)
                            .ok_or(CoreError::UnregisteredPointer(raw))?;
                        let (to_leaf, _) = space.leaf_at_addr(raw)?;
                        g.edges.push(MsrEdge {
                            from: id,
                            from_offset: elem_base + offset,
                            to,
                            to_leaf,
                        });
                    }
                }
            }
        }
        g.vertices.sort_by_key(|v| v.addr);
        g.edges.sort_by_key(|e| (e.from, e.from_offset));
        Ok(g)
    }

    /// Vertices reachable from `roots` (the live-variable blocks), i.e.
    /// what a collection starting from those roots will transmit.
    pub fn reachable_from(&self, roots: &[LogicalId]) -> Vec<LogicalId> {
        let mut seen: std::collections::BTreeSet<LogicalId> = roots.iter().copied().collect();
        let mut work: Vec<LogicalId> = roots.to_vec();
        while let Some(v) = work.pop() {
            for e in self.edges.iter().filter(|e| e.from == v) {
                if seen.insert(e.to) {
                    work.push(e.to);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Graphviz DOT rendering, one cluster per segment (like Figure 1's
    /// global / heap / stack grouping).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph msr {\n  rankdir=LR;\n  node [shape=box];\n");
        for seg in ["global", "heap", "stack"] {
            let _ = writeln!(out, "  subgraph cluster_{seg} {{\n    label=\"{seg}\";");
            for v in self.vertices.iter().filter(|v| v.segment == seg) {
                let _ = writeln!(
                    out,
                    "    \"{}\" [label=\"{} ({} B)\\n{}\"];",
                    v.id, v.label, v.size, v.id
                );
            }
            let _ = writeln!(out, "  }}");
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"+{} → elem {}\"];",
                e.from, e.to, e.from_offset, e.to_leaf
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_types::Field;

    fn reg_all(space: &AddressSpace, msrlt: &mut Msrlt) {
        for info in space.block_infos() {
            if msrlt.lookup_addr(info.addr).is_none() {
                msrlt.register(&info);
            }
        }
    }

    #[test]
    fn simple_graph_shape() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let a = space.define_global("a", int, 1).unwrap();
        let b = space.define_global("b", pi, 1).unwrap();
        space.store_ptr(b, a).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        let g = MsrGraph::snapshot(&mut space, &mut msrlt).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let e = g.edges[0];
        assert_eq!(e.to_leaf, 0);
    }

    #[test]
    fn null_pointers_make_no_edges() {
        let mut space = AddressSpace::new(Architecture::sparc20());
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        space.define_global("p", pi, 1).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        let g = MsrGraph::snapshot(&mut space, &mut msrlt).unwrap();
        assert_eq!(g.vertex_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn reachability() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let node = space.types_mut().declare_struct("n");
        let pn = space.types_mut().pointer_to(node);
        let i = space.types_mut().int();
        space
            .types_mut()
            .define_struct(node, vec![Field::new("v", i), Field::new("next", pn)])
            .unwrap();
        let a = space.malloc(node, 1).unwrap();
        let b = space.malloc(node, 1).unwrap();
        let orphan = space.malloc(node, 1).unwrap();
        let la = space.elem_addr(a, 1).unwrap();
        space.store_ptr(la, b).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        let g = MsrGraph::snapshot(&mut space, &mut msrlt).unwrap();
        let ida = msrlt.lookup_addr(a).unwrap().0;
        let idb = msrlt.lookup_addr(b).unwrap().0;
        let ido = msrlt.lookup_addr(orphan).unwrap().0;
        let reach = g.reachable_from(&[ida]);
        assert!(reach.contains(&ida));
        assert!(reach.contains(&idb));
        assert!(!reach.contains(&ido), "orphan not reachable");
    }

    #[test]
    fn dot_output_mentions_segments_and_edges() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let a = space.define_global("a", int, 1).unwrap();
        let b = space.define_global("b", pi, 1).unwrap();
        space.store_ptr(b, a).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        let g = MsrGraph::snapshot(&mut space, &mut msrlt).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("digraph msr"));
        assert!(dot.contains("cluster_global"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn dangling_pointer_fails_snapshot() {
        let mut space = AddressSpace::new(Architecture::dec5000());
        let int = space.types_mut().int();
        let pi = space.types_mut().pointer_to(int);
        let b = space.define_global("b", pi, 1).unwrap();
        space.store_ptr(b, 0xDEAD).unwrap();
        let mut msrlt = Msrlt::new();
        reg_all(&space, &mut msrlt);
        assert!(matches!(
            MsrGraph::snapshot(&mut space, &mut msrlt),
            Err(CoreError::UnregisteredPointer(0xDEAD))
        ));
    }
}
