//! # hpm-xdr — External Data Representation codec
//!
//! The second software layer of the paper's stack (§4): "XDR routines are
//! used to translate primitive data values such as char, int, float of a
//! specific architecture into a machine-independent format."
//!
//! This is a self-contained implementation of the XDR wire format
//! (RFC 1832 subset): all quantities are big-endian and every item is
//! padded to a multiple of four bytes. The MSRM library (`hpm-core`)
//! builds its migration-image stream on top of these primitives, exactly
//! as the paper's prototype sat on Sun's XDR library.
//!
//! ```
//! use hpm_xdr::{XdrEncoder, XdrDecoder};
//!
//! let mut enc = XdrEncoder::new();
//! enc.put_i32(-7);
//! enc.put_f64(2.5);
//! enc.put_string("hello");
//! let bytes = enc.into_bytes();
//!
//! let mut dec = XdrDecoder::new(&bytes);
//! assert_eq!(dec.get_i32().unwrap(), -7);
//! assert_eq!(dec.get_f64().unwrap(), 2.5);
//! assert_eq!(dec.get_string().unwrap(), "hello");
//! assert!(dec.is_empty());
//! ```

mod decode;
mod encode;
mod error;

pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::XdrError;

/// Round a byte count up to the XDR 4-byte boundary.
pub fn padded_len(n: usize) -> usize {
    (n + 3) & !3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_len_values() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 4);
        assert_eq!(padded_len(4), 4);
        assert_eq!(padded_len(5), 8);
        assert_eq!(padded_len(8), 8);
    }

    /// Golden vectors from RFC 1832 §3: the canonical encodings.
    #[test]
    fn rfc1832_golden_int() {
        let mut e = XdrEncoder::new();
        e.put_i32(-2);
        assert_eq!(e.into_bytes(), vec![0xFF, 0xFF, 0xFF, 0xFE]);
    }

    #[test]
    fn rfc1832_golden_hyper() {
        let mut e = XdrEncoder::new();
        e.put_i64(-1);
        assert_eq!(e.into_bytes(), vec![0xFF; 8]);
    }

    #[test]
    fn rfc1832_golden_string() {
        // "sillyprog" from the RFC's example: length 9 + 3 pad bytes.
        let mut e = XdrEncoder::new();
        e.put_string("sillyprog");
        let b = e.into_bytes();
        assert_eq!(b.len(), 16);
        assert_eq!(&b[0..4], &[0, 0, 0, 9]);
        assert_eq!(&b[4..13], b"sillyprog");
        assert_eq!(&b[13..16], &[0, 0, 0]);
    }

    #[test]
    fn float_is_ieee_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_f32(1.0);
        assert_eq!(e.into_bytes(), vec![0x3F, 0x80, 0x00, 0x00]);
    }

    #[test]
    fn double_is_ieee_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_f64(1.0);
        assert_eq!(e.into_bytes(), vec![0x3F, 0xF0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn full_roundtrip_mixed() {
        let mut e = XdrEncoder::new();
        e.put_bool(true);
        e.put_i32(i32::MIN);
        e.put_u32(u32::MAX);
        e.put_i64(i64::MIN);
        e.put_u64(u64::MAX);
        e.put_f32(-0.0);
        e.put_f64(f64::MIN_POSITIVE);
        e.put_opaque_var(&[1, 2, 3]);
        e.put_opaque_fixed(&[9, 8, 7, 6, 5]);
        e.put_string("μ unicode ok");
        let bytes = e.into_bytes();
        assert_eq!(bytes.len() % 4, 0);

        let mut d = XdrDecoder::new(&bytes);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_i32().unwrap(), i32::MIN);
        assert_eq!(d.get_u32().unwrap(), u32::MAX);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(d.get_opaque_var().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_opaque_fixed(5).unwrap(), vec![9, 8, 7, 6, 5]);
        assert_eq!(d.get_string().unwrap(), "μ unicode ok");
        assert!(d.is_empty());
    }

    #[test]
    fn nan_payload_preserved() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut e = XdrEncoder::new();
        e.put_f64(weird);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_f64().unwrap().to_bits(), weird.to_bits());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn i32_roundtrip(v in any::<i32>()) {
            let mut e = XdrEncoder::new();
            e.put_i32(v);
            let b = e.into_bytes();
            prop_assert_eq!(b.len(), 4);
            prop_assert_eq!(XdrDecoder::new(&b).get_i32().unwrap(), v);
        }

        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            let mut e = XdrEncoder::new();
            e.put_u64(v);
            prop_assert_eq!(XdrDecoder::new(&e.into_bytes()).get_u64().unwrap(), v);
        }

        #[test]
        fn f64_bits_roundtrip(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            let mut e = XdrEncoder::new();
            e.put_f64(v);
            let got = XdrDecoder::new(&e.into_bytes()).get_f64().unwrap();
            prop_assert_eq!(got.to_bits(), bits);
        }

        #[test]
        fn opaque_var_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut e = XdrEncoder::new();
            e.put_opaque_var(&data);
            let b = e.into_bytes();
            prop_assert_eq!(b.len() % 4, 0);
            prop_assert_eq!(XdrDecoder::new(&b).get_opaque_var().unwrap(), data);
        }

        #[test]
        fn string_roundtrip(s in "\\PC{0,40}") {
            let mut e = XdrEncoder::new();
            e.put_string(&s);
            prop_assert_eq!(XdrDecoder::new(&e.into_bytes()).get_string().unwrap(), s);
        }

        #[test]
        fn mixed_sequence_roundtrip(items in proptest::collection::vec(any::<(i32, u64, f32)>(), 0..30)) {
            let mut e = XdrEncoder::new();
            for (a, b, c) in &items {
                e.put_i32(*a);
                e.put_u64(*b);
                e.put_f32(*c);
            }
            let bytes = e.into_bytes();
            let mut d = XdrDecoder::new(&bytes);
            for (a, b, c) in &items {
                prop_assert_eq!(d.get_i32().unwrap(), *a);
                prop_assert_eq!(d.get_u64().unwrap(), *b);
                prop_assert_eq!(d.get_f32().unwrap().to_bits(), c.to_bits());
            }
            prop_assert!(d.is_empty());
        }

        #[test]
        fn i32_array_roundtrip(v in proptest::collection::vec(any::<i32>(), 0..64)) {
            let mut e = XdrEncoder::new();
            e.put_i32_array(&v);
            prop_assert_eq!(XdrDecoder::new(&e.into_bytes()).get_i32_array().unwrap(), v);
        }

        #[test]
        fn f64_array_roundtrip(v in proptest::collection::vec(any::<f64>(), 0..64)) {
            let mut e = XdrEncoder::new();
            e.put_f64_array(&v);
            let got = XdrDecoder::new(&e.into_bytes()).get_f64_array().unwrap();
            prop_assert_eq!(got.len(), v.len());
            for (a, b) in got.iter().zip(&v) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn truncated_input_errors_not_panics(v in any::<u64>(), cut in 0usize..8) {
            let mut e = XdrEncoder::new();
            e.put_u64(v);
            let b = e.into_bytes();
            let mut d = XdrDecoder::new(&b[..cut]);
            prop_assert!(d.get_u64().is_err());
        }
    }
}
