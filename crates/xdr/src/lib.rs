//! # hpm-xdr — External Data Representation codec
//!
//! The second software layer of the paper's stack (§4): "XDR routines are
//! used to translate primitive data values such as char, int, float of a
//! specific architecture into a machine-independent format."
//!
//! This is a self-contained implementation of the XDR wire format
//! (RFC 1832 subset): all quantities are big-endian and every item is
//! padded to a multiple of four bytes. The MSRM library (`hpm-core`)
//! builds its migration-image stream on top of these primitives, exactly
//! as the paper's prototype sat on Sun's XDR library.
//!
//! ```
//! use hpm_xdr::{XdrEncoder, XdrDecoder};
//!
//! let mut enc = XdrEncoder::new();
//! enc.put_i32(-7);
//! enc.put_f64(2.5);
//! enc.put_string("hello");
//! let bytes = enc.into_bytes();
//!
//! let mut dec = XdrDecoder::new(&bytes);
//! assert_eq!(dec.get_i32().unwrap(), -7);
//! assert_eq!(dec.get_f64().unwrap(), 2.5);
//! assert_eq!(dec.get_string().unwrap(), "hello");
//! assert!(dec.is_empty());
//! ```

pub mod chunk;
pub mod compress;
mod decode;
mod encode;
mod error;

pub use chunk::{
    crc32, frame_chunk, frame_chunk_v2, frame_chunk_v3, frame_control, unframe_chunk,
    unframe_chunk_any, unframe_control, ChunkFrame, Control, CHUNK_FLAG_COMPRESSED,
    CHUNK_FLAG_LAST, CHUNK_MAGIC, CHUNK_MAGIC_V2, CHUNK_MAGIC_V3, CONTROL_MAGIC,
};
pub use compress::{compress, decompress};
pub use decode::XdrDecoder;
pub use encode::XdrEncoder;
pub use error::XdrError;

/// Round a byte count up to the XDR 4-byte boundary.
pub fn padded_len(n: usize) -> usize {
    (n + 3) & !3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_len_values() {
        assert_eq!(padded_len(0), 0);
        assert_eq!(padded_len(1), 4);
        assert_eq!(padded_len(4), 4);
        assert_eq!(padded_len(5), 8);
        assert_eq!(padded_len(8), 8);
    }

    /// Golden vectors from RFC 1832 §3: the canonical encodings.
    #[test]
    fn rfc1832_golden_int() {
        let mut e = XdrEncoder::new();
        e.put_i32(-2);
        assert_eq!(e.into_bytes(), vec![0xFF, 0xFF, 0xFF, 0xFE]);
    }

    #[test]
    fn rfc1832_golden_hyper() {
        let mut e = XdrEncoder::new();
        e.put_i64(-1);
        assert_eq!(e.into_bytes(), vec![0xFF; 8]);
    }

    #[test]
    fn rfc1832_golden_string() {
        // "sillyprog" from the RFC's example: length 9 + 3 pad bytes.
        let mut e = XdrEncoder::new();
        e.put_string("sillyprog");
        let b = e.into_bytes();
        assert_eq!(b.len(), 16);
        assert_eq!(&b[0..4], &[0, 0, 0, 9]);
        assert_eq!(&b[4..13], b"sillyprog");
        assert_eq!(&b[13..16], &[0, 0, 0]);
    }

    #[test]
    fn float_is_ieee_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_f32(1.0);
        assert_eq!(e.into_bytes(), vec![0x3F, 0x80, 0x00, 0x00]);
    }

    #[test]
    fn double_is_ieee_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_f64(1.0);
        assert_eq!(e.into_bytes(), vec![0x3F, 0xF0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn full_roundtrip_mixed() {
        let mut e = XdrEncoder::new();
        e.put_bool(true);
        e.put_i32(i32::MIN);
        e.put_u32(u32::MAX);
        e.put_i64(i64::MIN);
        e.put_u64(u64::MAX);
        e.put_f32(-0.0);
        e.put_f64(f64::MIN_POSITIVE);
        e.put_opaque_var(&[1, 2, 3]);
        e.put_opaque_fixed(&[9, 8, 7, 6, 5]);
        e.put_string("μ unicode ok");
        let bytes = e.into_bytes();
        assert_eq!(bytes.len() % 4, 0);

        let mut d = XdrDecoder::new(&bytes);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_i32().unwrap(), i32::MIN);
        assert_eq!(d.get_u32().unwrap(), u32::MAX);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(d.get_opaque_var().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_opaque_fixed(5).unwrap(), vec![9, 8, 7, 6, 5]);
        assert_eq!(d.get_string().unwrap(), "μ unicode ok");
        assert!(d.is_empty());
    }

    #[test]
    fn nan_payload_preserved() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut e = XdrEncoder::new();
        e.put_f64(weird);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.get_f64().unwrap().to_bits(), weird.to_bits());
    }
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    /// Deterministic splitmix64 — replaces the external RNG for the
    /// seed-driven roundtrip sweeps below.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn i32_roundtrip() {
        let mut s = 1u64;
        let mut cases: Vec<i32> = vec![0, 1, -1, i32::MIN, i32::MAX];
        cases.extend((0..200).map(|_| next(&mut s) as i32));
        for v in cases {
            let mut e = XdrEncoder::new();
            e.put_i32(v);
            let b = e.into_bytes();
            assert_eq!(b.len(), 4);
            assert_eq!(XdrDecoder::new(&b).get_i32().unwrap(), v);
        }
    }

    #[test]
    fn u64_roundtrip() {
        let mut s = 2u64;
        let mut cases: Vec<u64> = vec![0, 1, u64::MAX];
        cases.extend((0..200).map(|_| next(&mut s)));
        for v in cases {
            let mut e = XdrEncoder::new();
            e.put_u64(v);
            assert_eq!(XdrDecoder::new(&e.into_bytes()).get_u64().unwrap(), v);
        }
    }

    #[test]
    fn f64_bits_roundtrip() {
        let mut s = 3u64;
        let mut cases: Vec<u64> = vec![
            0,
            f64::NAN.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            (-0.0f64).to_bits(),
            0x7FF8_0000_DEAD_BEEF, // NaN with payload
        ];
        cases.extend((0..200).map(|_| next(&mut s)));
        for bits in cases {
            let v = f64::from_bits(bits);
            let mut e = XdrEncoder::new();
            e.put_f64(v);
            let got = XdrDecoder::new(&e.into_bytes()).get_f64().unwrap();
            assert_eq!(got.to_bits(), bits);
        }
    }

    #[test]
    fn opaque_var_roundtrip() {
        let mut s = 4u64;
        for len in 0..200 {
            let data: Vec<u8> = (0..len).map(|_| next(&mut s) as u8).collect();
            let mut e = XdrEncoder::new();
            e.put_opaque_var(&data);
            let b = e.into_bytes();
            assert_eq!(b.len() % 4, 0);
            assert_eq!(XdrDecoder::new(&b).get_opaque_var().unwrap(), data);
        }
    }

    #[test]
    fn string_roundtrip() {
        let cases = [
            "",
            "a",
            "hello world",
            "μ unicode — ok ✓",
            "line\nbreak\tand\0nul",
            "0123456789012345678901234567890123456789",
        ];
        for s in cases {
            let mut e = XdrEncoder::new();
            e.put_string(s);
            assert_eq!(XdrDecoder::new(&e.into_bytes()).get_string().unwrap(), s);
        }
    }

    #[test]
    fn mixed_sequence_roundtrip() {
        let mut s = 5u64;
        for n in 0..30 {
            let items: Vec<(i32, u64, f32)> = (0..n)
                .map(|_| {
                    (
                        next(&mut s) as i32,
                        next(&mut s),
                        f32::from_bits(next(&mut s) as u32),
                    )
                })
                .collect();
            let mut e = XdrEncoder::new();
            for (a, b, c) in &items {
                e.put_i32(*a);
                e.put_u64(*b);
                e.put_f32(*c);
            }
            let bytes = e.into_bytes();
            let mut d = XdrDecoder::new(&bytes);
            for (a, b, c) in &items {
                assert_eq!(d.get_i32().unwrap(), *a);
                assert_eq!(d.get_u64().unwrap(), *b);
                assert_eq!(d.get_f32().unwrap().to_bits(), c.to_bits());
            }
            assert!(d.is_empty());
        }
    }

    #[test]
    fn i32_array_roundtrip() {
        let mut s = 6u64;
        for len in 0..64 {
            let v: Vec<i32> = (0..len).map(|_| next(&mut s) as i32).collect();
            let mut e = XdrEncoder::new();
            e.put_i32_array(&v);
            assert_eq!(XdrDecoder::new(&e.into_bytes()).get_i32_array().unwrap(), v);
        }
    }

    #[test]
    fn f64_array_roundtrip() {
        let mut s = 7u64;
        for len in 0..64 {
            let v: Vec<f64> = (0..len).map(|_| f64::from_bits(next(&mut s))).collect();
            let mut e = XdrEncoder::new();
            e.put_f64_array(&v);
            let got = XdrDecoder::new(&e.into_bytes()).get_f64_array().unwrap();
            assert_eq!(got.len(), v.len());
            for (a, b) in got.iter().zip(&v) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn truncated_input_errors_not_panics() {
        let mut s = 8u64;
        for cut in 0..8 {
            let mut e = XdrEncoder::new();
            e.put_u64(next(&mut s));
            let b = e.into_bytes();
            let mut d = XdrDecoder::new(&b[..cut]);
            assert!(d.get_u64().is_err());
        }
    }
}
