//! Chunk framing for streamed migration images.
//!
//! The pipelined migration path ships the XDR image stream in framed
//! chunks so transfer can start while collection is still traversing the
//! MSR graph. Each chunk on the wire is itself a tiny XDR document:
//!
//! ```text
//! u32 magic  = 0x4850_4D43 ("HPMC")
//! u32 seq    = 0, 1, 2, ...
//! u32 flags  = bit 0 set on the final chunk
//! opaque_var payload (4-byte aligned, may be empty)
//! ```
//!
//! The framing is deliberately orthogonal to the image grammar: the
//! concatenation of the chunk payloads, in sequence order, is the exact
//! monolithic image, byte for byte.

use crate::{XdrDecoder, XdrEncoder, XdrError};

/// Magic number opening every chunk frame: "HPMC" in ASCII.
pub const CHUNK_MAGIC: u32 = 0x4850_4D43;

/// Flag bit marking the final chunk of a stream.
pub const CHUNK_FLAG_LAST: u32 = 1;

/// Frame one chunk of the image stream for the wire.
pub fn frame_chunk(seq: u32, last: bool, payload: &[u8]) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(16 + payload.len());
    enc.put_u32(CHUNK_MAGIC);
    enc.put_u32(seq);
    enc.put_u32(if last { CHUNK_FLAG_LAST } else { 0 });
    enc.put_opaque_var(payload);
    enc.into_bytes()
}

/// Unframe one wire chunk, returning `(seq, last, payload)`.
///
/// Rejects bad magic, unknown flag bits, and trailing bytes after the
/// payload — a frame is a complete message, never a prefix of one.
pub fn unframe_chunk(frame: &[u8]) -> Result<(u32, bool, Vec<u8>), XdrError> {
    let mut dec = XdrDecoder::new(frame);
    let magic = dec.get_u32()?;
    if magic != CHUNK_MAGIC {
        return Err(XdrError::BadMagic(magic));
    }
    let seq = dec.get_u32()?;
    let flags = dec.get_u32()?;
    if flags & !CHUNK_FLAG_LAST != 0 {
        return Err(XdrError::BadMagic(flags));
    }
    let payload = dec.get_opaque_var()?;
    if !dec.is_empty() {
        return Err(XdrError::LengthTooLarge(dec.remaining() as u32));
    }
    Ok((seq, flags & CHUNK_FLAG_LAST != 0, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip() {
        let payload = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let frame = frame_chunk(7, false, &payload);
        assert_eq!(frame.len() % 4, 0);
        let (seq, last, got) = unframe_chunk(&frame).unwrap();
        assert_eq!(seq, 7);
        assert!(!last);
        assert_eq!(got, payload);
    }

    #[test]
    fn last_flag_roundtrips() {
        let frame = frame_chunk(3, true, &[]);
        let (seq, last, payload) = unframe_chunk(&frame).unwrap();
        assert_eq!(seq, 3);
        assert!(last);
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = frame_chunk(0, false, &[1, 2, 3, 4]);
        frame[0] ^= 0xFF;
        assert!(matches!(unframe_chunk(&frame), Err(XdrError::BadMagic(_))));
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut frame = frame_chunk(0, false, &[]);
        frame[11] = 0x80; // flags word, low byte
        assert!(unframe_chunk(&frame).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = frame_chunk(0, true, &[9; 40]);
        for cut in [0, 4, 8, 12, frame.len() - 1] {
            assert!(unframe_chunk(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = frame_chunk(0, true, &[1, 2, 3, 4]);
        frame.extend_from_slice(&[0, 0, 0, 0]);
        assert!(unframe_chunk(&frame).is_err());
    }

    #[test]
    fn concatenated_payloads_reassemble() {
        let whole: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        let mut frames = Vec::new();
        for (i, piece) in whole.chunks(48).enumerate() {
            frames.push(frame_chunk(i as u32, false, piece));
        }
        frames.push(frame_chunk(frames.len() as u32, true, &[]));
        let mut reassembled = Vec::new();
        for f in &frames {
            let (_, _, p) = unframe_chunk(f).unwrap();
            reassembled.extend_from_slice(&p);
        }
        assert_eq!(reassembled, whole);
    }
}
