//! Chunk framing for streamed migration images.
//!
//! The pipelined migration path ships the XDR image stream in framed
//! chunks so transfer can start while collection is still traversing the
//! MSR graph. Each chunk on the wire is itself a tiny XDR document.
//! Three frame versions coexist:
//!
//! ```text
//! v1 (legacy, no integrity check)      v2 (CRC-protected)
//! u32 magic  = 0x4850_4D43 ("HPMC")    u32 magic  = 0x4850_4D44 ("HPMD")
//! u32 seq    = 0, 1, 2, ...            u32 seq    = 0, 1, 2, ...
//! u32 flags  = bit 0 on final chunk    u32 flags  = bit 0 on final chunk
//! opaque_var payload (4-byte aligned)  u32 crc    = CRC-32 of the payload
//!                                      opaque_var payload (4-byte aligned)
//!
//! v3 (compressed)
//! u32 magic   = 0x4850_4D45 ("HPME")
//! u32 seq     = 0, 1, 2, ...
//! u32 flags   = bit 0 final chunk, bit 1 payload is compressed
//! u32 raw_len = payload size before compression
//! u32 crc     = CRC-32 of the *wire* payload (post-compression)
//! opaque_var wire payload (4-byte aligned)
//! ```
//!
//! A v3 sender compresses each chunk with [`crate::compress`] and falls
//! back to a stored block (bit 1 clear, wire payload = raw payload)
//! whenever compression would not shrink the chunk — incompressible
//! data never expands beyond the fixed 4-byte `raw_len` overhead. The
//! CRC always covers the bytes actually on the wire, so the transport
//! can verify integrity *before* spending decompression work, and a
//! corrupt compressed chunk is caught exactly like a corrupt stored one.
//!
//! [`unframe_chunk_any`] decodes all three versions — receiver-side
//! auto-detection by magic is the negotiation mechanism, so a v3 sender
//! interoperates with v1/v2 peers simply by being configured down, and a
//! receiver understands whatever arrives. The CRC is reported, not
//! verified, here — the transport layer decides how to react to a
//! mismatch (the framing layer has no notion of retransmission).
//!
//! The reverse direction of an ARQ link carries tiny control frames
//! ([`frame_control`] / [`unframe_control`]): cumulative ACKs and
//! per-sequence NACKs.
//!
//! The framing is deliberately orthogonal to the image grammar: the
//! concatenation of the chunk payloads, in sequence order, is the exact
//! monolithic image, byte for byte.

use crate::compress::{compress, decompress};
use crate::{XdrDecoder, XdrEncoder, XdrError};

/// Magic number opening every v1 chunk frame: "HPMC" in ASCII.
pub const CHUNK_MAGIC: u32 = 0x4850_4D43;

/// Magic number opening every v2 (CRC-carrying) chunk frame: "HPMD".
pub const CHUNK_MAGIC_V2: u32 = 0x4850_4D44;

/// Magic number opening every v3 (compression-capable) chunk frame: "HPME".
pub const CHUNK_MAGIC_V3: u32 = 0x4850_4D45;

/// Magic number opening every ARQ control frame: "HPMA".
pub const CONTROL_MAGIC: u32 = 0x4850_4D41;

/// Flag bit marking the final chunk of a stream.
pub const CHUNK_FLAG_LAST: u32 = 1;

/// Flag bit (v3 only) marking a chunk whose wire payload is compressed.
pub const CHUNK_FLAG_COMPRESSED: u32 = 2;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data` — the per-chunk
/// integrity check carried by v2 frames.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Frame one chunk of the image stream for the wire.
pub fn frame_chunk(seq: u32, last: bool, payload: &[u8]) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(16 + payload.len());
    enc.put_u32(CHUNK_MAGIC);
    enc.put_u32(seq);
    enc.put_u32(if last { CHUNK_FLAG_LAST } else { 0 });
    enc.put_opaque_var(payload);
    enc.into_bytes()
}

/// Frame one chunk with the v2 layout: the payload's CRC-32 travels
/// between the flags word and the payload.
pub fn frame_chunk_v2(seq: u32, last: bool, payload: &[u8]) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(20 + payload.len());
    enc.put_u32(CHUNK_MAGIC_V2);
    enc.put_u32(seq);
    enc.put_u32(if last { CHUNK_FLAG_LAST } else { 0 });
    enc.put_u32(crc32(payload));
    enc.put_opaque_var(payload);
    enc.into_bytes()
}

/// Frame one chunk with the v3 layout, compressing the payload when
/// that shrinks it and storing it raw otherwise. Returns the frame and
/// the number of wire-payload bytes actually shipped (compressed size
/// for compressed chunks, raw size for stored ones) so senders can
/// account raw-vs-wire volume without re-parsing their own frames.
pub fn frame_chunk_v3(seq: u32, last: bool, payload: &[u8]) -> (Vec<u8>, usize) {
    let comp = compress(payload);
    let (wire, compressed): (&[u8], bool) = if comp.len() < payload.len() {
        (&comp, true)
    } else {
        (payload, false)
    };
    let mut flags = if last { CHUNK_FLAG_LAST } else { 0 };
    if compressed {
        flags |= CHUNK_FLAG_COMPRESSED;
    }
    let mut enc = XdrEncoder::with_capacity(24 + wire.len());
    enc.put_u32(CHUNK_MAGIC_V3);
    enc.put_u32(seq);
    enc.put_u32(flags);
    enc.put_u32(payload.len() as u32);
    enc.put_u32(crc32(wire));
    enc.put_opaque_var(wire);
    (enc.into_bytes(), wire.len())
}

/// One decoded chunk frame, any version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFrame {
    /// Sequence number.
    pub seq: u32,
    /// Final-chunk flag.
    pub last: bool,
    /// The wire payload as it arrived (possibly corrupted in transit;
    /// still compressed for compressed v3 frames). Verification against
    /// `crc` is the receiver's job, *before* decompression.
    pub payload: Vec<u8>,
    /// The CRC-32 the sender stamped; `None` for v1 frames.
    pub crc: Option<u32>,
    /// Whether `payload` is compressed (v3 frames with bit 1 set).
    pub compressed: bool,
    /// Pre-compression payload size carried by v3 frames; `None` for
    /// v1/v2 frames, whose payload is always stored.
    pub raw_len: Option<u32>,
}

impl ChunkFrame {
    /// Whether the wire payload matches the stamped CRC (vacuously true
    /// for CRC-less v1 frames). On mismatch returns the computed CRC.
    pub fn verify_crc(&self) -> Result<(), u32> {
        match self.crc {
            None => Ok(()),
            Some(stamped) => {
                let computed = crc32(&self.payload);
                if computed == stamped {
                    Ok(())
                } else {
                    Err(computed)
                }
            }
        }
    }

    /// The decoded (post-decompression) payload. For stored frames this
    /// is the wire payload as-is; for compressed v3 frames the token
    /// stream is expanded and checked against the declared `raw_len`.
    pub fn into_payload(self) -> Result<Vec<u8>, XdrError> {
        if !self.compressed {
            return Ok(self.payload);
        }
        let raw_len = self.raw_len.unwrap_or(0) as usize;
        decompress(&self.payload, raw_len)
    }
}

/// Unframe one wire chunk, returning `(seq, last, payload)`.
///
/// Rejects bad magic, unknown flag bits, and trailing bytes after the
/// payload — a frame is a complete message, never a prefix of one.
pub fn unframe_chunk(frame: &[u8]) -> Result<(u32, bool, Vec<u8>), XdrError> {
    let mut dec = XdrDecoder::new(frame);
    let magic = dec.get_u32()?;
    if magic != CHUNK_MAGIC {
        return Err(XdrError::BadMagic(magic));
    }
    let seq = dec.get_u32()?;
    let flags = dec.get_u32()?;
    if flags & !CHUNK_FLAG_LAST != 0 {
        return Err(XdrError::BadMagic(flags));
    }
    let payload = dec.get_opaque_var()?;
    if !dec.is_empty() {
        return Err(XdrError::LengthTooLarge(dec.remaining() as u32));
    }
    Ok((seq, flags & CHUNK_FLAG_LAST != 0, payload))
}

/// Unframe a chunk of any version. The CRC (if present) is returned
/// unverified so the transport can distinguish "corrupt payload" (known
/// sequence number, retransmittable) from "unparseable frame", and the
/// payload stays compressed so verification precedes decompression.
pub fn unframe_chunk_any(frame: &[u8]) -> Result<ChunkFrame, XdrError> {
    let mut dec = XdrDecoder::new(frame);
    let magic = dec.get_u32()?;
    if magic != CHUNK_MAGIC && magic != CHUNK_MAGIC_V2 && magic != CHUNK_MAGIC_V3 {
        return Err(XdrError::BadMagic(magic));
    }
    let seq = dec.get_u32()?;
    let flags = dec.get_u32()?;
    let known = if magic == CHUNK_MAGIC_V3 {
        CHUNK_FLAG_LAST | CHUNK_FLAG_COMPRESSED
    } else {
        CHUNK_FLAG_LAST
    };
    if flags & !known != 0 {
        return Err(XdrError::BadMagic(flags));
    }
    let raw_len = if magic == CHUNK_MAGIC_V3 {
        Some(dec.get_u32()?)
    } else {
        None
    };
    let crc = if magic != CHUNK_MAGIC {
        Some(dec.get_u32()?)
    } else {
        None
    };
    let payload = dec.get_opaque_var()?;
    if !dec.is_empty() {
        return Err(XdrError::LengthTooLarge(dec.remaining() as u32));
    }
    Ok(ChunkFrame {
        seq,
        last: flags & CHUNK_FLAG_LAST != 0,
        payload,
        crc,
        compressed: flags & CHUNK_FLAG_COMPRESSED != 0,
        raw_len,
    })
}

/// An ARQ control message, sent on the reverse direction of the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Cumulative acknowledgement: every sequence below `next` arrived.
    Ack {
        /// The lowest sequence number the receiver still needs.
        next: u32,
    },
    /// Negative acknowledgement: `seq` is missing or arrived corrupt.
    Nack {
        /// The sequence number to retransmit.
        seq: u32,
    },
}

/// Frame one control message (12 bytes on the wire).
pub fn frame_control(ctrl: Control) -> Vec<u8> {
    let mut enc = XdrEncoder::with_capacity(12);
    enc.put_u32(CONTROL_MAGIC);
    match ctrl {
        Control::Ack { next } => {
            enc.put_u32(0);
            enc.put_u32(next);
        }
        Control::Nack { seq } => {
            enc.put_u32(1);
            enc.put_u32(seq);
        }
    }
    enc.into_bytes()
}

/// Unframe one control message.
pub fn unframe_control(frame: &[u8]) -> Result<Control, XdrError> {
    let mut dec = XdrDecoder::new(frame);
    let magic = dec.get_u32()?;
    if magic != CONTROL_MAGIC {
        return Err(XdrError::BadMagic(magic));
    }
    let kind = dec.get_u32()?;
    let seq = dec.get_u32()?;
    if !dec.is_empty() {
        return Err(XdrError::LengthTooLarge(dec.remaining() as u32));
    }
    match kind {
        0 => Ok(Control::Ack { next: seq }),
        1 => Ok(Control::Nack { seq }),
        other => Err(XdrError::BadMagic(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_roundtrip() {
        let payload = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        let frame = frame_chunk(7, false, &payload);
        assert_eq!(frame.len() % 4, 0);
        let (seq, last, got) = unframe_chunk(&frame).unwrap();
        assert_eq!(seq, 7);
        assert!(!last);
        assert_eq!(got, payload);
    }

    #[test]
    fn last_flag_roundtrips() {
        let frame = frame_chunk(3, true, &[]);
        let (seq, last, payload) = unframe_chunk(&frame).unwrap();
        assert_eq!(seq, 3);
        assert!(last);
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = frame_chunk(0, false, &[1, 2, 3, 4]);
        frame[0] ^= 0xFF;
        assert!(matches!(unframe_chunk(&frame), Err(XdrError::BadMagic(_))));
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut frame = frame_chunk(0, false, &[]);
        frame[11] = 0x80; // flags word, low byte
        assert!(unframe_chunk(&frame).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let frame = frame_chunk(0, true, &[9; 40]);
        for cut in [0, 4, 8, 12, frame.len() - 1] {
            assert!(unframe_chunk(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = frame_chunk(0, true, &[1, 2, 3, 4]);
        frame.extend_from_slice(&[0, 0, 0, 0]);
        assert!(unframe_chunk(&frame).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn v2_roundtrip_carries_verified_crc() {
        let payload = vec![7u8; 33];
        let frame = frame_chunk_v2(5, false, &payload);
        assert_eq!(frame.len() % 4, 0);
        let f = unframe_chunk_any(&frame).unwrap();
        assert_eq!(f.seq, 5);
        assert!(!f.last);
        assert_eq!(f.payload, payload);
        assert_eq!(f.crc, Some(crc32(&payload)));
        assert!(f.verify_crc().is_ok());
    }

    #[test]
    fn v2_corrupt_payload_fails_verification_with_computed_crc() {
        let mut frame = frame_chunk_v2(0, true, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let payload_start = frame.len() - 8;
        frame[payload_start] ^= 0x40;
        let f = unframe_chunk_any(&frame).unwrap();
        let computed = f.verify_crc().unwrap_err();
        assert_ne!(Some(computed), f.crc);
        assert_eq!(computed, crc32(&f.payload));
    }

    #[test]
    fn unframe_any_still_decodes_v1_frames() {
        let frame = frame_chunk(9, true, &[1, 2, 3, 4]);
        let f = unframe_chunk_any(&frame).unwrap();
        assert_eq!(f.seq, 9);
        assert!(f.last);
        assert_eq!(f.payload, vec![1, 2, 3, 4]);
        assert_eq!(f.crc, None);
        assert!(f.verify_crc().is_ok(), "v1 frames verify vacuously");
    }

    #[test]
    fn v1_unframe_rejects_v2_magic() {
        let frame = frame_chunk_v2(0, false, &[1, 2, 3, 4]);
        assert!(matches!(unframe_chunk(&frame), Err(XdrError::BadMagic(_))));
    }

    #[test]
    fn truncated_v2_frame_rejected() {
        let frame = frame_chunk_v2(0, true, &[9; 40]);
        for cut in [0, 4, 8, 12, 16, frame.len() - 1] {
            assert!(unframe_chunk_any(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        for ctrl in [Control::Ack { next: 17 }, Control::Nack { seq: 3 }] {
            let frame = frame_control(ctrl);
            assert_eq!(frame.len(), 12);
            assert_eq!(unframe_control(&frame).unwrap(), ctrl);
        }
    }

    #[test]
    fn control_rejects_bad_magic_kind_and_trailing_bytes() {
        let mut bad_magic = frame_control(Control::Ack { next: 0 });
        bad_magic[0] ^= 0xFF;
        assert!(unframe_control(&bad_magic).is_err());
        let mut bad_kind = frame_control(Control::Ack { next: 0 });
        bad_kind[7] = 9;
        assert!(unframe_control(&bad_kind).is_err());
        let mut trailing = frame_control(Control::Nack { seq: 1 });
        trailing.extend_from_slice(&[0; 4]);
        assert!(unframe_control(&trailing).is_err());
        // Control frames are not chunks and vice versa.
        assert!(unframe_chunk_any(&frame_control(Control::Ack { next: 0 })).is_err());
    }

    #[test]
    fn v3_compressible_payload_shrinks_and_roundtrips() {
        let payload = vec![0u8; 4096];
        let (frame, wire_len) = frame_chunk_v3(11, false, &payload);
        assert!(wire_len < payload.len(), "zeros must compress");
        assert!(frame.len() < 64, "frame is {} bytes", frame.len());
        assert_eq!(frame.len() % 4, 0);
        let f = unframe_chunk_any(&frame).unwrap();
        assert_eq!(f.seq, 11);
        assert!(!f.last);
        assert!(f.compressed);
        assert_eq!(f.raw_len, Some(4096));
        assert!(f.verify_crc().is_ok());
        assert_eq!(f.into_payload().unwrap(), payload);
    }

    #[test]
    fn v3_incompressible_payload_is_stored_not_expanded() {
        // splitmix64 noise does not compress.
        let mut s = 42u64;
        let payload: Vec<u8> = (0..512)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                (z ^ (z >> 27)) as u8
            })
            .collect();
        let (frame, wire_len) = frame_chunk_v3(0, true, &payload);
        assert_eq!(wire_len, payload.len(), "stored fallback ships raw bytes");
        // v3 overhead over v2 is exactly the 4-byte raw_len word.
        assert_eq!(frame.len(), frame_chunk_v2(0, true, &payload).len() + 4);
        let f = unframe_chunk_any(&frame).unwrap();
        assert!(!f.compressed);
        assert!(f.last);
        assert_eq!(f.raw_len, Some(payload.len() as u32));
        assert!(f.verify_crc().is_ok());
        assert_eq!(f.into_payload().unwrap(), payload);
    }

    #[test]
    fn v3_crc_covers_the_compressed_bytes() {
        let payload = vec![7u8; 1024];
        let (mut frame, wire_len) = frame_chunk_v3(3, false, &payload);
        assert!(wire_len < payload.len());
        // Flip one bit inside the compressed wire payload.
        let payload_start = 24; // magic+seq+flags+raw_len+crc+opaque len
        frame[payload_start] ^= 0x01;
        let f = unframe_chunk_any(&frame).unwrap();
        let computed = f.verify_crc().unwrap_err();
        assert_eq!(computed, crc32(&f.payload));
        assert_ne!(Some(computed), f.crc);
    }

    #[test]
    fn v3_empty_payload_roundtrips() {
        let (frame, wire_len) = frame_chunk_v3(5, true, &[]);
        assert_eq!(wire_len, 0);
        let f = unframe_chunk_any(&frame).unwrap();
        assert!(f.last);
        assert!(!f.compressed);
        assert_eq!(f.into_payload().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn truncated_v3_frame_rejected() {
        let (frame, _) = frame_chunk_v3(0, true, &[9; 40]);
        for cut in [0, 4, 8, 12, 16, 20, frame.len() - 1] {
            assert!(unframe_chunk_any(&frame[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn v1_and_v2_unframes_reject_v3_magic() {
        let (frame, _) = frame_chunk_v3(0, false, &[1, 2, 3, 4]);
        assert!(matches!(unframe_chunk(&frame), Err(XdrError::BadMagic(_))));
    }

    #[test]
    fn v1_v2_frames_decode_as_stored_via_any() {
        for frame in [
            frame_chunk(2, false, &[1, 2, 3, 4]),
            frame_chunk_v2(2, false, &[1, 2, 3, 4]),
        ] {
            let f = unframe_chunk_any(&frame).unwrap();
            assert!(!f.compressed);
            assert_eq!(f.raw_len, None);
            assert_eq!(f.into_payload().unwrap(), vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn concatenated_payloads_reassemble() {
        let whole: Vec<u8> = (0..200u16).map(|i| i as u8).collect();
        let mut frames = Vec::new();
        for (i, piece) in whole.chunks(48).enumerate() {
            frames.push(frame_chunk(i as u32, false, piece));
        }
        frames.push(frame_chunk(frames.len() as u32, true, &[]));
        let mut reassembled = Vec::new();
        for f in &frames {
            let (_, _, p) = unframe_chunk(f).unwrap();
            reassembled.extend_from_slice(&p);
        }
        assert_eq!(reassembled, whole);
    }
}
