//! XDR stream decoder.

use crate::{padded_len, XdrError};

/// Maximum accepted variable-length item, a sanity bound against corrupt
/// streams (1 GiB — far above any migration image in the evaluation).
const MAX_VAR_LEN: u32 = 1 << 30;

/// Sequential decoder over an XDR byte stream.
#[derive(Debug, Clone)]
pub struct XdrDecoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Decode from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        XdrDecoder { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the whole stream has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// 4-byte big-endian signed integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// 4-byte big-endian unsigned integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// 8-byte big-endian signed integer (XDR hyper).
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// 8-byte big-endian unsigned integer.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// IEEE-754 single.
    pub fn get_f32(&mut self) -> Result<f32, XdrError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// IEEE-754 double.
    pub fn get_f64(&mut self) -> Result<f64, XdrError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// XDR boolean; rejects values other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::InvalidBool(v)),
        }
    }

    /// Fixed-length opaque data of known length `n` (plus padding).
    pub fn get_opaque_fixed(&mut self, n: usize) -> Result<Vec<u8>, XdrError> {
        let total = padded_len(n);
        let raw = self.take(total)?;
        if raw[n..].iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(raw[..n].to_vec())
    }

    /// Borrowing variant of [`XdrDecoder::get_opaque_fixed`]; avoids the
    /// copy when the caller only needs a view (hot path in block restore).
    pub fn get_opaque_fixed_ref(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        let total = padded_len(n);
        let raw = self.take(total)?;
        if raw[n..].iter().any(|&b| b != 0) {
            return Err(XdrError::NonZeroPadding);
        }
        Ok(&raw[..n])
    }

    /// Variable-length opaque data: reads the length prefix.
    pub fn get_opaque_var(&mut self) -> Result<Vec<u8>, XdrError> {
        let n = self.get_u32()?;
        if n > MAX_VAR_LEN {
            return Err(XdrError::LengthTooLarge(n));
        }
        self.get_opaque_fixed(n as usize)
    }

    /// Take every remaining byte as a raw view, leaving the decoder
    /// empty. Used for tail sections whose length is implied by the
    /// enclosing frame rather than a prefix.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }

    /// XDR string (UTF-8 validated).
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque_var()?;
        String::from_utf8(bytes).map_err(|_| XdrError::InvalidUtf8)
    }

    /// Variable-length array of i32.
    pub fn get_i32_array(&mut self) -> Result<Vec<i32>, XdrError> {
        let n = self.get_u32()?;
        if n > MAX_VAR_LEN / 4 {
            return Err(XdrError::LengthTooLarge(n));
        }
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(self.get_i32()?);
        }
        Ok(v)
    }

    /// Variable-length array of f64.
    pub fn get_f64_array(&mut self) -> Result<Vec<f64>, XdrError> {
        let n = self.get_u32()?;
        if n > MAX_VAR_LEN / 8 {
            return Err(XdrError::LengthTooLarge(n));
        }
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(self.get_f64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XdrEncoder;

    #[test]
    fn eof_reports_counts() {
        let mut d = XdrDecoder::new(&[0, 0]);
        assert_eq!(
            d.get_i32(),
            Err(XdrError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn bad_bool_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(2);
        let b = e.into_bytes();
        assert_eq!(
            XdrDecoder::new(&b).get_bool(),
            Err(XdrError::InvalidBool(2))
        );
    }

    #[test]
    fn nonzero_padding_rejected() {
        // length=1, byte, then bad padding
        let raw = [0, 0, 0, 1, 0xAB, 1, 0, 0];
        let mut d = XdrDecoder::new(&raw);
        assert_eq!(d.get_opaque_var(), Err(XdrError::NonZeroPadding));
    }

    #[test]
    fn insane_length_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(u32::MAX);
        let b = e.into_bytes();
        assert!(matches!(
            XdrDecoder::new(&b).get_opaque_var(),
            Err(XdrError::LengthTooLarge(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque_var(&[0xFF, 0xFE]);
        let b = e.into_bytes();
        assert_eq!(XdrDecoder::new(&b).get_string(), Err(XdrError::InvalidUtf8));
    }

    #[test]
    fn position_tracks_consumption() {
        let mut e = XdrEncoder::new();
        e.put_i32(1);
        e.put_i64(2);
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        assert_eq!(d.position(), 0);
        d.get_i32().unwrap();
        assert_eq!(d.position(), 4);
        d.get_i64().unwrap();
        assert_eq!(d.position(), 12);
        assert!(d.is_empty());
    }

    #[test]
    fn opaque_ref_view_matches_copy() {
        let mut e = XdrEncoder::new();
        e.put_opaque_fixed(&[1, 2, 3, 4, 5]);
        let b = e.into_bytes();
        let mut d1 = XdrDecoder::new(&b);
        let mut d2 = XdrDecoder::new(&b);
        assert_eq!(
            d1.get_opaque_fixed(5).unwrap(),
            d2.get_opaque_fixed_ref(5).unwrap()
        );
    }
}
