//! Deterministic block compression for the v3 chunk frame.
//!
//! The migration payload is highly repetitive — zero-filled pages, runs
//! of identical array elements, repeated pointer-header shapes — so even
//! a small LZ-style coder removes most of the wire volume. This module
//! is deliberately dependency-free and fully deterministic: the same
//! input bytes produce the same compressed bytes on every platform, so
//! compressed streams can be CRC'd, retransmitted, and replayed in
//! seed-driven soak tests without ever diverging.
//!
//! ## Stream format
//!
//! The compressed stream is one mode byte followed by tagged tokens:
//!
//! ```text
//! mode 0x00                         tokens encode the input directly
//! mode 0x01                         tokens encode the byte-plane
//!                                   transpose of the input (stride 8)
//! 0x00 varint(len) byte[len]        literal run
//! 0x01 varint(len) byte             RLE run: byte repeated len times
//! 0x02 varint(len) varint(dist)     match: copy len bytes from dist back
//! ```
//!
//! `varint` is LEB128 (7 payload bits per byte, high bit = continue).
//! Matches may overlap their own output (`dist < len`), which is how
//! long period-k repetitions compress. The decoder validates every
//! token against the declared output size and the available history, so
//! corrupt or truncated input yields an error, never a panic or an
//! out-of-bounds copy.
//!
//! Mode 0x01 exists for the payload's dominant shape: arrays of 8-byte
//! scalars (f64 matrix cells, u64 pointers and headers) whose values use
//! only a few significant bytes each. Interleaved, such data defeats the
//! tokenizer — every 8-byte element is a ~3-byte literal plus a ~5-byte
//! zero run, and the per-token overhead cancels the savings.
//! De-interleaved into 8 byte-planes, the near-constant planes become
//! chunk-long runs and the coder wins big. The compressor runs both
//! passes and keeps whichever is smaller, so the filter can never hurt
//! the output size.
//!
//! Callers that must never expand use [`compress`]'s return contract:
//! when the token stream would be no smaller than the input, the caller
//! stores the raw bytes instead (the v3 frame records which choice was
//! made — see [`crate::chunk`]).

use crate::XdrError;

/// Minimum match/run length worth encoding (tag + varints cost ~3 bytes).
const MIN_MATCH: usize = 4;

/// Hash-chain table size (power of two).
const HASH_BITS: u32 = 15;

const TAG_LIT: u8 = 0x00;
const TAG_RLE: u8 = 0x01;
const TAG_MATCH: u8 = 0x02;

/// Tokens encode the input bytes as-is.
const MODE_PLAIN: u8 = 0x00;
/// Tokens encode the stride-8 byte-plane transpose of the input.
const MODE_PLANED: u8 = 0x01;

/// Byte-plane stride: the width of the scalars that dominate migration
/// payloads (f64 cells, u64 pointers/headers).
const PLANE_STRIDE: usize = 8;

/// De-interleave `data` into [`PLANE_STRIDE`] byte-planes; the tail that
/// doesn't fill a full stride group is appended untouched.
fn transpose(data: &[u8]) -> Vec<u8> {
    let rows = data.len() / PLANE_STRIDE;
    let head = rows * PLANE_STRIDE;
    let mut out = Vec::with_capacity(data.len());
    for p in 0..PLANE_STRIDE {
        for r in 0..rows {
            out.push(data[r * PLANE_STRIDE + p]);
        }
    }
    out.extend_from_slice(&data[head..]);
    out
}

/// Exact inverse of [`transpose`].
fn untranspose(data: &[u8]) -> Vec<u8> {
    let rows = data.len() / PLANE_STRIDE;
    let head = rows * PLANE_STRIDE;
    let mut out = vec![0u8; data.len()];
    let mut i = 0;
    for p in 0..PLANE_STRIDE {
        for r in 0..rows {
            out[r * PLANE_STRIDE + p] = data[i];
            i += 1;
        }
    }
    out[head..].copy_from_slice(&data[head..]);
    out
}

fn put_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<usize, XdrError> {
    let mut v: usize = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(XdrError::UnexpectedEof {
            needed: 1,
            remaining: 0,
        })?;
        *pos += 1;
        // 5 bytes bound the varint at 35 bits — far beyond any chunk.
        if shift >= 35 {
            return Err(XdrError::LengthTooLarge(u32::MAX));
        }
        v |= ((b & 0x7F) as usize) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let w = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (w.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn flush_literals(out: &mut Vec<u8>, data: &[u8], start: usize, end: usize) {
    if end > start {
        out.push(TAG_LIT);
        put_varint(out, end - start);
        out.extend_from_slice(&data[start..end]);
    }
}

/// Compress `data` into the mode-prefixed token stream. Deterministic:
/// identical input always yields identical output. The result may be
/// larger than the input for incompressible data — callers compare
/// lengths and fall back to a stored block (see
/// [`crate::chunk::frame_chunk_v3`]).
pub fn compress(data: &[u8]) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let plain = tokenize(data);
    // The plane filter only has planes to work with past one full
    // stride group per plane; ties go to the plain pass.
    if data.len() >= PLANE_STRIDE * PLANE_STRIDE {
        let planed = tokenize(&transpose(data));
        if planed.len() < plain.len() {
            let mut out = Vec::with_capacity(planed.len() + 1);
            out.push(MODE_PLANED);
            out.extend_from_slice(&planed);
            return out;
        }
    }
    let mut out = Vec::with_capacity(plain.len() + 1);
    out.push(MODE_PLAIN);
    out.extend_from_slice(&plain);
    out
}

/// Run the LZ/RLE coder over `data`, producing the raw token stream.
fn tokenize(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }
    // Most recent position (+1; 0 = empty) for each 4-byte hash.
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i < n {
        // RLE fast path: a run of >= MIN_MATCH identical bytes.
        let b = data[i];
        let mut run = 1;
        while i + run < n && data[i + run] == b {
            run += 1;
        }
        if run >= MIN_MATCH {
            flush_literals(&mut out, data, lit_start, i);
            out.push(TAG_RLE);
            put_varint(&mut out, run);
            out.push(b);
            // Seed the hash table sparsely through the run so matches
            // spanning the run boundary are still found.
            if i + MIN_MATCH <= n {
                table[hash4(data, i)] = (i + 1) as u32;
            }
            i += run;
            lit_start = i;
            continue;
        }
        // LZ match via the hash table.
        if i + MIN_MATCH <= n {
            let h = hash4(data, i);
            let cand = table[h];
            table[h] = (i + 1) as u32;
            if cand != 0 {
                let c = (cand - 1) as usize;
                if data[c..c + 4] == data[i..i + 4] {
                    let mut len = 4;
                    while i + len < n && data[c + len] == data[i + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        flush_literals(&mut out, data, lit_start, i);
                        out.push(TAG_MATCH);
                        put_varint(&mut out, len);
                        put_varint(&mut out, i - c);
                        i += len;
                        lit_start = i;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    flush_literals(&mut out, data, lit_start, n);
    out
}

/// Decompress a stream produced by [`compress`], which must expand to
/// exactly `raw_len` bytes. Corrupt input — bad modes or tags, overlong
/// runs, matches reaching before the start of the output — is an error.
pub fn decompress(data: &[u8], raw_len: usize) -> Result<Vec<u8>, XdrError> {
    if data.is_empty() {
        return if raw_len == 0 {
            Ok(Vec::new())
        } else {
            Err(XdrError::UnexpectedEof {
                needed: raw_len,
                remaining: 0,
            })
        };
    }
    let out = detokenize(&data[1..], raw_len)?;
    match data[0] {
        MODE_PLAIN => Ok(out),
        MODE_PLANED => Ok(untranspose(&out)),
        other => Err(XdrError::BadMagic(other as u32)),
    }
}

/// Expand a raw token stream to exactly `raw_len` bytes.
fn detokenize(data: &[u8], raw_len: usize) -> Result<Vec<u8>, XdrError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            TAG_LIT => {
                let len = get_varint(data, &mut pos)?;
                if len == 0 || len > raw_len - out.len() {
                    return Err(XdrError::LengthTooLarge(len as u32));
                }
                let end = pos
                    .checked_add(len)
                    .ok_or(XdrError::LengthTooLarge(len as u32))?;
                if end > data.len() {
                    return Err(XdrError::UnexpectedEof {
                        needed: len,
                        remaining: data.len() - pos,
                    });
                }
                out.extend_from_slice(&data[pos..end]);
                pos = end;
            }
            TAG_RLE => {
                let len = get_varint(data, &mut pos)?;
                if len == 0 || len > raw_len - out.len() {
                    return Err(XdrError::LengthTooLarge(len as u32));
                }
                let b = *data.get(pos).ok_or(XdrError::UnexpectedEof {
                    needed: 1,
                    remaining: 0,
                })?;
                pos += 1;
                out.resize(out.len() + len, b);
            }
            TAG_MATCH => {
                let len = get_varint(data, &mut pos)?;
                let dist = get_varint(data, &mut pos)?;
                if len == 0 || len > raw_len - out.len() {
                    return Err(XdrError::LengthTooLarge(len as u32));
                }
                if dist == 0 || dist > out.len() {
                    return Err(XdrError::LengthTooLarge(dist as u32));
                }
                // Byte-by-byte so overlapping matches (dist < len)
                // replicate their own freshly written output.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            other => return Err(XdrError::BadMagic(other as u32)),
        }
    }
    if out.len() != raw_len {
        return Err(XdrError::UnexpectedEof {
            needed: raw_len - out.len(),
            remaining: 0,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let comp = compress(data);
        decompress(&comp, data.len()).expect("valid stream must decompress")
    }

    #[test]
    fn empty_roundtrips() {
        assert!(compress(&[]).is_empty());
        assert_eq!(decompress(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn zeros_compress_to_an_rle_token() {
        let data = vec![0u8; 4096];
        let comp = compress(&data);
        assert!(comp.len() <= 5, "4096 zeros became {} bytes", comp.len());
        assert_eq!(decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn repeated_pattern_compresses_via_matches() {
        let mut data = Vec::new();
        for i in 0..512u32 {
            data.extend_from_slice(&(i % 7).to_be_bytes());
        }
        let comp = compress(&data);
        assert!(
            comp.len() < data.len() / 4,
            "periodic data barely compressed: {} of {}",
            comp.len(),
            data.len()
        );
        assert_eq!(decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn random_bytes_roundtrip_even_when_incompressible() {
        // splitmix64-driven pseudo-random bytes.
        let mut s = 0xDEADBEEFu64;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for len in [1usize, 3, 17, 255, 1024, 5000] {
            let data: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn overlapping_match_replicates_period() {
        // "abc" * 100: after the first period everything is one long
        // overlapping match (dist 3).
        let data: Vec<u8> = b"abc".iter().copied().cycle().take(300).collect();
        let comp = compress(&data);
        assert!(comp.len() < 32, "got {}", comp.len());
        assert_eq!(decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn low_precision_doubles_engage_the_plane_filter() {
        // The linpack matgen shape: f64 values m * 2^-14 with |m| < 2^15,
        // so each big-endian 8-byte cell is ~3 meaningful bytes followed
        // by ~5 zeros. Interleaved this breaks even; byte-planed it must
        // compress well below half.
        let mut init: i64 = 1325;
        let mut data = Vec::new();
        for _ in 0..4096 {
            init = (3125 * init) % 65536;
            let v = (init as f64 - 32768.0) / 16384.0;
            data.extend_from_slice(&v.to_bits().to_be_bytes());
        }
        let comp = compress(&data);
        assert_eq!(comp[0], MODE_PLANED, "the plane filter must win here");
        assert!(
            comp.len() < data.len() / 2,
            "planed doubles barely compressed: {} of {}",
            comp.len(),
            data.len()
        );
        assert_eq!(decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn plane_transpose_is_exactly_invertible() {
        let mut s = 1u64;
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 56) as u8
                })
                .collect();
            assert_eq!(untranspose(&transpose(&data)), data, "len {len}");
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn bad_mode_byte_is_rejected() {
        let data: Vec<u8> = (0..200u8).collect();
        let mut comp = compress(&data);
        comp[0] = 0x7E;
        assert!(decompress(&comp, data.len()).is_err());
    }

    #[test]
    fn compression_is_deterministic() {
        let data: Vec<u8> = (0..2048u32).flat_map(|i| (i % 97).to_be_bytes()).collect();
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let data: Vec<u8> = (0..200u8).collect();
        let comp = compress(&data);
        // Truncations at every boundary.
        for cut in 0..comp.len() {
            let _ = decompress(&comp[..cut], data.len());
        }
        // Single-byte flips.
        for i in 0..comp.len() {
            let mut bad = comp.clone();
            bad[i] ^= 0xFF;
            let _ = decompress(&bad, data.len());
        }
        // Wrong raw_len is always an error.
        assert!(decompress(&comp, data.len() + 1).is_err());
        assert!(decompress(&comp, data.len().saturating_sub(1)).is_err());
    }

    #[test]
    fn match_before_start_is_rejected() {
        // TAG_MATCH len=4 dist=1 with no history.
        let bad = [TAG_MATCH, 4, 1];
        assert!(decompress(&bad, 4).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(decompress(&[0x7F, 1, 1], 1).is_err());
    }
}
