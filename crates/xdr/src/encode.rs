//! XDR stream encoder.

use crate::padded_len;

/// Append-only encoder producing a canonical XDR byte stream.
///
/// Every `put_*` method appends a whole number of 4-byte XDR units, so the
/// buffer length is always a multiple of four.
#[derive(Debug, Default, Clone)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// New empty encoder.
    pub fn new() -> Self {
        XdrEncoder { buf: Vec::new() }
    }

    /// New encoder with `cap` bytes of preallocated capacity (useful when
    /// the caller can estimate the migration-image size, avoiding
    /// reallocation during the Encode-and-Copy phase).
    pub fn with_capacity(cap: usize) -> Self {
        XdrEncoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning the stream.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// 4-byte big-endian signed integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// 4-byte big-endian unsigned integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// 8-byte big-endian signed integer (XDR hyper).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// 8-byte big-endian unsigned integer (XDR unsigned hyper).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// IEEE-754 single, big-endian.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// IEEE-754 double, big-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// XDR boolean: an int constrained to 0/1.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(v as u32);
    }

    /// Fixed-length opaque data, zero-padded to a 4-byte boundary.
    /// The length is *not* written; the peer must know it.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.pad_from(data.len());
    }

    /// Variable-length opaque data: 4-byte length, bytes, padding.
    pub fn put_opaque_var(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// XDR string: variable-length opaque holding UTF-8.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque_var(s.as_bytes());
    }

    /// Variable-length array of i32 (length prefix + elements).
    pub fn put_i32_array(&mut self, v: &[i32]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_i32(*x);
        }
    }

    /// Variable-length array of f64 (length prefix + elements).
    pub fn put_f64_array(&mut self, v: &[f64]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_f64(*x);
        }
    }

    fn pad_from(&mut self, raw_len: usize) {
        for _ in raw_len..padded_len(raw_len) {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_put_keeps_alignment() {
        let mut e = XdrEncoder::new();
        e.put_i32(1);
        assert_eq!(e.len() % 4, 0);
        e.put_opaque_var(&[1]);
        assert_eq!(e.len() % 4, 0);
        e.put_opaque_fixed(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(e.len() % 4, 0);
        e.put_string("ab");
        assert_eq!(e.len() % 4, 0);
    }

    #[test]
    fn with_capacity_preallocates() {
        let e = XdrEncoder::with_capacity(1024);
        assert!(e.is_empty());
        assert!(e.buf.capacity() >= 1024);
    }

    #[test]
    fn opaque_fixed_has_no_length_prefix() {
        let mut e = XdrEncoder::new();
        e.put_opaque_fixed(&[0xAA, 0xBB]);
        assert_eq!(e.into_bytes(), vec![0xAA, 0xBB, 0, 0]);
    }
}
