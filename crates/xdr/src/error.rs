//! XDR decoding errors.

/// Errors produced while decoding an XDR stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The stream ended before the requested item was complete.
    UnexpectedEof {
        /// Bytes needed to finish the item.
        needed: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// A boolean field held something other than 0 or 1.
    InvalidBool(u32),
    /// Padding bytes were non-zero (a corrupt or misframed stream).
    NonZeroPadding,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A variable-length item declared a length beyond a sanity bound.
    LengthTooLarge(u32),
    /// A framed message opened with the wrong magic word.
    BadMagic(u32),
}

impl std::fmt::Display for XdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XdrError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of XDR stream: needed {needed} bytes, {remaining} remain"
                )
            }
            XdrError::InvalidBool(v) => write!(f, "invalid XDR bool value {v}"),
            XdrError::NonZeroPadding => write!(f, "non-zero XDR padding bytes"),
            XdrError::InvalidUtf8 => write!(f, "XDR string is not valid UTF-8"),
            XdrError::LengthTooLarge(n) => {
                write!(f, "XDR variable length {n} exceeds sanity bound")
            }
            XdrError::BadMagic(m) => {
                write!(f, "bad frame magic {m:#010x}")
            }
        }
    }
}

impl std::error::Error for XdrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = XdrError::UnexpectedEof {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains("needed 8"));
        assert!(XdrError::InvalidBool(7).to_string().contains('7'));
    }
}
