//! Memory blocks: the vertices of the MSR graph.

use hpm_arch::SegmentKind;
use hpm_types::TypeId;

/// One contiguous memory block — a vertex `v_i` of the paper's MSR graph.
///
/// A block is an array of `count` values of element type `ty` (a plain
/// variable is `count == 1`). Its contents are raw bytes in the owning
/// machine's native representation.
#[derive(Debug, Clone)]
pub struct MemoryBlock {
    /// Start address within the simulated address space.
    pub addr: u64,
    /// Element type (from the space's TI table).
    pub ty: TypeId,
    /// Number of elements.
    pub count: u64,
    /// Which segment the block lives in.
    pub segment: SegmentKind,
    /// Variable name for named blocks (globals/locals); heap blocks are
    /// anonymous.
    pub name: Option<String>,
    /// Stack frame sequence number for stack blocks.
    pub frame: Option<u64>,
    /// The block's contents, in native representation.
    pub bytes: Vec<u8>,
}

impl MemoryBlock {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.addr + self.size_bytes()
    }

    /// Whether `addr` points into this block.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.addr && addr < self.end()
    }

    /// Display label: the variable name, or `addrN`-style for heap blocks
    /// (matching the paper's Figure 1 naming).
    pub fn label(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("addr@{:#x}", self.addr),
        }
    }
}

/// Borrow-free snapshot of a block's metadata (no contents), used by the
/// collection machinery to walk blocks while the space is mutably held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Start address.
    pub addr: u64,
    /// Element type.
    pub ty: TypeId,
    /// Element count.
    pub count: u64,
    /// Segment.
    pub segment: SegmentKind,
    /// Optional variable name.
    pub name: Option<String>,
    /// Stack frame number for stack blocks.
    pub frame: Option<u64>,
    /// Size in bytes.
    pub size: u64,
}

impl From<&MemoryBlock> for BlockInfo {
    fn from(b: &MemoryBlock) -> Self {
        BlockInfo {
            addr: b.addr,
            ty: b.ty,
            count: b.count,
            segment: b.segment,
            name: b.name.clone(),
            frame: b.frame,
            size: b.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> MemoryBlock {
        MemoryBlock {
            addr: 0x1000,
            ty: TypeId(0),
            count: 4,
            segment: SegmentKind::Heap,
            name: None,
            frame: None,
            bytes: vec![0; 16],
        }
    }

    #[test]
    fn bounds() {
        let b = block();
        assert_eq!(b.size_bytes(), 16);
        assert_eq!(b.end(), 0x1010);
        assert!(b.contains(0x1000));
        assert!(b.contains(0x100F));
        assert!(!b.contains(0x1010));
        assert!(!b.contains(0xFFF));
    }

    #[test]
    fn labels() {
        let mut b = block();
        assert_eq!(b.label(), "addr@0x1000");
        b.name = Some("parray".into());
        assert_eq!(b.label(), "parray");
    }

    #[test]
    fn info_snapshot() {
        let b = block();
        let i = BlockInfo::from(&b);
        assert_eq!(i.addr, b.addr);
        assert_eq!(i.size, 16);
        assert_eq!(i.segment, SegmentKind::Heap);
    }
}
