//! The simulated address space: segments, allocation, typed access.

use crate::block::{BlockInfo, MemoryBlock};
use hpm_arch::{Architecture, ScalarValue, SegmentKind};
use hpm_types::elements::{ElementError, ElementModel, Leaf};
use hpm_types::layout::{align_up, Layout};
use hpm_types::plan::{compile_plan, SavePlan};
use hpm_types::{TypeError, TypeId, TypeTable};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Handle to a pushed stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameId(pub u64);

/// An address resolved to its containing block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedAddr {
    /// Start address of the containing block (its identity).
    pub block_addr: u64,
    /// Byte offset of the resolved address within the block.
    pub offset: u64,
    /// Arena slot of the block (internal fast path).
    pub(crate) idx: u32,
}

/// Errors from address-space operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MemError {
    /// A segment ran out of room.
    OutOfMemory(SegmentKind),
    /// The address does not fall inside any live block.
    BadAddress(u64),
    /// The address is inside a block but not at a scalar-leaf boundary.
    NotALeaf(u64),
    /// `free` of an address that is not a live heap block start.
    BadFree(u64),
    /// Frame operations must follow stack discipline (pop the top frame).
    FrameDiscipline(String),
    /// Type-system failure (incomplete type etc.).
    Type(String),
}

impl From<TypeError> for MemError {
    fn from(e: TypeError) -> Self {
        MemError::Type(e.to_string())
    }
}

impl From<ElementError> for MemError {
    fn from(e: ElementError) -> Self {
        MemError::Type(e.to_string())
    }
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory(s) => write!(f, "out of memory in {s} segment"),
            MemError::BadAddress(a) => write!(f, "address {a:#x} is not in any live block"),
            MemError::NotALeaf(a) => write!(f, "address {a:#x} is not a scalar boundary"),
            MemError::BadFree(a) => write!(f, "free of non-heap-block address {a:#x}"),
            MemError::FrameDiscipline(m) => write!(f, "frame discipline violation: {m}"),
            MemError::Type(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Allocation statistics, used by the §4.3 overhead experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of `malloc` calls.
    pub mallocs: u64,
    /// Number of `free` calls.
    pub frees: u64,
    /// Total bytes ever allocated on the heap.
    pub heap_bytes_allocated: u64,
    /// Stack frames pushed.
    pub frames_pushed: u64,
    /// Blocks currently live (all segments).
    pub live_blocks: u64,
    /// Bytes currently live (all segments).
    pub live_bytes: u64,
}

#[derive(Debug, Clone)]
struct Frame {
    id: FrameId,
    #[allow(dead_code)]
    name: String,
    blocks: Vec<u64>,
    saved_stack_top: u64,
}

/// A simulated process address space on one architecture.
///
/// Owns the process's TI table ([`TypeTable`]) and memoized layout model,
/// because a process and its type information are compiled together.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    arch: Architecture,
    types: TypeTable,
    model: ElementModel,
    /// Block storage arena; `None` slots are freed blocks. The map below
    /// indexes it by start address (compact values keep the B-tree
    /// cache-friendly: address→block resolution is the hottest operation
    /// in the simulator).
    arena: Vec<Option<MemoryBlock>>,
    by_addr: BTreeMap<u64, u32>,
    global_top: u64,
    stack_top: u64,
    heap_top: u64,
    /// Sorted, coalesced free spans: (addr, size).
    free_list: Vec<(u64, u64)>,
    frames: Vec<Frame>,
    next_frame: u64,
    stats: AllocStats,
    plans: HashMap<TypeId, Arc<SavePlan>>,
}

impl AddressSpace {
    /// Fresh empty address space for `arch`.
    pub fn new(arch: Architecture) -> Self {
        arch.segments.validate().expect("invalid segment map");
        let global_top = arch.segments.global.base;
        let stack_top = arch.segments.stack.end();
        let heap_top = arch.segments.heap.base;
        AddressSpace {
            arch,
            types: TypeTable::new(),
            model: ElementModel::new(),
            arena: Vec::new(),
            by_addr: BTreeMap::new(),
            global_top,
            stack_top,
            heap_top,
            free_list: Vec::new(),
            frames: Vec::new(),
            next_frame: 0,
            stats: AllocStats::default(),
            plans: HashMap::new(),
        }
    }

    /// The machine this space simulates.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The process's TI table.
    pub fn types(&self) -> &TypeTable {
        &self.types
    }

    /// Mutable TI table (programs register their types here).
    pub fn types_mut(&mut self) -> &mut TypeTable {
        &mut self.types
    }

    /// Replace the TI table wholesale (used when a pre-compiled program
    /// carries its own table). Must be called before any allocation.
    pub fn install_types(&mut self, table: TypeTable) {
        assert!(self.by_addr.is_empty(), "install_types after allocation");
        self.types = table;
        self.model = ElementModel::new();
        self.plans.clear();
    }

    /// Byte offset of struct field `field` of `st` on this machine.
    pub fn field_offset(&mut self, st: TypeId, field: usize) -> Result<u64, MemError> {
        let offs = self
            .model
            .engine
            .struct_field_offsets(&self.types, &self.arch, st)?;
        offs.get(field)
            .copied()
            .ok_or_else(|| MemError::Type(format!("struct has no field ordinal {field}")))
    }

    /// Allocation statistics so far.
    pub fn stats(&self) -> AllocStats {
        let mut s = self.stats;
        s.live_blocks = self.by_addr.len() as u64;
        s.live_bytes = self.live_blocks_iter().map(|b| b.size_bytes()).sum();
        s
    }

    /// Pre-size the block arena for an incoming migration image.
    ///
    /// `bytes` is the sender's total live registered bytes, carried in
    /// the image header. Restoration inserts one arena slot per incoming
    /// block; reserving up front replaces the arena's amortized growth
    /// reallocations with a single one. The block count is not known at
    /// this point, so the estimate assumes the smallest heap granule the
    /// workloads allocate (16 bytes per block) and is capped so a huge
    /// image cannot force an absurd reservation.
    pub fn reserve_heap_bytes(&mut self, bytes: u64) {
        const MIN_BLOCK_GUESS: u64 = 16;
        const MAX_SLOTS: u64 = 1 << 20;
        let want = (bytes / MIN_BLOCK_GUESS).clamp(1, MAX_SLOTS) as usize;
        let spare = self.arena.capacity() - self.arena.len();
        if spare < want {
            self.arena.reserve(want - spare);
        }
    }

    fn live_blocks_iter(&self) -> impl Iterator<Item = &MemoryBlock> {
        self.by_addr
            .values()
            .filter_map(|&i| self.arena[i as usize].as_ref())
    }

    #[inline]
    fn block(&self, idx: u32) -> &MemoryBlock {
        self.arena[idx as usize].as_ref().expect("live block")
    }

    #[inline]
    fn block_mut(&mut self, idx: u32) -> &mut MemoryBlock {
        self.arena[idx as usize].as_mut().expect("live block")
    }

    // ----- layout / element queries (memoized per this space) -----

    /// Layout of `ty` on this machine.
    pub fn layout_of(&mut self, ty: TypeId) -> Result<Layout, MemError> {
        Ok(self.model.engine.layout(&self.types, &self.arch, ty)?)
    }

    /// Scalar-leaf count of one value of `ty`.
    pub fn leaf_count(&mut self, ty: TypeId) -> Result<u64, MemError> {
        Ok(self.model.leaf_count(&self.types, ty)?)
    }

    /// Compiled save/restore plan for `ty` (cached).
    pub fn plan_for(&mut self, ty: TypeId) -> Result<Arc<SavePlan>, MemError> {
        if let Some(p) = self.plans.get(&ty) {
            return Ok(Arc::clone(p));
        }
        let p = Arc::new(compile_plan(&mut self.model, &self.types, &self.arch, ty)?);
        self.plans.insert(ty, Arc::clone(&p));
        Ok(p)
    }

    // ----- block creation -----

    fn insert_block(&mut self, b: MemoryBlock) -> u64 {
        let addr = b.addr;
        // Overlap check against the two neighbours only (the map is
        // ordered, so those are the only candidates).
        debug_assert!(
            self.by_addr
                .range(..=addr)
                .next_back()
                .map(|(_, &i)| self.block(i).end() <= addr)
                .unwrap_or(true)
                && self
                    .by_addr
                    .range(addr..)
                    .next()
                    .map(|(_, &i)| self.block(i).addr >= b.end())
                    .unwrap_or(true),
            "block overlap at {addr:#x}"
        );
        let idx = self.arena.len() as u32;
        self.arena.push(Some(b));
        self.by_addr.insert(addr, idx);
        addr
    }

    fn remove_block(&mut self, addr: u64) -> Option<MemoryBlock> {
        let idx = self.by_addr.remove(&addr)?;
        self.arena[idx as usize].take()
    }

    /// Define a global variable block of `count` elements of `ty`.
    pub fn define_global(&mut self, name: &str, ty: TypeId, count: u64) -> Result<u64, MemError> {
        let l = self.layout_of(ty)?;
        let size = l.size * count;
        let addr = align_up(self.global_top, l.align.max(1));
        if addr + size > self.arch.segments.global.end() {
            return Err(MemError::OutOfMemory(SegmentKind::Global));
        }
        self.global_top = addr + size;
        Ok(self.insert_block(MemoryBlock {
            addr,
            ty,
            count,
            segment: SegmentKind::Global,
            name: Some(name.to_string()),
            frame: None,
            bytes: vec![0; size as usize],
        }))
    }

    /// Push a stack frame for function `name`.
    pub fn push_frame(&mut self, name: &str) -> FrameId {
        let id = FrameId(self.next_frame);
        self.next_frame += 1;
        self.stats.frames_pushed += 1;
        self.frames.push(Frame {
            id,
            name: name.to_string(),
            blocks: Vec::new(),
            saved_stack_top: self.stack_top,
        });
        id
    }

    /// Define a local variable in the *top* frame (which must be `frame`).
    ///
    /// Stack allocation grows downward, like the real machines.
    pub fn define_local(
        &mut self,
        frame: FrameId,
        name: &str,
        ty: TypeId,
        count: u64,
    ) -> Result<u64, MemError> {
        let l = self.layout_of(ty)?;
        let top = self
            .frames
            .last()
            .ok_or_else(|| MemError::FrameDiscipline("no frame pushed".into()))?;
        if top.id != frame {
            return Err(MemError::FrameDiscipline(format!(
                "define_local in frame {:?} but top is {:?}",
                frame, top.id
            )));
        }
        let size = l.size * count;
        let addr = (self.stack_top - size) & !(l.align.max(1) - 1);
        if addr < self.arch.segments.stack.base {
            return Err(MemError::OutOfMemory(SegmentKind::Stack));
        }
        self.stack_top = addr;
        let frame_no = frame.0;
        let a = self.insert_block(MemoryBlock {
            addr,
            ty,
            count,
            segment: SegmentKind::Stack,
            name: Some(name.to_string()),
            frame: Some(frame_no),
            bytes: vec![0; size as usize],
        });
        self.frames.last_mut().unwrap().blocks.push(a);
        Ok(a)
    }

    /// Pop the top frame, destroying its locals.
    pub fn pop_frame(&mut self, frame: FrameId) -> Result<(), MemError> {
        let top = self
            .frames
            .last()
            .ok_or_else(|| MemError::FrameDiscipline("no frame to pop".into()))?;
        if top.id != frame {
            return Err(MemError::FrameDiscipline(format!(
                "pop of {:?} but top is {:?}",
                frame, top.id
            )));
        }
        let f = self.frames.pop().unwrap();
        for addr in &f.blocks {
            self.remove_block(*addr);
        }
        self.stack_top = f.saved_stack_top;
        Ok(())
    }

    /// Identifier of the innermost live frame.
    pub fn current_frame(&self) -> Option<FrameId> {
        self.frames.last().map(|f| f.id)
    }

    /// Number of live frames.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Allocate `count` elements of `ty` on the heap (C `malloc`).
    pub fn malloc(&mut self, ty: TypeId, count: u64) -> Result<u64, MemError> {
        let l = self.layout_of(ty)?;
        let size = (l.size * count).max(1);
        let align = l.align.max(1);
        self.stats.mallocs += 1;
        self.stats.heap_bytes_allocated += size;
        // First-fit over the free list.
        let mut chosen: Option<usize> = None;
        for (i, (faddr, fsize)) in self.free_list.iter().enumerate() {
            let start = align_up(*faddr, align);
            if start + size <= faddr + fsize {
                chosen = Some(i);
                break;
            }
        }
        let addr = if let Some(i) = chosen {
            let (faddr, fsize) = self.free_list.remove(i);
            let start = align_up(faddr, align);
            // Return any unused head/tail to the free list.
            if start > faddr {
                self.free_list_insert(faddr, start - faddr);
            }
            let tail = (faddr + fsize) - (start + size);
            if tail > 0 {
                self.free_list_insert(start + size, tail);
            }
            start
        } else {
            let start = align_up(self.heap_top, align);
            if start + size > self.arch.segments.heap.end() {
                return Err(MemError::OutOfMemory(SegmentKind::Heap));
            }
            if start > self.heap_top {
                // alignment gap is permanently unusable; record as free
                self.free_list_insert(self.heap_top, start - self.heap_top);
            }
            self.heap_top = start + size;
            start
        };
        Ok(self.insert_block(MemoryBlock {
            addr,
            ty,
            count,
            segment: SegmentKind::Heap,
            name: None,
            frame: None,
            bytes: vec![0; size as usize],
        }))
    }

    /// Release a heap block (C `free`).
    pub fn free(&mut self, addr: u64) -> Result<(), MemError> {
        match self.by_addr.get(&addr) {
            Some(&i) if self.block(i).segment == SegmentKind::Heap => {}
            _ => return Err(MemError::BadFree(addr)),
        }
        let b = self.remove_block(addr).unwrap();
        self.stats.frees += 1;
        self.free_list_insert(addr, b.size_bytes().max(1));
        Ok(())
    }

    fn free_list_insert(&mut self, addr: u64, size: u64) {
        let pos = self.free_list.partition_point(|&(a, _)| a < addr);
        self.free_list.insert(pos, (addr, size));
        // Coalesce with neighbours.
        if pos + 1 < self.free_list.len() {
            let (na, ns) = self.free_list[pos + 1];
            let (ca, cs) = self.free_list[pos];
            if ca + cs == na {
                self.free_list[pos] = (ca, cs + ns);
                self.free_list.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (pa, ps) = self.free_list[pos - 1];
            let (ca, cs) = self.free_list[pos];
            if pa + ps == ca {
                self.free_list[pos - 1] = (pa, ps + cs);
                self.free_list.remove(pos);
            }
        }
    }

    // ----- resolution & access -----

    /// Find the block containing `addr` (any interior address).
    pub fn resolve(&self, addr: u64) -> Option<ResolvedAddr> {
        let (start, &idx) = self.by_addr.range(..=addr).next_back()?;
        let b = self.block(idx);
        if b.contains(addr) {
            Some(ResolvedAddr {
                block_addr: *start,
                offset: addr - *start,
                idx,
            })
        } else {
            None
        }
    }

    /// The block starting exactly at `block_addr`.
    pub fn block_at(&self, block_addr: u64) -> Option<&MemoryBlock> {
        let &idx = self.by_addr.get(&block_addr)?;
        Some(self.block(idx))
    }

    /// The block containing `addr`.
    pub fn block_containing(&self, addr: u64) -> Option<&MemoryBlock> {
        let r = self.resolve(addr)?;
        Some(self.block(r.idx))
    }

    /// Metadata snapshots of all live blocks, in address order.
    pub fn block_infos(&self) -> Vec<BlockInfo> {
        self.live_blocks_iter().map(BlockInfo::from).collect()
    }

    /// Metadata snapshot of the block starting at `addr`.
    pub fn info_at(&self, addr: u64) -> Option<BlockInfo> {
        self.block_at(addr).map(BlockInfo::from)
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.by_addr.len()
    }

    /// Mutable view of a block's bytes from `addr` to the block end,
    /// together with the architecture (split borrow for bulk decoders).
    pub fn arch_and_bytes_mut(
        &mut self,
        addr: u64,
    ) -> Result<(&Architecture, &mut [u8]), MemError> {
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        let b = self.arena[r.idx as usize].as_mut().expect("live block");
        Ok((&self.arch, &mut b.bytes[r.offset as usize..]))
    }

    /// Read `len` bytes at `addr` (must stay within one block).
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<&[u8], MemError> {
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        let b = self.block(r.idx);
        if r.offset + len > b.size_bytes() {
            return Err(MemError::BadAddress(addr + len - 1));
        }
        Ok(&b.bytes[r.offset as usize..(r.offset + len) as usize])
    }

    /// Write bytes at `addr` (must stay within one block).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        let b = self.block_mut(r.idx);
        let end = r.offset as usize + data.len();
        if end > b.bytes.len() {
            return Err(MemError::BadAddress(addr + data.len() as u64 - 1));
        }
        b.bytes[r.offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    /// The scalar leaf (and its index within the block) at `addr`.
    ///
    /// The returned leaf's `offset` is relative to the *block* start.
    pub fn leaf_at_addr(&mut self, addr: u64) -> Result<(u64, Leaf), MemError> {
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        self.leaf_of_resolved(r, addr)
    }

    fn leaf_of_resolved(&mut self, r: ResolvedAddr, addr: u64) -> Result<(u64, Leaf), MemError> {
        let b = self.block(r.idx);
        let (ty, count) = (b.ty, b.count);
        let elem_size = self.layout_of(ty)?.size;
        let elem_idx = r.offset / elem_size;
        if elem_idx >= count {
            return Err(MemError::BadAddress(addr));
        }
        let inner = r.offset % elem_size;
        let per = self.leaf_count(ty)?;
        let (li, leaf) = self
            .model
            .leaf_index_at_offset(&self.types, &self.arch, ty, inner)
            .map_err(|_| MemError::NotALeaf(addr))?;
        Ok((
            elem_idx * per + li,
            Leaf {
                offset: elem_idx * elem_size + leaf.offset,
                ..leaf
            },
        ))
    }

    /// Address of the `leaf_idx`-th scalar leaf counting from `base`.
    ///
    /// `base` may be a block start or any interior *element boundary*
    /// (e.g. a node inside a pooled arena block): leaves are counted from
    /// the element `base` points at.
    pub fn elem_addr(&mut self, base: u64, leaf_idx: u64) -> Result<u64, MemError> {
        let r = self.resolve(base).ok_or(MemError::BadAddress(base))?;
        let b = self.block(r.idx);
        let (ty, count) = (b.ty, b.count);
        let per = self.leaf_count(ty)?;
        let elem_size = self.layout_of(ty)?.size;
        if r.offset % elem_size != 0 {
            return Err(MemError::NotALeaf(base));
        }
        let elem_idx = r.offset / elem_size + leaf_idx / per;
        if elem_idx >= count {
            return Err(MemError::BadAddress(base));
        }
        let leaf = self
            .model
            .leaf_at_index(&self.types, &self.arch, ty, leaf_idx % per)
            .map_err(|e| MemError::Type(e.to_string()))?;
        Ok(r.block_addr + elem_idx * elem_size + leaf.offset)
    }

    /// Load the scalar stored at `addr`, typed by the block's TI entry.
    pub fn load_scalar(&mut self, addr: u64) -> Result<ScalarValue, MemError> {
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        let (_, leaf) = self.leaf_of_resolved(r, addr)?;
        let size = self.arch.scalar_size(leaf.kind);
        let b = self.block(r.idx);
        let off = leaf.offset as usize;
        let bytes = &b.bytes[off..off + size as usize];
        Ok(self.arch.decode_scalar(leaf.kind, bytes))
    }

    /// Store a scalar at `addr`, converting to the leaf's declared kind.
    pub fn store_scalar(&mut self, addr: u64, v: ScalarValue) -> Result<(), MemError> {
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        let (_, leaf) = self.leaf_of_resolved(r, addr)?;
        let mut tmp = Vec::with_capacity(8);
        self.arch.encode_scalar(leaf.kind, v, &mut tmp);
        let b = self.block_mut(r.idx);
        let off = leaf.offset as usize;
        b.bytes[off..off + tmp.len()].copy_from_slice(&tmp);
        Ok(())
    }

    // ----- typed conveniences for workload code -----

    /// Load a floating-point scalar as f64.
    pub fn load_f64(&mut self, addr: u64) -> Result<f64, MemError> {
        Ok(self.load_scalar(addr)?.as_f64())
    }

    /// Store an f64 (narrowing to the leaf's kind).
    pub fn store_f64(&mut self, addr: u64, v: f64) -> Result<(), MemError> {
        self.store_scalar(addr, ScalarValue::F64(v))
    }

    /// Load an integer scalar as i64.
    pub fn load_int(&mut self, addr: u64) -> Result<i64, MemError> {
        Ok(self.load_scalar(addr)?.as_i64())
    }

    /// Store an i64 (narrowing to the leaf's kind).
    pub fn store_int(&mut self, addr: u64, v: i64) -> Result<(), MemError> {
        self.store_scalar(addr, ScalarValue::Int(v))
    }

    /// Load a pointer value (a raw simulated address; 0 is NULL).
    pub fn load_ptr(&mut self, addr: u64) -> Result<u64, MemError> {
        match self.load_scalar(addr)? {
            ScalarValue::Ptr(p) => Ok(p),
            other => Err(MemError::Type(format!(
                "expected pointer at {addr:#x}, got {other:?}"
            ))),
        }
    }

    /// Store a pointer value.
    pub fn store_ptr(&mut self, addr: u64, target: u64) -> Result<(), MemError> {
        self.store_scalar(addr, ScalarValue::Ptr(target))
    }

    // ----- bulk numeric access -----
    //
    // Numeric kernels (linpack's daxpy) would pay an address resolution
    // per element through `load_f64`/`store_f64`; these helpers resolve
    // once per contiguous run, which is what compiled C enjoys. The run
    // must be a contiguous span of `double` leaves within one block.

    /// Read `n` consecutive doubles starting at `addr` into `out`.
    pub fn read_f64_run(&mut self, addr: u64, n: u64, out: &mut Vec<f64>) -> Result<(), MemError> {
        let (_, leaf) = self.leaf_at_addr(addr)?;
        if leaf.kind != hpm_arch::CScalar::Double {
            return Err(MemError::Type(format!(
                "f64 run over {:?} leaves",
                leaf.kind
            )));
        }
        let bytes = self.read_bytes(addr, n * 8)?;
        let big = self.arch.endianness == hpm_arch::Endianness::Big;
        out.reserve(n as usize);
        for chunk in bytes.chunks_exact(8) {
            let raw: [u8; 8] = chunk.try_into().unwrap();
            let bits = if big {
                u64::from_be_bytes(raw)
            } else {
                u64::from_le_bytes(raw)
            };
            out.push(f64::from_bits(bits));
        }
        Ok(())
    }

    /// Write consecutive doubles starting at `addr`.
    pub fn write_f64_run(&mut self, addr: u64, vals: &[f64]) -> Result<(), MemError> {
        let (_, leaf) = self.leaf_at_addr(addr)?;
        if leaf.kind != hpm_arch::CScalar::Double {
            return Err(MemError::Type(format!(
                "f64 run over {:?} leaves",
                leaf.kind
            )));
        }
        let big = self.arch.endianness == hpm_arch::Endianness::Big;
        let r = self.resolve(addr).ok_or(MemError::BadAddress(addr))?;
        let b = self.block_mut(r.idx);
        let start = r.offset as usize;
        let end = start + vals.len() * 8;
        if end > b.bytes.len() {
            return Err(MemError::BadAddress(addr + vals.len() as u64 * 8 - 1));
        }
        for (i, v) in vals.iter().enumerate() {
            let bits = v.to_bits();
            let raw = if big {
                bits.to_be_bytes()
            } else {
                bits.to_le_bytes()
            };
            b.bytes[start + i * 8..start + i * 8 + 8].copy_from_slice(&raw);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::CScalar;
    use hpm_types::Field;

    fn space() -> AddressSpace {
        AddressSpace::new(Architecture::sparc20())
    }

    #[test]
    fn globals_allocate_in_global_segment() {
        let mut s = space();
        let int = s.types_mut().int();
        let a = s.define_global("x", int, 1).unwrap();
        assert!(s.arch().segments.global.contains(a));
        let b = s.block_at(a).unwrap();
        assert_eq!(b.segment, SegmentKind::Global);
        assert_eq!(b.name.as_deref(), Some("x"));
    }

    #[test]
    fn locals_grow_downward() {
        let mut s = space();
        let int = s.types_mut().int();
        let f = s.push_frame("main");
        let a = s.define_local(f, "a", int, 1).unwrap();
        let b = s.define_local(f, "b", int, 1).unwrap();
        assert!(b < a, "stack must grow downward");
        assert!(s.arch().segments.stack.contains(a));
    }

    #[test]
    fn frame_discipline_enforced() {
        let mut s = space();
        let int = s.types_mut().int();
        let f1 = s.push_frame("main");
        let f2 = s.push_frame("foo");
        assert!(matches!(
            s.define_local(f1, "x", int, 1),
            Err(MemError::FrameDiscipline(_))
        ));
        assert!(matches!(s.pop_frame(f1), Err(MemError::FrameDiscipline(_))));
        s.pop_frame(f2).unwrap();
        s.pop_frame(f1).unwrap();
        assert!(matches!(s.pop_frame(f1), Err(MemError::FrameDiscipline(_))));
    }

    #[test]
    fn pop_frame_kills_locals() {
        let mut s = space();
        let int = s.types_mut().int();
        let f = s.push_frame("foo");
        let a = s.define_local(f, "x", int, 1).unwrap();
        assert!(s.resolve(a).is_some());
        s.pop_frame(f).unwrap();
        assert!(
            s.resolve(a).is_none(),
            "dangling stack address must not resolve"
        );
    }

    #[test]
    fn malloc_free_reuse() {
        let mut s = space();
        let int = s.types_mut().int();
        let a = s.malloc(int, 100).unwrap();
        s.free(a).unwrap();
        let b = s.malloc(int, 50).unwrap();
        assert_eq!(a, b, "first-fit should reuse the freed span");
        let st = s.stats();
        assert_eq!(st.mallocs, 2);
        assert_eq!(st.frees, 1);
    }

    #[test]
    fn double_free_rejected() {
        let mut s = space();
        let int = s.types_mut().int();
        let a = s.malloc(int, 1).unwrap();
        s.free(a).unwrap();
        assert_eq!(s.free(a), Err(MemError::BadFree(a)));
    }

    #[test]
    fn free_of_global_rejected() {
        let mut s = space();
        let int = s.types_mut().int();
        let a = s.define_global("g", int, 1).unwrap();
        assert_eq!(s.free(a), Err(MemError::BadFree(a)));
    }

    #[test]
    fn interior_resolution() {
        let mut s = space();
        let d = s.types_mut().double();
        let a = s.malloc(d, 10).unwrap();
        let r = s.resolve(a + 24).unwrap();
        assert_eq!(r.block_addr, a);
        assert_eq!(r.offset, 24);
        assert!(s.resolve(a + 80).is_none() || s.resolve(a + 80).unwrap().block_addr != a);
    }

    #[test]
    fn unmapped_address_fails() {
        let s = space();
        assert!(s.resolve(0).is_none());
        assert!(s.resolve(0x2000_0000).is_none());
    }

    #[test]
    fn scalar_store_load_via_struct_field() {
        let mut s = space();
        let node = s.types_mut().declare_struct("node");
        let link = s.types_mut().pointer_to(node);
        let fl = s.types_mut().float();
        s.types_mut()
            .define_struct(node, vec![Field::new("data", fl), Field::new("link", link)])
            .unwrap();
        let a = s.malloc(node, 1).unwrap();
        let data_addr = s.elem_addr(a, 0).unwrap();
        let link_addr = s.elem_addr(a, 1).unwrap();
        s.store_f64(data_addr, 10.0).unwrap();
        s.store_ptr(link_addr, a).unwrap();
        assert_eq!(s.load_f64(data_addr).unwrap(), 10.0);
        assert_eq!(s.load_ptr(link_addr).unwrap(), a);
    }

    #[test]
    fn pointer_bytes_are_native_layout() {
        // Verify the pointer really lives in the block's bytes with the
        // machine's endianness: big-endian on SPARC.
        let mut s = space();
        let int = s.types_mut().int();
        let pi = s.types_mut().pointer_to(int);
        let a = s.malloc(pi, 1).unwrap();
        s.store_ptr(a, 0x1234_5678).unwrap();
        assert_eq!(s.read_bytes(a, 4).unwrap(), &[0x12, 0x34, 0x56, 0x78]);

        let mut s2 = AddressSpace::new(Architecture::dec5000());
        let int2 = s2.types_mut().int();
        let pi2 = s2.types_mut().pointer_to(int2);
        let a2 = s2.malloc(pi2, 1).unwrap();
        s2.store_ptr(a2, 0x1234_5678).unwrap();
        assert_eq!(s2.read_bytes(a2, 4).unwrap(), &[0x78, 0x56, 0x34, 0x12]);
    }

    #[test]
    fn store_to_padding_rejected() {
        let mut s = space();
        let c = s.types_mut().char_();
        let i = s.types_mut().int();
        let st = s
            .types_mut()
            .struct_type("ci", vec![Field::new("c", c), Field::new("i", i)])
            .unwrap();
        let a = s.malloc(st, 1).unwrap();
        assert!(matches!(s.store_int(a + 2, 1), Err(MemError::NotALeaf(_))));
    }

    #[test]
    fn narrowing_store_wraps_like_c() {
        let mut s = space();
        let c = s.types_mut().char_();
        let a = s.malloc(c, 1).unwrap();
        s.store_int(a, 0x1FF).unwrap(); // char truncates to 0xFF == -1
        assert_eq!(s.load_int(a).unwrap(), -1);
    }

    #[test]
    fn elem_addr_multi_element_block() {
        let mut s = space();
        let d = s.types_mut().double();
        let a = s.malloc(d, 5).unwrap();
        assert_eq!(s.elem_addr(a, 0).unwrap(), a);
        assert_eq!(s.elem_addr(a, 3).unwrap(), a + 24);
        assert!(s.elem_addr(a, 5).is_err());
    }

    #[test]
    fn leaf_at_addr_roundtrip() {
        let mut s = space();
        let node = s.types_mut().declare_struct("n2");
        let link = s.types_mut().pointer_to(node);
        let fl = s.types_mut().float();
        s.types_mut()
            .define_struct(node, vec![Field::new("data", fl), Field::new("link", link)])
            .unwrap();
        let a = s.malloc(node, 4).unwrap();
        for idx in 0..8 {
            let addr = s.elem_addr(a, idx).unwrap();
            let (got, _) = s.leaf_at_addr(addr).unwrap();
            assert_eq!(got, idx);
        }
    }

    #[test]
    fn cross_block_read_rejected() {
        let mut s = space();
        let i = s.types_mut().int();
        let a = s.malloc(i, 2).unwrap();
        assert!(s.read_bytes(a, 8).is_ok());
        assert!(s.read_bytes(a, 9).is_err());
    }

    #[test]
    fn malloc_respects_alignment() {
        let mut s = space();
        let c = s.types_mut().char_();
        let d = s.types_mut().double();
        let a = s.malloc(c, 3).unwrap();
        let b = s.malloc(d, 1).unwrap();
        assert_eq!(b % 8, 0, "double block must be 8-aligned, got {b:#x}");
        assert!(b >= a + 3);
    }

    #[test]
    fn heap_exhaustion_detected() {
        let mut arch = Architecture::sparc20();
        arch.segments.heap.size = 64;
        let mut s = AddressSpace::new(arch);
        let d = s.types_mut().double();
        assert!(s.malloc(d, 4).is_ok());
        assert!(matches!(
            s.malloc(d, 8),
            Err(MemError::OutOfMemory(SegmentKind::Heap))
        ));
    }

    #[test]
    fn uchar_loads_unsigned() {
        let mut s = space();
        let uc = s.types_mut().scalar(CScalar::UChar);
        let a = s.malloc(uc, 1).unwrap();
        s.store_int(a, 0xFF).unwrap();
        assert_eq!(s.load_scalar(a).unwrap(), ScalarValue::Uint(255));
    }
}
