//! # hpm-memory — simulated heterogeneous process address space
//!
//! The paper migrates real C processes whose memory blocks live at raw
//! machine addresses in three segments (global, heap, stack — Figure 1).
//! Raw-pointer process images clash with Rust's safety model, so this
//! crate provides the documented substitution: a byte-accurate *simulated*
//! address space.
//!
//! Everything the collection/restoration algorithms can observe is
//! preserved:
//!
//! * memory blocks live at numeric addresses inside per-segment spans;
//! * a pointer **is** a raw address stored in the block's bytes using the
//!   machine's endianness and pointer width (read it back on the wrong
//!   machine and you get garbage — exactly why migration needs the MSR
//!   machinery);
//! * interior pointers (into the middle of arrays/structs) are legal;
//! * address→block resolution requires a genuine search;
//! * the heap allocator reuses freed space, so address order is not
//!   allocation order.
//!
//! The [`AddressSpace`] owns the process's [`TypeTable`] (each executable
//! carries its own copy of the TI table) and an [`ElementModel`] memoizing
//! layout queries for its architecture.

mod block;
mod space;

pub use block::{BlockInfo, MemoryBlock};
pub use space::{AddressSpace, AllocStats, FrameId, MemError, ResolvedAddr};

#[cfg(test)]
mod proptests {
    use super::*;
    use hpm_arch::{Architecture, CScalar, ScalarValue};
    use proptest::prelude::*;

    proptest! {
        /// Heap blocks never overlap, across arbitrary malloc/free
        /// interleavings, and free space is reused.
        #[test]
        fn allocator_no_overlap(ops in proptest::collection::vec((any::<bool>(), 1u64..64), 1..120)) {
            let mut space = AddressSpace::new(Architecture::sparc20());
            let int = space.types_mut().int();
            let mut live: Vec<u64> = Vec::new();
            for (is_alloc, n) in ops {
                if is_alloc || live.is_empty() {
                    let addr = space.malloc(int, n).unwrap();
                    live.push(addr);
                } else {
                    let idx = (n as usize) % live.len();
                    let addr = live.swap_remove(idx);
                    space.free(addr).unwrap();
                }
            }
            // Verify disjointness of all live blocks.
            let mut spans: Vec<(u64, u64)> = live
                .iter()
                .map(|&a| {
                    let b = space.block_at(a).unwrap();
                    (b.addr, b.size_bytes())
                })
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0, "blocks overlap: {w:?}");
            }
        }

        /// Scalar stores round-trip through memory bytes on every preset.
        #[test]
        fn store_load_roundtrip(v in any::<i32>(), idx in 0u64..10) {
            for arch in Architecture::presets() {
                let mut space = AddressSpace::new(arch);
                let int = space.types_mut().int();
                let addr = space.malloc(int, 10).unwrap();
                let ea = space.elem_addr(addr, idx).unwrap();
                space.store_scalar(ea, ScalarValue::Int(v as i64)).unwrap();
                let got = space.load_scalar(ea).unwrap();
                prop_assert_eq!(got, ScalarValue::Int(v as i64));
            }
        }

        /// Stores are local: writing one element never disturbs others.
        #[test]
        fn store_is_local(vals in proptest::collection::vec(any::<i16>(), 8..16), target in 0usize..8) {
            let mut space = AddressSpace::new(Architecture::dec5000());
            let short = space.types_mut().scalar(CScalar::Short);
            let addr = space.malloc(short, vals.len() as u64).unwrap();
            for (i, v) in vals.iter().enumerate() {
                let ea = space.elem_addr(addr, i as u64).unwrap();
                space.store_scalar(ea, ScalarValue::Int(*v as i64)).unwrap();
            }
            let ea = space.elem_addr(addr, target as u64).unwrap();
            space.store_scalar(ea, ScalarValue::Int(-2)).unwrap();
            for (i, v) in vals.iter().enumerate() {
                let expect = if i == target { -2 } else { *v as i64 };
                let ea = space.elem_addr(addr, i as u64).unwrap();
                prop_assert_eq!(space.load_scalar(ea).unwrap(), ScalarValue::Int(expect));
            }
        }
    }
}
