//! # hpm-memory — simulated heterogeneous process address space
//!
//! The paper migrates real C processes whose memory blocks live at raw
//! machine addresses in three segments (global, heap, stack — Figure 1).
//! Raw-pointer process images clash with Rust's safety model, so this
//! crate provides the documented substitution: a byte-accurate *simulated*
//! address space.
//!
//! Everything the collection/restoration algorithms can observe is
//! preserved:
//!
//! * memory blocks live at numeric addresses inside per-segment spans;
//! * a pointer **is** a raw address stored in the block's bytes using the
//!   machine's endianness and pointer width (read it back on the wrong
//!   machine and you get garbage — exactly why migration needs the MSR
//!   machinery);
//! * interior pointers (into the middle of arrays/structs) are legal;
//! * address→block resolution requires a genuine search;
//! * the heap allocator reuses freed space, so address order is not
//!   allocation order.
//!
//! The [`AddressSpace`] owns the process's [`TypeTable`] (each executable
//! carries its own copy of the TI table) and an [`ElementModel`] memoizing
//! layout queries for its architecture.

mod block;
mod space;

pub use block::{BlockInfo, MemoryBlock};
pub use space::{AddressSpace, AllocStats, FrameId, MemError, ResolvedAddr};

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use hpm_arch::{Architecture, CScalar, ScalarValue};

    /// Deterministic splitmix64 driving the op-sequence sweeps (replaces
    /// the external property-testing RNG).
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Heap blocks never overlap, across varied malloc/free
    /// interleavings, and free space is reused.
    #[test]
    fn allocator_no_overlap() {
        for round in 0..16u64 {
            let mut s = 0xA110C ^ round;
            let n_ops = 1 + (next(&mut s) % 120) as usize;
            let mut space = AddressSpace::new(Architecture::sparc20());
            let int = space.types_mut().int();
            let mut live: Vec<u64> = Vec::new();
            for _ in 0..n_ops {
                let is_alloc = next(&mut s).is_multiple_of(2);
                let n = 1 + next(&mut s) % 63;
                if is_alloc || live.is_empty() {
                    let addr = space.malloc(int, n).unwrap();
                    live.push(addr);
                } else {
                    let idx = (n as usize) % live.len();
                    let addr = live.swap_remove(idx);
                    space.free(addr).unwrap();
                }
            }
            // Verify disjointness of all live blocks.
            let mut spans: Vec<(u64, u64)> = live
                .iter()
                .map(|&a| {
                    let b = space.block_at(a).unwrap();
                    (b.addr, b.size_bytes())
                })
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "blocks overlap: {w:?}");
            }
        }
    }

    /// Scalar stores round-trip through memory bytes on every preset.
    #[test]
    fn store_load_roundtrip() {
        let mut s = 0x57031u64;
        for _ in 0..24 {
            let v = next(&mut s) as i32;
            let idx = next(&mut s) % 10;
            for arch in Architecture::presets() {
                let mut space = AddressSpace::new(arch);
                let int = space.types_mut().int();
                let addr = space.malloc(int, 10).unwrap();
                let ea = space.elem_addr(addr, idx).unwrap();
                space.store_scalar(ea, ScalarValue::Int(v as i64)).unwrap();
                let got = space.load_scalar(ea).unwrap();
                assert_eq!(got, ScalarValue::Int(v as i64));
            }
        }
    }

    /// Stores are local: writing one element never disturbs others.
    #[test]
    fn store_is_local() {
        let mut s = 0x10CA1u64;
        for _ in 0..16 {
            let len = 8 + (next(&mut s) % 8) as usize;
            let vals: Vec<i16> = (0..len).map(|_| next(&mut s) as i16).collect();
            let target = (next(&mut s) % 8) as usize;
            let mut space = AddressSpace::new(Architecture::dec5000());
            let short = space.types_mut().scalar(CScalar::Short);
            let addr = space.malloc(short, vals.len() as u64).unwrap();
            for (i, v) in vals.iter().enumerate() {
                let ea = space.elem_addr(addr, i as u64).unwrap();
                space.store_scalar(ea, ScalarValue::Int(*v as i64)).unwrap();
            }
            let ea = space.elem_addr(addr, target as u64).unwrap();
            space.store_scalar(ea, ScalarValue::Int(-2)).unwrap();
            for (i, v) in vals.iter().enumerate() {
                let expect = if i == target { -2 } else { *v as i64 };
                let ea = space.elem_addr(addr, i as u64).unwrap();
                assert_eq!(space.load_scalar(ea).unwrap(), ScalarValue::Int(expect));
            }
        }
    }
}
