//! # hpm-workloads — the paper's evaluation programs
//!
//! §4.1: "The experimental results of three programs, namely,
//! test_pointer, linpack benchmark, and bitonic sort program, which
//! represent different classes of applications, are selected."
//!
//! Each program here is the *post-annotation* form of those C programs:
//! structured around [`MigCtx`](hpm_migrate::MigCtx) poll-points with
//! explicit live-variable sets, computing entirely inside the simulated
//! address space so every byte is subject to collection/restoration.
//!
//! * [`figure1`] — the exact illustrative program of the paper's
//!   Figure 1 (12 MSR vertices, 12 edges), migrating inside `foo` on the
//!   fifth loop iteration.
//! * [`test_pointer`] — the synthetic pointer-zoo program: a binary tree,
//!   a pointer to int, a pointer to an array of 10 ints, a pointer to an
//!   array of 10 pointers to ints, and a tree-like structure with shared
//!   nodes (a DAG).
//! * [`linpack`] — the netlib linpack benchmark: `matgen` + `dgefa`
//!   (Gaussian elimination with partial pivoting) + `dgesl`, over
//!   column-major `double` matrices; few MSR nodes, each large.
//! * [`bitonic`] — the bitonic/BST sort: a binary tree of random
//!   integers sorted by in-order traversal; many small MSR nodes, with
//!   the per-node vs pooled ("smart") allocation policies of §4.3.

pub mod bitonic;
pub mod figure1;
pub mod linpack;
pub mod test_pointer;

pub use bitonic::BitonicSort;
pub use figure1::Figure1;
pub use linpack::{Linpack, PollPlacement};
pub use test_pointer::TestPointer;

/// Compare two result digests, returning the first differing key.
pub fn diff_results(
    a: &[(String, String)],
    b: &[(String, String)],
) -> Option<(String, String, String)> {
    if a.len() != b.len() {
        return Some(("<length>".into(), a.len().to_string(), b.len().to_string()));
    }
    for ((ka, va), (kb, vb)) in a.iter().zip(b) {
        if ka != kb {
            return Some(("<key>".into(), ka.clone(), kb.clone()));
        }
        if va != vb {
            return Some((ka.clone(), va.clone(), vb.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_results_finds_mismatch() {
        let a = vec![("x".to_string(), "1".to_string())];
        let b = vec![("x".to_string(), "2".to_string())];
        assert_eq!(diff_results(&a, &a.clone()), None);
        assert!(diff_results(&a, &b).is_some());
        let c = vec![];
        assert!(diff_results(&a, &c).is_some());
    }
}
