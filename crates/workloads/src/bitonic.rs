//! The bitonic sort program: a binary search tree of random integers.
//!
//! §4.1: "In this program, a binary tree is used to store randomly
//! generated integer numbers. The program manipulates the tree so that
//! the numbers are sorted when the tree is traversed. The program
//! demonstrates extensive memory allocations and recursions."
//!
//! The opposite profile from linpack: *many small* MSR nodes. Collection
//! must search the MSRLT once per pointer (`O(n log n)` total), which is
//! why Figure 2(b) shows collection pulling above restoration as the
//! node count grows.
//!
//! The random stream lives in a simulated global (an LCG state), so a
//! migration mid-insertion resumes the *same* random sequence on the
//! destination machine — byte-identical final trees.
//!
//! §4.3's "smart memory allocation policies" are implemented as the
//! [`AllocPolicy::Pooled`] mode: nodes come from one pre-allocated pool
//! block (a single MSRLT entry; node pointers become interior pointers),
//! versus [`AllocPolicy::PerNode`] where every node is its own `malloc`
//! and MSRLT registration.

use hpm_migrate::{Flow, MigCtx, MigError, MigratableProgram, Process};
use hpm_types::{Field, TypeId};

/// Poll-point in the insertion loop (the migration point).
pub const PP_INSERT: u32 = 1;

/// How tree nodes are allocated (§4.3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// One `malloc` + MSRLT registration per node (the measured default).
    PerNode,
    /// One pool block for all nodes; "allocation" bumps an index into it
    /// (the paper's suggested smart policy).
    Pooled,
}

/// The bitonic/BST sort workload.
#[derive(Debug, Clone)]
pub struct BitonicSort {
    /// How many integers to sort (the paper sweeps up to ~100 000).
    pub n: u64,
    /// Allocation policy.
    pub policy: AllocPolicy,
    /// LCG seed.
    pub seed: u32,
    digest: Option<Vec<(String, String)>>,
}

impl BitonicSort {
    /// Standard per-node configuration.
    pub fn new(n: u64) -> Self {
        BitonicSort {
            n,
            policy: AllocPolicy::PerNode,
            seed: 0x5EED_1234,
            digest: None,
        }
    }

    /// Pooled ("smart allocation") configuration.
    pub fn pooled(n: u64) -> Self {
        BitonicSort {
            policy: AllocPolicy::Pooled,
            ..BitonicSort::new(n)
        }
    }

    fn node_ty(proc: &mut Process) -> TypeId {
        proc.space
            .types()
            .struct_by_name("bnode")
            .expect("setup ran")
    }

    /// Allocate one node under the configured policy.
    fn alloc_node(&self, proc: &mut Process, g: &Globals) -> Result<u64, MigError> {
        let node = Self::node_ty(proc);
        match self.policy {
            AllocPolicy::PerNode => proc.malloc(node, 1),
            AllocPolicy::Pooled => {
                let pool = proc.space.load_ptr(g.pool)?;
                let next = proc.space.load_int(g.pool_next)?;
                let per = proc.space.leaf_count(node)?;
                proc.space.store_int(g.pool_next, next + 1)?;
                Ok(proc.space.elem_addr(pool, next as u64 * per)?)
            }
        }
    }

    /// One LCG step on the migratable RNG state; returns the value.
    fn next_random(proc: &mut Process, g: &Globals) -> Result<i64, MigError> {
        let s = proc.space.load_scalar(g.rng)?;
        let state = match s {
            hpm_arch::ScalarValue::Uint(v) => v as u32,
            other => other.as_i64() as u32,
        };
        let next = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        proc.space
            .store_scalar(g.rng, hpm_arch::ScalarValue::Uint(next as u64))?;
        Ok((next >> 8) as i64 & 0xF_FFFF)
    }

    /// Iterative BST insert through simulated pointers.
    fn insert(
        &self,
        proc: &mut Process,
        g: &Globals,
        node_addr: u64,
        value: i64,
    ) -> Result<(), MigError> {
        let v = proc.space.elem_addr(node_addr, 0)?;
        proc.space.store_int(v, value)?;
        let root = proc.space.load_ptr(g.root)?;
        if root == 0 {
            proc.space.store_ptr(g.root, node_addr)?;
            return Ok(());
        }
        let mut cur = root;
        loop {
            let cv_addr = proc.space.elem_addr(cur, 0)?;
            let cv = proc.space.load_int(cv_addr)?;
            let slot_idx = if value < cv { 1 } else { 2 };
            let slot = proc.space.elem_addr(cur, slot_idx)?;
            let child = proc.space.load_ptr(slot)?;
            if child == 0 {
                proc.space.store_ptr(slot, node_addr)?;
                return Ok(());
            }
            cur = child;
        }
    }
}

struct Globals {
    root: u64,
    rng: u64,
    count: u64,
    pool: u64,
    pool_next: u64,
}

fn globals(proc: &mut Process) -> Globals {
    let infos = proc.space.block_infos();
    let find = |name: &str| {
        infos
            .iter()
            .find(|b| b.name.as_deref() == Some(name))
            .unwrap_or_else(|| panic!("global {name}"))
            .addr
    };
    Globals {
        root: find("root"),
        rng: find("rng"),
        count: find("count"),
        pool: find("pool"),
        pool_next: find("pool_next"),
    }
}

impl MigratableProgram for BitonicSort {
    fn name(&self) -> &'static str {
        "bitonic"
    }

    fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
        let t = proc.space.types_mut();
        let int = t.int();
        let uint = t.scalar(hpm_arch::CScalar::UInt);
        let bnode = t.declare_struct("bnode");
        let p_bnode = t.pointer_to(bnode);
        t.define_struct(
            bnode,
            vec![
                Field::new("value", int),
                Field::new("left", p_bnode),
                Field::new("right", p_bnode),
            ],
        )
        .map_err(|e| MigError::Protocol(e.to_string()))?;
        proc.define_global("root", p_bnode, 1)?;
        proc.define_global("rng", uint, 1)?;
        proc.define_global("count", int, 1)?;
        proc.define_global("pool", p_bnode, 1)?;
        proc.define_global("pool_next", int, 1)?;
        Ok(())
    }

    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
        let int = ctx.proc().space.types_mut().int();
        let g = globals(ctx.proc());
        let bnode = Self::node_ty(ctx.proc());

        let m = ctx.enter("main")?;
        let i = ctx.local(m, "i", int, 1)?;
        let live = [i, g.root, g.rng, g.count, g.pool, g.pool_next];

        let mut iv: i64;
        if let Some(PP_INSERT) = ctx.resume_point() {
            ctx.restore_frame(&live)?;
            iv = ctx.proc().space.load_int(i)?;
        } else {
            ctx.proc()
                .space
                .store_scalar(g.rng, hpm_arch::ScalarValue::Uint(self.seed as u64))?;
            if self.policy == AllocPolicy::Pooled {
                let pool = ctx.proc().malloc(bnode, self.n)?;
                ctx.proc().space.store_ptr(g.pool, pool)?;
            }
            iv = 0;
        }

        while (iv as u64) < self.n {
            ctx.proc().space.store_int(i, iv)?;
            if ctx.poll() {
                ctx.save_frame(PP_INSERT, &live)?;
                return Ok(Flow::Migrate);
            }
            let value = Self::next_random(ctx.proc(), &g)?;
            let node = self.alloc_node(ctx.proc(), &g)?;
            self.insert(ctx.proc(), &g, node, value)?;
            let c = ctx.proc().space.load_int(g.count)?;
            ctx.proc().space.store_int(g.count, c + 1)?;
            iv += 1;
        }

        // In-order traversal: the numbers come out sorted.
        let digest = self.traverse_digest(ctx.proc(), &g)?;
        self.digest = Some(digest);
        ctx.leave(m)?;
        Ok(Flow::Done)
    }

    fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
        self.digest
            .clone()
            .ok_or_else(|| MigError::Protocol("bitonic has not completed".into()))
    }
}

impl BitonicSort {
    fn traverse_digest(
        &self,
        proc: &mut Process,
        g: &Globals,
    ) -> Result<Vec<(String, String)>, MigError> {
        let mut stack = Vec::new();
        let mut cur = proc.space.load_ptr(g.root)?;
        let mut count = 0u64;
        let mut sorted = true;
        let mut prev = i64::MIN;
        let mut hash = 0u64;
        while cur != 0 || !stack.is_empty() {
            while cur != 0 {
                stack.push(cur);
                let l = proc.space.elem_addr(cur, 1)?;
                cur = proc.space.load_ptr(l)?;
            }
            let n = stack.pop().unwrap();
            let va = proc.space.elem_addr(n, 0)?;
            let v = proc.space.load_int(va)?;
            if v < prev {
                sorted = false;
            }
            prev = v;
            count += 1;
            hash = hash.wrapping_mul(1_000_003).wrapping_add(v as u64);
            let r = proc.space.elem_addr(n, 2)?;
            cur = proc.space.load_ptr(r)?;
        }
        Ok(vec![
            ("sorted".into(), sorted.to_string()),
            ("count".into(), count.to_string()),
            ("order_hash".into(), format!("{hash:#018x}")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_migrate::{run_migrating, run_straight, Trigger};
    use hpm_net::NetworkModel;

    #[test]
    fn sorts_straight() {
        let mut p = BitonicSort::new(500);
        let (r, proc) = run_straight(&mut p, Architecture::ultra5()).unwrap();
        let get = |k: &str| r.iter().find(|(a, _)| a == k).unwrap().1.clone();
        assert_eq!(get("sorted"), "true");
        assert_eq!(get("count"), "500");
        assert!(proc.space.stats().mallocs >= 500);
    }

    #[test]
    fn pooled_sorts_identically() {
        let mut a = BitonicSort::new(300);
        let mut b = BitonicSort::pooled(300);
        let (ra, pa) = run_straight(&mut a, Architecture::ultra5()).unwrap();
        let (rb, pb) = run_straight(&mut b, Architecture::ultra5()).unwrap();
        assert_eq!(crate::diff_results(&ra, &rb), None, "policies must agree");
        assert!(
            pb.msrlt.stats().registrations < pa.msrlt.stats().registrations / 10,
            "pooling collapses MSRLT registrations: {} vs {}",
            pb.msrlt.stats().registrations,
            pa.msrlt.stats().registrations
        );
    }

    #[test]
    fn migrated_sort_matches() {
        let mut p = BitonicSort::new(400);
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            || BitonicSort::new(400),
            Architecture::dec5000(),
            Architecture::sparc20(),
            NetworkModel::ethernet_10(),
            Trigger::AtPollCount(200), // migrate halfway through insertion
        )
        .unwrap();
        assert_eq!(
            crate::diff_results(&expect, &run.results),
            None,
            "{:?}",
            run.results
        );
        // Half the nodes crossed the wire...
        assert!(run.report.collect_stats.blocks_saved >= 199);
        // ...and the rest were allocated on the destination.
        assert_eq!(run.report.chain_depth, 1);
    }

    #[test]
    fn pooled_migration_works() {
        let mut p = BitonicSort::pooled(400);
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            || BitonicSort::pooled(400),
            Architecture::dec5000(),
            Architecture::x86_64_sim(),
            NetworkModel::ethernet_100(),
            Trigger::AtPollCount(123),
        )
        .unwrap();
        assert_eq!(crate::diff_results(&expect, &run.results), None);
        // The entire pool travels as very few blocks.
        assert!(run.report.collect_stats.blocks_saved < 20);
    }
}
