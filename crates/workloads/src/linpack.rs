//! The linpack benchmark (netlib), in migratable form.
//!
//! §4.1: "The linpack benchmark from netlib repository at ORNL is a
//! computational intensive program with arrays of double and arrays of
//! integer data structures. The benchmark solves a system of linear
//! equations, Ax = b." §4.2: "memory spaces for matrices are allocated
//! as local variables at the beginning of the main() function and are
//! referenced by other functions throughout program lifetime. The program
//! is computation intensive and contains no dynamic memory allocation."
//!
//! The structure mirrors netlib's C linpack: `matgen` fills the
//! column-major matrix, `dgefa` performs LU factorization with partial
//! pivoting (idamax / dscal / daxpy), and `dgesl` solves. The matrix,
//! right-hand side, and pivot vector are locals of `main`, referenced
//! from `dgefa`/`dgesl` through pointer parameters — so collection from
//! the nested frame reaches the matrix through the MSR graph, exactly as
//! in the paper.
//!
//! Poll-point placement is a parameter because §4.3 measures it: the
//! sensible placement polls once per `dgefa` column (outer loop); the
//! pathological one polls inside `daxpy`, "a kernel function which
//! performs only few operations but being invoked so many times".
//!
//! `columns_to_factor` bounds the pre-migration compute so the large
//! data-collection experiments (Figure 2(a): 600²–1200² matrices) don't
//! pay an O(n³) simulated factorization; the *migrated data* — the full
//! matrix — is identical. Correctness runs use `full()` and verify the
//! solution against all-ones.

use hpm_migrate::{Flow, MigCtx, MigError, MigratableProgram, Process};
use hpm_types::TypeId;

/// Migration point inside `dgefa`'s column loop.
pub const PP_DGEFA_COL: u32 = 1;
/// Call-site poll-point in `main` around the `dgefa` call.
pub const PP_MAIN_DGEFA: u32 = 2;
/// Poll-point inside `daxpy` (pathological placement, §4.3).
pub const PP_DAXPY: u32 = 3;

/// Where the pre-compiler placed poll-points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollPlacement {
    /// One poll per `dgefa` column — the paper's sensible choice.
    OuterLoop,
    /// A poll inside the `daxpy` kernel — the §4.3 overhead pathology.
    InnerKernel,
    /// No poll-points at all — the unannotated baseline.
    None,
}

/// The linpack workload.
#[derive(Debug, Clone)]
pub struct Linpack {
    /// Matrix order (the paper sweeps 600–1200; Table 1 uses 1000).
    pub n: u64,
    /// Columns of `dgefa` to actually factor (`n` for a full solve).
    pub columns_to_factor: u64,
    /// Whether to run `dgesl` and verify the solution (requires a full
    /// factorization).
    pub solve: bool,
    /// Poll-point placement.
    pub placement: PollPlacement,
    digest: Option<Vec<(String, String)>>,
}

impl Linpack {
    /// Full factor + solve at order `n` (correctness configuration).
    pub fn full(n: u64) -> Self {
        Linpack {
            n,
            columns_to_factor: n,
            solve: true,
            placement: PollPlacement::OuterLoop,
            digest: None,
        }
    }

    /// Data-collection configuration: the full matrix is live but only
    /// `k` columns are factored before/after migration.
    pub fn truncated(n: u64, k: u64) -> Self {
        Linpack {
            n,
            columns_to_factor: k.min(n),
            solve: false,
            placement: PollPlacement::OuterLoop,
            digest: None,
        }
    }

    fn int_ty(proc: &mut Process) -> TypeId {
        proc.space.types_mut().int()
    }

    fn dbl_ty(proc: &mut Process) -> TypeId {
        proc.space.types_mut().double()
    }

    /// Column-major element address: a[i + j*n].
    fn a_elem(proc: &mut Process, a: u64, n: u64, i: u64, j: u64) -> Result<u64, MigError> {
        Ok(proc.space.elem_addr(a, i + j * n)?)
    }

    /// netlib matgen: deterministic pseudo-random fill, b = row sums so
    /// the solution is all-ones.
    fn matgen(&self, proc: &mut Process, a: u64, b: u64) -> Result<(), MigError> {
        let n = self.n;
        let mut init: i64 = 1325;
        let mut col = Vec::with_capacity(n as usize);
        let mut rowsum = vec![0.0f64; n as usize];
        for j in 0..n {
            col.clear();
            for i in 0..n {
                init = (3125 * init) % 65536;
                let v = (init as f64 - 32768.0) / 16384.0;
                col.push(v);
                rowsum[i as usize] += v;
            }
            let cstart = Self::a_elem(proc, a, n, 0, j)?;
            proc.space.write_f64_run(cstart, &col)?;
        }
        let bstart = proc.space.elem_addr(b, 0)?;
        proc.space.write_f64_run(bstart, &rowsum)?;
        Ok(())
    }

    /// idamax: index of the element of max |value| in a column slice.
    fn idamax(proc: &mut Process, start: u64, len: u64) -> Result<u64, MigError> {
        let mut v = Vec::new();
        proc.space.read_f64_run(start, len, &mut v)?;
        let mut best = 0usize;
        let mut bmax = v[0].abs();
        for (i, x) in v.iter().enumerate().skip(1) {
            if x.abs() > bmax {
                bmax = x.abs();
                best = i;
            }
        }
        Ok(best as u64)
    }

    /// daxpy over contiguous column slices: y += alpha * x, with the
    /// §4.3 pathological poll if configured.
    #[allow(clippy::too_many_arguments)]
    fn daxpy(
        &self,
        ctx: &mut MigCtx<'_>,
        len: u64,
        alpha: f64,
        x_start: u64,
        y_start: u64,
    ) -> Result<(), MigError> {
        if self.placement == PollPlacement::InnerKernel {
            // The pathological poll-point: executed O(n²) times. (It can
            // never fire mid-daxpy in our experiments — triggers target
            // the outer placement — but its *check* cost is the point.)
            let _ = ctx.poll();
        }
        if len == 0 || alpha == 0.0 {
            return Ok(());
        }
        let proc = ctx.proc();
        let mut x = Vec::new();
        proc.space.read_f64_run(x_start, len, &mut x)?;
        let mut y = Vec::new();
        proc.space.read_f64_run(y_start, len, &mut y)?;
        for (yi, xi) in y.iter_mut().zip(&x) {
            *yi += alpha * xi;
        }
        proc.space.write_f64_run(y_start, &y)?;
        Ok(())
    }

    /// dgefa: LU factorization with partial pivoting. The migration
    /// point is at the top of the column loop.
    fn dgefa(&self, ctx: &mut MigCtx<'_>, a_ptr: u64, ipvt_ptr: u64) -> Result<Flow, MigError> {
        let n = self.n;
        let int = Self::int_ty(ctx.proc());
        let pd = {
            let t = ctx.proc().space.types_mut();
            let d = t.double();
            t.pointer_to(d)
        };
        let pi_ty = {
            let t = ctx.proc().space.types_mut();
            let i = t.int();
            t.pointer_to(i)
        };
        let f = ctx.enter("dgefa")?;
        let k = ctx.local(f, "k", int, 1)?;
        let a_l = ctx.local(f, "a", pd, 1)?;
        let ipvt_l = ctx.local(f, "ipvt", pi_ty, 1)?;
        ctx.proc().space.store_ptr(a_l, a_ptr)?;
        ctx.proc().space.store_ptr(ipvt_l, ipvt_ptr)?;
        let live = [k, a_l, ipvt_l];

        let mut kv: u64;
        if ctx.resume_point() == Some(PP_DGEFA_COL) {
            ctx.restore_frame(&live)?;
            kv = ctx.proc().space.load_int(k)? as u64;
        } else {
            kv = 0;
        }

        let a = ctx.proc().space.load_ptr(a_l)?;
        let ipvt = ctx.proc().space.load_ptr(ipvt_l)?;
        let last = self.columns_to_factor.min(n.saturating_sub(1));
        while kv < last {
            ctx.proc().space.store_int(k, kv as i64)?;
            if self.placement == PollPlacement::OuterLoop && ctx.poll() {
                ctx.save_frame(PP_DGEFA_COL, &live)?;
                return Ok(Flow::Migrate);
            }
            // l = idamax(n-k, a[k.., k]) + k
            let col_k = Self::a_elem(ctx.proc(), a, n, kv, kv)?;
            let l = Self::idamax(ctx.proc(), col_k, n - kv)? + kv;
            let ipvt_k = ctx.proc().space.elem_addr(ipvt, kv)?;
            ctx.proc().space.store_int(ipvt_k, l as i64)?;
            let a_lk = Self::a_elem(ctx.proc(), a, n, l, kv)?;
            let pivot = ctx.proc().space.load_f64(a_lk)?;
            if pivot == 0.0 {
                kv += 1;
                continue;
            }
            // swap a[l,k] and a[k,k]
            let a_kk = Self::a_elem(ctx.proc(), a, n, kv, kv)?;
            let akk = ctx.proc().space.load_f64(a_kk)?;
            ctx.proc().space.store_f64(a_lk, akk)?;
            ctx.proc().space.store_f64(a_kk, pivot)?;
            // scale the multiplier column: a[k+1.., k] *= -1/pivot
            {
                let start = Self::a_elem(ctx.proc(), a, n, kv + 1, kv)?;
                let len = n - kv - 1;
                if len > 0 {
                    let proc = ctx.proc();
                    let mut v = Vec::new();
                    proc.space.read_f64_run(start, len, &mut v)?;
                    for x in &mut v {
                        *x *= -1.0 / pivot;
                    }
                    proc.space.write_f64_run(start, &v)?;
                }
            }
            // eliminate into the remaining columns
            for j in (kv + 1)..n {
                let a_lj = Self::a_elem(ctx.proc(), a, n, l, j)?;
                let t = ctx.proc().space.load_f64(a_lj)?;
                let a_kj = Self::a_elem(ctx.proc(), a, n, kv, j)?;
                if l != kv {
                    let akj = ctx.proc().space.load_f64(a_kj)?;
                    ctx.proc().space.store_f64(a_lj, akj)?;
                    ctx.proc().space.store_f64(a_kj, t)?;
                }
                let x_start = Self::a_elem(ctx.proc(), a, n, kv + 1, kv)?;
                let y_start = Self::a_elem(ctx.proc(), a, n, kv + 1, j)?;
                self.daxpy(ctx, n - kv - 1, t, x_start, y_start)?;
            }
            kv += 1;
        }
        // ipvt[n-1] = n-1
        if self.columns_to_factor >= n {
            let ip = ctx.proc().space.elem_addr(ipvt, n - 1)?;
            ctx.proc().space.store_int(ip, (n - 1) as i64)?;
        }
        ctx.leave(f)?;
        Ok(Flow::Done)
    }

    /// dgesl: solve using the LU factors (job 0: A x = b).
    fn dgesl(&self, ctx: &mut MigCtx<'_>, a: u64, b: u64, ipvt: u64) -> Result<(), MigError> {
        let n = self.n;
        // forward elimination
        for kv in 0..n - 1 {
            let ip = ctx.proc().space.elem_addr(ipvt, kv)?;
            let l = ctx.proc().space.load_int(ip)? as u64;
            let b_l = ctx.proc().space.elem_addr(b, l)?;
            let t = ctx.proc().space.load_f64(b_l)?;
            if l != kv {
                let b_k = ctx.proc().space.elem_addr(b, kv)?;
                let bk = ctx.proc().space.load_f64(b_k)?;
                ctx.proc().space.store_f64(b_l, bk)?;
                ctx.proc().space.store_f64(b_k, t)?;
            }
            let x_start = Self::a_elem(ctx.proc(), a, n, kv + 1, kv)?;
            let y_start = ctx.proc().space.elem_addr(b, kv + 1)?;
            self.daxpy(ctx, n - kv - 1, t, x_start, y_start)?;
        }
        // back substitution
        for kb in 0..n {
            let kv = n - 1 - kb;
            let b_k = ctx.proc().space.elem_addr(b, kv)?;
            let a_kk = Self::a_elem(ctx.proc(), a, n, kv, kv)?;
            let akk = ctx.proc().space.load_f64(a_kk)?;
            let bk = ctx.proc().space.load_f64(b_k)? / akk;
            ctx.proc().space.store_f64(b_k, bk)?;
            if kv > 0 {
                let x_start = Self::a_elem(ctx.proc(), a, n, 0, kv)?;
                let y_start = ctx.proc().space.elem_addr(b, 0)?;
                self.daxpy(ctx, kv, -bk, x_start, y_start)?;
            }
        }
        Ok(())
    }
}

impl MigratableProgram for Linpack {
    fn name(&self) -> &'static str {
        "linpack"
    }

    fn setup(&mut self, _proc: &mut Process) -> Result<(), MigError> {
        // No globals: the paper notes the matrices are main() locals.
        Ok(())
    }

    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
        let n = self.n;
        let int = Self::int_ty(ctx.proc());
        let dbl = Self::dbl_ty(ctx.proc());

        let m = ctx.enter("main")?;
        let a = ctx.local(m, "a", dbl, n * n)?;
        let b = ctx.local(m, "b", dbl, n)?;
        let ipvt = ctx.local(m, "ipvt", int, n)?;
        let live = [a, b, ipvt];

        if ctx.resume_point() == Some(PP_MAIN_DGEFA) {
            match self.dgefa(ctx, a, ipvt)? {
                Flow::Done => {}
                Flow::Migrate => return Ok(Flow::Migrate),
            }
            ctx.restore_frame(&live)?;
        } else {
            self.matgen(ctx.proc(), a, b)?;
            match self.dgefa(ctx, a, ipvt)? {
                Flow::Done => {}
                Flow::Migrate => {
                    ctx.save_frame(PP_MAIN_DGEFA, &live)?;
                    return Ok(Flow::Migrate);
                }
            }
        }

        if self.solve {
            self.dgesl(ctx, a, b, ipvt)?;
        }

        // Digest before leaving: the blocks die with the frame.
        self.digest = Some(self.compute_digest(ctx.proc(), a, b, ipvt)?);
        ctx.leave(m)?;
        Ok(Flow::Done)
    }

    fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
        self.digest
            .clone()
            .ok_or_else(|| MigError::Protocol("linpack has not completed".into()))
    }
}

impl Linpack {
    fn compute_digest(
        &self,
        proc: &mut Process,
        a: u64,
        b: u64,
        ipvt: u64,
    ) -> Result<Vec<(String, String)>, MigError> {
        let n = self.n;
        let mut out = Vec::new();
        if self.solve {
            // Solution should be all ones.
            let mut x = Vec::new();
            let b0 = proc.space.elem_addr(b, 0)?;
            proc.space.read_f64_run(b0, n, &mut x)?;
            let maxdev = x.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
            let bits = x.iter().fold(0u64, |h, v| h ^ v.to_bits().rotate_left(13));
            out.push(("solution_max_dev".into(), format!("{maxdev:.3e}")));
            out.push(("solution_ok".into(), (maxdev < 1e-6).to_string()));
            out.push(("solution_bits".into(), format!("{bits:#018x}")));
        }
        // Sampled matrix checksum: arch-independent, exact.
        let mut h = 0u64;
        let total = n * n;
        let step = (total / 997).max(1);
        let mut idx = 0;
        while idx < total {
            let e = proc.space.elem_addr(a, idx)?;
            h ^= proc
                .space
                .load_f64(e)?
                .to_bits()
                .rotate_left((idx % 63) as u32);
            idx += step;
        }
        out.push(("matrix_checksum".into(), format!("{h:#018x}")));
        let mut ph = 0i64;
        let lim = self.columns_to_factor.min(n);
        for i in 0..lim {
            let e = proc.space.elem_addr(ipvt, i)?;
            ph = ph.wrapping_mul(31).wrapping_add(proc.space.load_int(e)?);
        }
        out.push(("pivot_hash".into(), ph.to_string()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_migrate::{run_migrating, run_straight, Trigger};
    use hpm_net::NetworkModel;

    #[test]
    fn solves_small_system() {
        let mut p = Linpack::full(30);
        let (results, _) = run_straight(&mut p, Architecture::ultra5()).unwrap();
        let ok = results.iter().find(|(k, _)| k == "solution_ok").unwrap();
        assert_eq!(ok.1, "true", "{results:?}");
    }

    #[test]
    fn migrated_solve_bitwise_matches() {
        let mut p = Linpack::full(24);
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            || Linpack::full(24),
            Architecture::dec5000(),
            Architecture::sparc20(),
            NetworkModel::ethernet_10(),
            Trigger::AtPollCount(10), // migrate at column 10 of dgefa
        )
        .unwrap();
        assert_eq!(
            crate::diff_results(&expect, &run.results),
            None,
            "{:?}",
            run.results
        );
        assert_eq!(run.report.chain_depth, 2, "main → dgefa");
        // "the high-order floating point accuracy" is preserved exactly:
        // solution_bits compared above is a bit-exact check.
    }

    #[test]
    fn truncated_matches_straight_truncated() {
        let mut p = Linpack::truncated(64, 6);
        let (expect, _) = run_straight(&mut p, Architecture::ultra5()).unwrap();
        let run = run_migrating(
            || Linpack::truncated(64, 6),
            Architecture::ultra5(),
            Architecture::ultra5(),
            NetworkModel::ethernet_100(),
            Trigger::AtPollCount(3),
        )
        .unwrap();
        assert_eq!(crate::diff_results(&expect, &run.results), None);
        // ~64*64 doubles + ints must have crossed the wire.
        assert!(run.report.memory_bytes > 64 * 64 * 8);
    }

    #[test]
    fn inner_kernel_polls_much_more() {
        let mut outer = Linpack::full(20);
        outer.placement = PollPlacement::OuterLoop;
        let mut inner = Linpack::full(20);
        inner.placement = PollPlacement::InnerKernel;
        let (_, p1) = run_straight(&mut outer, Architecture::ultra5()).unwrap();
        let (_, p2) = run_straight(&mut inner, Architecture::ultra5()).unwrap();
        assert!(
            p2.poll_count() > p1.poll_count() * 5,
            "inner {} vs outer {}",
            p2.poll_count(),
            p1.poll_count()
        );
    }
}
