//! `test_pointer`: the synthetic pointer-structure program.
//!
//! §4.1: "The test_pointer is a synthesis program which contains various
//! data structures, including a tree structure, a pointer to integer, a
//! pointer to array of 10 integers, a pointer to array of 10 pointers to
//! integers, and a tree-like data structure."
//!
//! Our version builds, in order:
//!
//! 1. a perfect binary tree of `2^depth − 1` nodes with deterministic
//!    values;
//! 2. `int *pi` → a heap int;
//! 3. `int (*pai)[10]` → a heap array of 10 ints;
//! 4. `int *(*papi)[10]` → a heap array of 10 `int*`, of which some
//!    alias the same heap int (shared target), some point at elements of
//!    the heap array (interior pointers), and one is NULL;
//! 5. a "tree-like" structure: a DAG where two parents share a child and
//!    a back-edge forms a cycle — the hard cases for traversal marking.
//!
//! Migration fires inside `build_tree` (nested call), so the chain is
//! `main → build_tree`, and everything built so far must survive.

use hpm_migrate::{Flow, MigCtx, MigError, MigratableProgram, Process};
use hpm_types::{Field, TypeId};

/// Poll-point in the tree-building loop (the migration point).
pub const PP_BUILD: u32 = 1;
/// Call-site poll-point in `main`.
pub const PP_MAIN_CALL: u32 = 2;

/// Tree depth (15 nodes at depth 4 by default).
const DEFAULT_DEPTH: u32 = 4;

/// The synthetic pointer-zoo program.
#[derive(Debug, Clone)]
pub struct TestPointer {
    /// Perfect-tree depth.
    pub depth: u32,
}

impl Default for TestPointer {
    fn default() -> Self {
        TestPointer {
            depth: DEFAULT_DEPTH,
        }
    }
}

struct Types {
    tnode: TypeId,
    int: TypeId,
    p_int: TypeId,
    dag: TypeId,
}

impl TestPointer {
    /// Fresh program with the default tree depth.
    pub fn new() -> Self {
        TestPointer::default()
    }

    fn types(&self, proc: &mut Process) -> Types {
        let t = proc.space.types_mut();
        let tnode = t.struct_by_name("tnode").expect("setup ran");
        let dag = t.struct_by_name("dag").expect("setup ran");
        let int = t.int();
        let p_int = t.pointer_to(int);
        Types {
            tnode,
            int,
            p_int,
            dag,
        }
    }

    /// Build the perfect tree iteratively (level order), polling once per
    /// node: the migration point lives here, mid-construction.
    fn build_tree(
        &self,
        ctx: &mut MigCtx<'_>,
        root_global: u64,
        g: &Globals,
    ) -> Result<Flow, MigError> {
        let ty = self.types(ctx.proc());
        let f = ctx.enter("build_tree")?;
        let k = ctx.local(f, "k", ty.int, 1)?;
        let total = (1u64 << self.depth) - 1;
        // The innermost frame carries the globals (it restores first and
        // immediately uses `root`).
        let live = [k, g.root, g.pi, g.pai, g.papi, g.dag_root];

        let mut kv: i64;
        if ctx.resume_point() == Some(PP_BUILD) {
            ctx.restore_frame(&live)?;
            kv = ctx.proc().space.load_int(k)?;
        } else {
            kv = 0;
        }

        while (kv as u64) < total {
            ctx.proc().space.store_int(k, kv)?;
            if ctx.poll() {
                ctx.save_frame(PP_BUILD, &live)?;
                return Ok(Flow::Migrate);
            }
            // Allocate node number kv (heap indices follow level order):
            // parent of node kv is (kv-1)/2; attach as left/right child.
            let n = ctx.proc().malloc(ty.tnode, 1)?;
            let val = ctx.proc().space.elem_addr(n, 0)?;
            ctx.proc().space.store_int(val, 100 + kv)?;
            if kv == 0 {
                ctx.proc().space.store_ptr(root_global, n)?;
            } else {
                // Find the parent by walking from the root (kv is small).
                let parent = self.node_by_index(ctx.proc(), root_global, ((kv - 1) / 2) as u64)?;
                let slot_idx = if kv % 2 == 1 { 1 } else { 2 }; // left : right
                let slot = ctx.proc().space.elem_addr(parent, slot_idx)?;
                ctx.proc().space.store_ptr(slot, n)?;
            }
            kv += 1;
        }

        ctx.leave(f)?;
        Ok(Flow::Done)
    }

    /// Address of the level-order `idx`-th node, by path from the root.
    fn node_by_index(
        &self,
        proc: &mut Process,
        root_global: u64,
        idx: u64,
    ) -> Result<u64, MigError> {
        // Path bits from the root: record the walk down.
        let mut path = Vec::new();
        let mut i = idx;
        while i > 0 {
            path.push(i % 2 == 1); // true = left child
            i = (i - 1) / 2;
        }
        let mut cur = proc.space.load_ptr(root_global)?;
        for left in path.iter().rev() {
            let slot = proc.space.elem_addr(cur, if *left { 1 } else { 2 })?;
            cur = proc.space.load_ptr(slot)?;
        }
        Ok(cur)
    }

    fn build_pointer_zoo(
        &self,
        proc: &mut Process,
        g: &Globals,
        ty: &Types,
    ) -> Result<(), MigError> {
        // int *pi = malloc(int); *pi = 777;
        let the_int = proc.malloc(ty.int, 1)?;
        proc.space.store_int(the_int, 777)?;
        proc.space.store_ptr(g.pi, the_int)?;

        // int (*pai)[10] — heap array of 10 ints, values 0,10,…,90.
        let arr = proc.malloc(ty.int, 10)?;
        for i in 0..10 {
            let e = proc.space.elem_addr(arr, i)?;
            proc.space.store_int(e, (i * 10) as i64)?;
        }
        proc.space.store_ptr(g.pai, arr)?;

        // int *(*papi)[10] — heap array of 10 int*:
        //  slots 0..3 → the shared heap int (aliasing),
        //  slots 4..8 → interior elements of `arr` (element i-4),
        //  slot 9 → NULL.
        let parr = proc.malloc(ty.p_int, 10)?;
        for i in 0..4u64 {
            let e = proc.space.elem_addr(parr, i)?;
            proc.space.store_ptr(e, the_int)?;
        }
        for i in 4..9u64 {
            let target = proc.space.elem_addr(arr, i - 4)?;
            let e = proc.space.elem_addr(parr, i)?;
            proc.space.store_ptr(e, target)?;
        }
        proc.space.store_ptr(g.papi, parr)?;
        Ok(())
    }

    fn build_dag(&self, proc: &mut Process, g: &Globals, ty: &Types) -> Result<(), MigError> {
        // dag { int tag; dag *x; dag *y; }
        //   top → a, b;  a → shared;  b → shared;  shared.x → top (cycle).
        let top = proc.malloc(ty.dag, 1)?;
        let a = proc.malloc(ty.dag, 1)?;
        let b = proc.malloc(ty.dag, 1)?;
        let shared = proc.malloc(ty.dag, 1)?;
        for (n, tag) in [(top, 1i64), (a, 2), (b, 3), (shared, 4)] {
            let t = proc.space.elem_addr(n, 0)?;
            proc.space.store_int(t, tag)?;
        }
        let set = |proc: &mut Process, node: u64, slot: u64, val: u64| -> Result<(), MigError> {
            let s = proc.space.elem_addr(node, slot)?;
            proc.space.store_ptr(s, val)?;
            Ok(())
        };
        set(proc, top, 1, a)?;
        set(proc, top, 2, b)?;
        set(proc, a, 1, shared)?;
        set(proc, b, 1, shared)?;
        set(proc, shared, 1, top)?; // back-edge: cycle
        proc.space.store_ptr(g.dag_root, top)?;
        Ok(())
    }
}

struct Globals {
    root: u64,
    pi: u64,
    pai: u64,
    papi: u64,
    dag_root: u64,
}

fn globals(proc: &mut Process) -> Globals {
    let find = |name: &str, infos: &[hpm_memory::BlockInfo]| {
        infos
            .iter()
            .find(|b| b.name.as_deref() == Some(name))
            .unwrap()
            .addr
    };
    let infos = proc.space.block_infos();
    Globals {
        root: find("root", &infos),
        pi: find("pi", &infos),
        pai: find("pai", &infos),
        papi: find("papi", &infos),
        dag_root: find("dag_root", &infos),
    }
}

impl MigratableProgram for TestPointer {
    fn name(&self) -> &'static str {
        "test_pointer"
    }

    fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
        let t = proc.space.types_mut();
        let int = t.int();
        let tnode = t.declare_struct("tnode");
        let p_tnode = t.pointer_to(tnode);
        t.define_struct(
            tnode,
            vec![
                Field::new("value", int),
                Field::new("left", p_tnode),
                Field::new("right", p_tnode),
            ],
        )
        .map_err(|e| MigError::Protocol(e.to_string()))?;
        let dag = t.declare_struct("dag");
        let p_dag = t.pointer_to(dag);
        t.define_struct(
            dag,
            vec![
                Field::new("tag", int),
                Field::new("x", p_dag),
                Field::new("y", p_dag),
            ],
        )
        .map_err(|e| MigError::Protocol(e.to_string()))?;
        let p_int = t.pointer_to(int);
        let p_p_int = t.pointer_to(p_int);
        let pp_int_arr = p_p_int; // int *(*papi)[10] modeled as int** to the first slot

        proc.define_global("root", p_tnode, 1)?;
        proc.define_global("pi", p_int, 1)?;
        proc.define_global("pai", p_int, 1)?; // points at arr[0]
        proc.define_global("papi", pp_int_arr, 1)?;
        proc.define_global("dag_root", p_dag, 1)?;
        Ok(())
    }

    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
        let ty = self.types(ctx.proc());
        let g = globals(ctx.proc());

        let m = ctx.enter("main")?;
        let phase = ctx.local(m, "phase", ty.int, 1)?;
        let live = [phase];

        if ctx.resume_point() == Some(PP_MAIN_CALL) {
            match self.build_tree(ctx, g.root, &g)? {
                Flow::Done => {}
                Flow::Migrate => return Ok(Flow::Migrate),
            }
            ctx.restore_frame(&live)?;
        } else {
            // Phase 0: the zoo and the DAG exist before the tree build,
            // so they are live across the migration point.
            ctx.proc().space.store_int(phase, 0)?;
            {
                let proc = ctx.proc();
                // Split borrows: helpers only need Process.
                // (self borrows are fine; ty/g are plain data.)
                self.build_pointer_zoo(proc, &g, &ty)?;
                self.build_dag(proc, &g, &ty)?;
            }
            match self.build_tree(ctx, g.root, &g)? {
                Flow::Done => {}
                Flow::Migrate => {
                    ctx.save_frame(PP_MAIN_CALL, &live)?;
                    return Ok(Flow::Migrate);
                }
            }
        }

        ctx.leave(m)?;
        Ok(Flow::Done)
    }

    fn results(&self, proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
        let g = globals(proc);
        let mut out = Vec::new();

        // Tree: in-order traversal digest.
        let mut stack = vec![];
        let mut cur = proc.space.load_ptr(g.root)?;
        let mut inorder = Vec::new();
        while cur != 0 || !stack.is_empty() {
            while cur != 0 {
                stack.push(cur);
                let l = proc.space.elem_addr(cur, 1)?;
                cur = proc.space.load_ptr(l)?;
            }
            let n = stack.pop().unwrap();
            let v = proc.space.elem_addr(n, 0)?;
            inorder.push(proc.space.load_int(v)?.to_string());
            let r = proc.space.elem_addr(n, 2)?;
            cur = proc.space.load_ptr(r)?;
        }
        out.push(("tree_inorder".into(), inorder.join(",")));

        // pi / pai values.
        let pi_t = proc.space.load_ptr(g.pi)?;
        out.push(("pi_value".into(), proc.space.load_int(pi_t)?.to_string()));
        let arr = proc.space.load_ptr(g.pai)?;
        let mut vals = Vec::new();
        for i in 0..10 {
            let e = proc.space.elem_addr(arr, i)?;
            vals.push(proc.space.load_int(e)?.to_string());
        }
        out.push(("pai_values".into(), vals.join(",")));

        // papi: aliasing and interior-pointer structure, expressed
        // machine-independently (addresses differ across machines).
        let parr = proc.space.load_ptr(g.papi)?;
        let mut desc = Vec::new();
        for i in 0..10u64 {
            let slot = proc.space.elem_addr(parr, i)?;
            let p = proc.space.load_ptr(slot)?;
            if p == 0 {
                desc.push("null".to_string());
            } else if p == pi_t {
                desc.push("pi".to_string());
            } else {
                // which element of arr?
                let mut tagged = String::from("?");
                for k in 0..10 {
                    if proc.space.elem_addr(arr, k)? == p {
                        tagged = format!("arr[{k}]");
                        break;
                    }
                }
                desc.push(tagged);
            }
        }
        out.push(("papi_shape".into(), desc.join(",")));

        // DAG: verify sharing and the cycle survive.
        let top = proc.space.load_ptr(g.dag_root)?;
        let ax = proc.space.elem_addr(top, 1)?;
        let a = proc.space.load_ptr(ax)?;
        let by = proc.space.elem_addr(top, 2)?;
        let b = proc.space.load_ptr(by)?;
        let a_slot = proc.space.elem_addr(a, 1)?;
        let a_child = proc.space.load_ptr(a_slot)?;
        let b_slot = proc.space.elem_addr(b, 1)?;
        let b_child = proc.space.load_ptr(b_slot)?;
        let back_slot = proc.space.elem_addr(a_child, 1)?;
        let shared_back = proc.space.load_ptr(back_slot)?;
        out.push((
            "dag_shared".into(),
            (a_child == b_child && a_child != 0).to_string(),
        ));
        out.push(("dag_cycle".into(), (shared_back == top).to_string()));
        let tag = |proc: &mut Process, n: u64| -> Result<i64, MigError> {
            let t = proc.space.elem_addr(n, 0)?;
            Ok(proc.space.load_int(t)?)
        };
        out.push((
            "dag_tags".into(),
            format!(
                "{},{},{},{}",
                tag(proc, top)?,
                tag(proc, a)?,
                tag(proc, b)?,
                tag(proc, a_child)?
            ),
        ));
        out.push(("live_blocks".into(), proc.space.block_count().to_string()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_migrate::{run_migrating, run_straight, Trigger};
    use hpm_net::NetworkModel;

    #[test]
    fn straight_run_shape() {
        let mut p = TestPointer::new();
        let (results, _) = run_straight(&mut p, Architecture::sparc20()).unwrap();
        let get = |k: &str| results.iter().find(|(a, _)| a == k).unwrap().1.clone();
        assert_eq!(get("pi_value"), "777");
        assert_eq!(get("dag_shared"), "true");
        assert_eq!(get("dag_cycle"), "true");
        assert_eq!(
            get("papi_shape"),
            "pi,pi,pi,pi,arr[0],arr[1],arr[2],arr[3],arr[4],null"
        );
        assert_eq!(get("tree_inorder").split(',').count(), 15);
    }

    #[test]
    fn migrates_mid_tree_build() {
        let mut p = TestPointer::new();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        // 8th node allocation poll: tree half-built at migration.
        let run = run_migrating(
            TestPointer::new,
            Architecture::dec5000(),
            Architecture::sparc20(),
            NetworkModel::ethernet_10(),
            Trigger::AtPollCount(8),
        )
        .unwrap();
        assert_eq!(
            crate::diff_results(&expect, &run.results),
            None,
            "{:?}",
            run.results
        );
        assert_eq!(run.report.chain_depth, 2);
        // Aliased pointers must have been collected once and referenced
        // thereafter (paper: "despite multiple references to MSR's
        // significant nodes, all memory blocks and pointers are collected
        // and restored without duplication").
        assert!(run.report.collect_stats.ptr_ref >= 3);
    }

    #[test]
    fn migration_to_lp64_works() {
        let mut p = TestPointer::new();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            TestPointer::new,
            Architecture::dec5000(),
            Architecture::x86_64_sim(),
            NetworkModel::gigabit(),
            Trigger::AtPollCount(3),
        )
        .unwrap();
        assert_eq!(crate::diff_results(&expect, &run.results), None);
    }
}
