//! The illustrative example program of the paper's Figure 1, verbatim:
//!
//! ```c
//! struct node { float data; struct node *link; };
//! struct node *first, *last;
//! main() {
//!     int i;
//!     int a, *b;
//!     struct node *parray[10];
//!     a = 1;
//!     b = &a;
//!     for (i = 0; i < 10; i++) {
//!         foo(parray + i, &b);
//!         first = parray[0];
//!         last = parray[i];
//!         first->link = last;
//!         if (i > 0) parray[i]->link = parray[i-1];
//!     }
//! }
//! foo(struct node **p, int **q) {
//!     *p = (struct node *) malloc(sizeof(struct node));
//!     (*p)->data = 10.0;
//!     (**q)++;
//! }
//! ```
//!
//! The paper's migration point sits right before the `malloc` in `foo`,
//! taken when the `for` loop "had been executed four times" — i.e. on the
//! fifth call of `foo` (`i == 4`). At that snapshot the memory space
//! holds the 12 MSR vertices of Figure 1(b): `first`, `last`, `i`, `a`,
//! `b`, `parray`, four heap nodes, `p`, and `q`.

use hpm_migrate::{Flow, MigCtx, MigError, MigratableProgram, Process};
use hpm_types::{Field, TypeId};

/// Poll-point id of the migration point in `foo` (paper line 20).
pub const PP_FOO_MALLOC: u32 = 1;
/// Poll-point id of the `foo` call site in `main` (paper line 13).
pub const PP_MAIN_CALL: u32 = 2;

/// The Figure 1 program. Trigger [`hpm_migrate::Trigger::AtPollCount`]
/// with `5` to reproduce the paper's snapshot exactly.
#[derive(Debug, Default, Clone)]
pub struct Figure1 {
    node: Option<TypeId>,
}

struct Types {
    node: TypeId,
    p_node: TypeId,
    int: TypeId,
    p_int: TypeId,
    pp_node: TypeId,
    pp_int: TypeId,
}

impl Figure1 {
    /// Fresh program value.
    pub fn new() -> Self {
        Figure1::default()
    }

    fn types(&self, proc: &mut Process) -> Types {
        let t = proc.space.types_mut();
        let node = t.struct_by_name("node").expect("setup ran");
        let p_node = t.pointer_to(node);
        let int = t.int();
        let p_int = t.pointer_to(int);
        let pp_node = t.pointer_to(p_node);
        let pp_int = t.pointer_to(p_int);
        Types {
            node,
            p_node,
            int,
            p_int,
            pp_node,
            pp_int,
        }
    }

    /// `foo(struct node **p, int **q)`.
    fn foo(&self, ctx: &mut MigCtx<'_>, p_val: u64, q_val: u64) -> Result<Flow, MigError> {
        let ty = self.types(ctx.proc());
        let f = ctx.enter("foo")?;
        let p = ctx.local(f, "p", ty.pp_node, 1)?;
        let q = ctx.local(f, "q", ty.pp_int, 1)?;
        ctx.proc().space.store_ptr(p, p_val)?;
        ctx.proc().space.store_ptr(q, q_val)?;

        // ---- the paper's migration point (before line 20's malloc) ----
        if ctx.resume_point() == Some(PP_FOO_MALLOC) {
            ctx.restore_frame(&[p, q])?;
        } else if ctx.poll() {
            ctx.save_frame(PP_FOO_MALLOC, &[p, q])?;
            return Ok(Flow::Migrate);
        }

        // *p = malloc(sizeof(struct node));
        let n = ctx.proc().malloc(ty.node, 1)?;
        let pv = ctx.proc().space.load_ptr(p)?;
        ctx.proc().space.store_ptr(pv, n)?;
        // (*p)->data = 10.0;
        let data = ctx.proc().space.elem_addr(n, 0)?;
        ctx.proc().space.store_f64(data, 10.0)?;
        // (**q)++;
        let qv = ctx.proc().space.load_ptr(q)?;
        let int_ptr = ctx.proc().space.load_ptr(qv)?;
        let v = ctx.proc().space.load_int(int_ptr)?;
        ctx.proc().space.store_int(int_ptr, v + 1)?;

        ctx.leave(f)?;
        Ok(Flow::Done)
    }
}

impl MigratableProgram for Figure1 {
    fn name(&self) -> &'static str {
        "figure1"
    }

    fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
        let t = proc.space.types_mut();
        let node = t.declare_struct("node");
        let p_node = t.pointer_to(node);
        let float = t.float();
        t.define_struct(
            node,
            vec![Field::new("data", float), Field::new("link", p_node)],
        )
        .map_err(|e| MigError::Protocol(e.to_string()))?;
        self.node = Some(node);
        proc.define_global("first", p_node, 1)?;
        proc.define_global("last", p_node, 1)?;
        Ok(())
    }

    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
        let ty = self.types(ctx.proc());
        let (first, last) = {
            let infos = ctx.proc().space.block_infos();
            let f = infos
                .iter()
                .find(|b| b.name.as_deref() == Some("first"))
                .unwrap()
                .addr;
            let l = infos
                .iter()
                .find(|b| b.name.as_deref() == Some("last"))
                .unwrap()
                .addr;
            (f, l)
        };

        let m = ctx.enter("main")?;
        let i = ctx.local(m, "i", ty.int, 1)?;
        let a = ctx.local(m, "a", ty.int, 1)?;
        let b = ctx.local(m, "b", ty.p_int, 1)?;
        let parray = ctx.local(m, "parray", ty.p_node, 10)?;
        let live: [u64; 6] = [i, a, b, parray, first, last];

        let mut iv: i64;
        if ctx.resume_point() == Some(PP_MAIN_CALL) {
            // Re-enter foo at the recorded call site; it restores itself
            // and finishes the interrupted call.
            match self.foo(ctx, 0, 0)? {
                Flow::Done => {}
                Flow::Migrate => return Ok(Flow::Migrate),
            }
            // Live data of main is restored when control returns here —
            // "the same locations" rule of §3.2.
            ctx.restore_frame(&live)?;
            iv = ctx.proc().space.load_int(i)?;
            self.post_call(ctx, iv, first, last, parray)?;
            iv += 1;
        } else {
            // a = 1; b = &a;
            ctx.proc().space.store_int(a, 1)?;
            ctx.proc().space.store_ptr(b, a)?;
            iv = 0;
        }

        while iv < 10 {
            ctx.proc().space.store_int(i, iv)?;
            // foo(parray + i, &b);
            let p_arg = ctx.proc().space.elem_addr(parray, iv as u64)?;
            match self.foo(ctx, p_arg, b)? {
                Flow::Done => {}
                Flow::Migrate => {
                    ctx.save_frame(PP_MAIN_CALL, &live)?;
                    return Ok(Flow::Migrate);
                }
            }
            self.post_call(ctx, iv, first, last, parray)?;
            iv += 1;
        }

        ctx.leave(m)?;
        Ok(Flow::Done)
    }

    fn results(&self, proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
        let infos = proc.space.block_infos();
        let first = infos
            .iter()
            .find(|b| b.name.as_deref() == Some("first"))
            .unwrap()
            .addr;
        let mut out = Vec::new();
        // Walk the list from `first` through `link`s, reading data values.
        let mut cur = proc.space.load_ptr(first)?;
        let mut hops = 0;
        let mut chain = String::new();
        let mut seen = std::collections::HashSet::new();
        while cur != 0 && seen.insert(cur) && hops < 20 {
            let data = proc.space.elem_addr(cur, 0)?;
            chain.push_str(&format!("{:.1},", proc.space.load_f64(data)?));
            let link = proc.space.elem_addr(cur, 1)?;
            cur = proc.space.load_ptr(link)?;
            hops += 1;
        }
        out.push(("chain".into(), chain));
        out.push(("hops".into(), hops.to_string()));
        out.push(("live_blocks".into(), proc.space.block_count().to_string()));
        Ok(out)
    }
}

impl Figure1 {
    /// The loop body after the `foo` call.
    fn post_call(
        &self,
        ctx: &mut MigCtx<'_>,
        iv: i64,
        first: u64,
        last: u64,
        parray: u64,
    ) -> Result<(), MigError> {
        let space = &mut ctx.proc().space;
        // first = parray[0]; last = parray[i];
        let p0 = space.elem_addr(parray, 0)?;
        let v0 = space.load_ptr(p0)?;
        space.store_ptr(first, v0)?;
        let pi = space.elem_addr(parray, iv as u64)?;
        let vi = space.load_ptr(pi)?;
        space.store_ptr(last, vi)?;
        // first->link = last;
        let f = space.load_ptr(first)?;
        let l = space.load_ptr(last)?;
        let flink = space.elem_addr(f, 1)?;
        space.store_ptr(flink, l)?;
        // if (i > 0) parray[i]->link = parray[i-1];
        if iv > 0 {
            let prev = space.elem_addr(parray, (iv - 1) as u64)?;
            let pv = space.load_ptr(prev)?;
            let ilink = space.elem_addr(vi, 1)?;
            space.store_ptr(ilink, pv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_migrate::{run_migrating, run_straight, Trigger};
    use hpm_net::NetworkModel;

    #[test]
    fn straight_run_completes() {
        let mut p = Figure1::new();
        let (results, proc) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        // After completion: a == 11 is implied by 10 (**q)++ calls; the
        // chain from first: node1 → node9 (last) → node8 → … → node1? The
        // final state: first->link = last(=node10), node10.link=node9 …
        let hops: usize = results
            .iter()
            .find(|(k, _)| k == "hops")
            .unwrap()
            .1
            .parse()
            .unwrap();
        assert_eq!(hops, 10, "first reaches all ten nodes: {results:?}");
        drop(proc);
    }

    #[test]
    fn migrated_run_matches_straight_run() {
        let mut p = Figure1::new();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        // Migrate at the paper's snapshot: fifth poll in foo.
        let run = run_migrating(
            Figure1::new,
            Architecture::dec5000(),
            Architecture::sparc20(),
            NetworkModel::ethernet_10(),
            Trigger::AtPollCount(5),
        )
        .unwrap();
        assert_eq!(crate::diff_results(&expect, &run.results), None);
        assert_eq!(run.report.chain_depth, 2, "main → foo");
    }

    #[test]
    fn snapshot_matches_figure_1b() {
        use hpm_migrate::run_to_migration;
        let mut p = Figure1::new();
        let mut src =
            run_to_migration(&mut p, Architecture::dec5000(), Trigger::AtPollCount(5)).unwrap();
        // 12 vertices: first, last, i, a, b, parray, 4 heap nodes, p, q.
        let g = hpm_core::MsrGraph::snapshot(&mut src.proc.space, &mut src.proc.msrlt).unwrap();
        assert_eq!(g.vertex_count(), 12, "{:?}", g.vertices);
        // Edges (the figure draws e1–e12; the program state at the
        // snapshot contains 13 pointer relations: first, last, b→a,
        // q→b, p→parray+4, parray[0..3]→nodes (4), node links (4)).
        assert_eq!(g.edge_count(), 13, "{:?}", g.edges);
        // Collection from foo then main transmits every vertex exactly
        // once, with no duplication despite the shared references.
        let (_, exec, stats) = src.collect().unwrap();
        assert_eq!(stats.blocks_saved, 12, "each vertex saved exactly once");
        assert_eq!(exec.depth(), 2);
        // first/last point at already-visited nodes → refs not re-saves.
        assert!(stats.ptr_ref >= 4);
    }
}
