//! Bytecode compiler: annotated mini-C → migratable bytecode.
//!
//! The compiler is the back half of the pre-compiler: it lowers each
//! function to a small stack machine, *inserting poll instructions at
//! loop headers* and *call markers at call statements*, each carrying the
//! live-variable set the dataflow analysis computed. The VM (see
//! [`vm`](crate::vm)) turns those into `save_frame`/`restore_frame`
//! calls — the expansion of the paper's inserted macros.
//!
//! Pre-compiler restrictions (rejected with clear errors, as a real
//! pre-compiler would either reject or transform):
//!
//! * calls may appear only as expression statements or as the entire
//!   right-hand side of an assignment (so the operand stack is empty at
//!   every migration pass-through point);
//! * call arguments must be trap-free (no loads through pointers):
//!   during re-entry they are re-evaluated before the frame's live data
//!   is restored.

use crate::ast::*;
use crate::cfg::{Cfg, NodeKind};
use crate::liveness::{solve, Liveness};
use crate::safety::require_safe;
use crate::sema::{check_names, FuncScope, TypeEnv};
use crate::CError;
use hpm_arch::CScalar;
use hpm_types::{TypeDef, TypeId, TypeTable};
use std::collections::HashMap;

/// Binary operation kinds (numeric flavor decided by operand values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    PushInt(i64),
    /// Push a double constant.
    PushF64(f64),
    /// Push the address of local slot `n`.
    AddrLocal(usize),
    /// Push the address of global `n`.
    AddrGlobal(usize),
    /// Pop an address, push the scalar stored there.
    Load,
    /// Pop an address, pop a value, store it there.
    Store,
    /// Pop and discard.
    Drop,
    /// Pop index, pop base address, push `base + index * sizeof(elem)`.
    Index {
        /// Element type for scaling.
        elem: TypeId,
    },
    /// Pop a struct base address, push `base + offsetof(field)`.
    FieldAddr {
        /// The struct type.
        st: TypeId,
        /// Field ordinal.
        field: usize,
    },
    /// Pop b, pop a, push `a ∘ b`.
    Bin(BinKind),
    /// Pop, push arithmetic negation.
    Neg,
    /// Pop, push logical not.
    Not,
    /// Pop, convert to the given scalar kind, push.
    Cvt(CScalar),
    /// Unconditional jump.
    Jump(usize),
    /// Pop; jump if zero/NULL.
    JumpIfZero(usize),
    /// Poll-point: at a loop header. `live` are local slot indices.
    Poll {
        /// Poll-site id (the pc doubles as the resume point).
        site: u32,
        /// Live local slots.
        live: Vec<usize>,
    },
    /// Start of a call statement: the migration pass-through marker.
    CallMark {
        /// Site id.
        site: u32,
        /// Live local slots at/after the call.
        live: Vec<usize>,
    },
    /// Pop `nargs` arguments (last on top), invoke function `func`.
    Call {
        /// Callee index in [`CompiledProgram::functions`].
        func: usize,
        /// Argument count.
        nargs: usize,
        /// Whether a return value is pushed.
        returns: bool,
    },
    /// Return, optionally carrying the top of stack.
    Ret {
        /// Whether a value is returned.
        has_value: bool,
    },
    /// Pop element count, allocate, push the new block's address.
    Malloc {
        /// Element type.
        elem: TypeId,
    },
    /// Pop an address, free the heap block.
    Free,
    /// Pop a value, append `(label, value)` to the process output.
    Print {
        /// Output label.
        label: Option<String>,
    },
    /// Push `sizeof(ty)` on the executing machine.
    SizeOf {
        /// The measured type.
        ty: TypeId,
    },
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFn {
    /// Function name.
    pub name: String,
    /// Number of parameters (the first slots).
    pub nparams: usize,
    /// Slot declarations: (name, element type, count).
    pub slots: Vec<(String, TypeId, u64)>,
    /// Whether the function returns a value.
    pub returns: bool,
    /// The code.
    pub code: Vec<Instr>,
}

/// A compiled program: bytecode + the TI table + global layout.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The TI table (identical on every machine).
    pub types: TypeTable,
    /// Globals: (name, element type, count).
    pub globals: Vec<(String, TypeId, u64)>,
    /// Functions; `main` is [`CompiledProgram::main`].
    pub functions: Vec<CompiledFn>,
    /// Index of `main`.
    pub main: usize,
    /// Poll/call sites per function for reporting: (function, pc, kind).
    pub sites: Vec<(String, usize, String)>,
}

/// Static expression types for lowering decisions.
#[derive(Debug, Clone, PartialEq)]
enum STy {
    Scalar(CScalar),
    Ptr(TypeId),   // pointee type id
    Array(TypeId), // element type id (decays to Ptr)
    Struct(TypeId),
    Void,
}

/// Compile a parsed program (runs name checks, the safety screen, the
/// liveness analysis, and lowering).
pub fn compile_program(program: &Program) -> Result<CompiledProgram, CError> {
    check_names(program)?;
    require_safe(program)?;
    let mut env = TypeEnv::build(program)?;

    let mut globals = Vec::new();
    let mut global_idx = HashMap::new();
    for g in &program.globals {
        let (ty, count) = env.resolve_decl(g)?;
        global_idx.insert(g.name.clone(), globals.len());
        globals.push((g.name.clone(), ty, count));
    }

    let fn_idx: HashMap<String, usize> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();

    let mut functions = Vec::new();
    let mut sites = Vec::new();
    for f in &program.functions {
        let cfg = Cfg::build(f);
        let liveness = solve(f, &cfg);
        let compiled = FnCompiler::compile(
            f,
            &mut env,
            &global_idx,
            &globals,
            &fn_idx,
            program,
            &cfg,
            &liveness,
            &mut sites,
        )?;
        functions.push(compiled);
    }
    let main = *fn_idx
        .get("main")
        .ok_or_else(|| CError::Sema("program has no main()".into()))?;
    Ok(CompiledProgram {
        types: env.table,
        globals,
        functions,
        main,
        sites,
    })
}

struct FnCompiler<'a> {
    env: &'a mut TypeEnv,
    scope: FuncScope,
    slot_types: Vec<(TypeId, Option<u64>)>, // (elem type, array count)
    global_idx: &'a HashMap<String, usize>,
    globals: &'a [(String, TypeId, u64)],
    fn_idx: &'a HashMap<String, usize>,
    program: &'a Program,
    code: Vec<Instr>,
    // Live sets per poll/call site, consumed in construction order.
    header_sites: Vec<Vec<usize>>,
    call_sites: Vec<Vec<usize>>,
    next_header: usize,
    next_call: usize,
    next_site_id: u32,
    breaks: Vec<Vec<usize>>,    // patch lists per loop nesting
    continues: Vec<Vec<usize>>, // jump targets resolved at loop end
    fname: String,
}

impl<'a> FnCompiler<'a> {
    #[allow(clippy::too_many_arguments)]
    fn compile(
        f: &Function,
        env: &'a mut TypeEnv,
        global_idx: &'a HashMap<String, usize>,
        globals: &'a [(String, TypeId, u64)],
        fn_idx: &'a HashMap<String, usize>,
        program: &'a Program,
        cfg: &Cfg,
        liveness: &Liveness,
        sites_out: &mut Vec<(String, usize, String)>,
    ) -> Result<CompiledFn, CError> {
        let scope = FuncScope::build(f)?;
        let mut slot_types = Vec::new();
        for d in &scope.decls {
            let (ty, _) = env.resolve_decl(d)?;
            slot_types.push((ty, d.array));
        }
        // Pre-extract live sets in CFG construction order.
        let mut header_sites = Vec::new();
        let mut call_sites = Vec::new();
        for (i, node) in cfg.nodes.iter().enumerate() {
            let live_names = liveness.live_at_poll(f, i);
            let to_slots = |names: &[String], scope: &FuncScope| -> Vec<usize> {
                let mut v: Vec<usize> = names
                    .iter()
                    .filter_map(|n| scope.slots.get(n).copied())
                    .collect();
                v.sort_unstable();
                v
            };
            match node.kind {
                NodeKind::LoopHeader => header_sites.push(to_slots(&live_names, &scope)),
                NodeKind::CallSite { .. } => call_sites.push(to_slots(&live_names, &scope)),
                _ => {}
            }
        }
        let mut c = FnCompiler {
            env,
            scope,
            slot_types,
            global_idx,
            globals,
            fn_idx,
            program,
            code: Vec::new(),
            header_sites,
            call_sites,
            next_header: 0,
            next_call: 0,
            next_site_id: 1,
            breaks: Vec::new(),
            continues: Vec::new(),
            fname: f.name.clone(),
        };
        for s in &f.body {
            c.stmt(s)?;
        }
        // Implicit return.
        let returns = f.ret != TypeExpr::Void;
        if returns {
            c.code.push(Instr::PushInt(0));
        }
        c.code.push(Instr::Ret { has_value: returns });

        for (pc, ins) in c.code.iter().enumerate() {
            match ins {
                Instr::Poll { .. } => sites_out.push((f.name.clone(), pc, "loop-header".into())),
                Instr::CallMark { .. } => sites_out.push((f.name.clone(), pc, "call-site".into())),
                _ => {}
            }
        }

        let slots = c
            .scope
            .decls
            .iter()
            .zip(&c.slot_types)
            .map(|(d, (ty, arr))| (d.name.clone(), *ty, arr.unwrap_or(1)))
            .collect();
        Ok(CompiledFn {
            name: f.name.clone(),
            nparams: f.params.len(),
            slots,
            returns,
            code: c.code,
        })
    }

    fn err(&self, msg: impl Into<String>) -> CError {
        CError::Sema(format!("{}: {}", self.fname, msg.into()))
    }

    // ----- static typing -----

    fn decl_sty(&self, ty: TypeId, array: Option<u64>) -> STy {
        if array.is_some() {
            return STy::Array(ty);
        }
        match self.env.table.def(ty) {
            TypeDef::Scalar(s) => STy::Scalar(*s),
            TypeDef::Pointer(p) => STy::Ptr(*p),
            TypeDef::Struct { .. } => STy::Struct(ty),
            TypeDef::Array { elem, .. } => STy::Array(*elem),
        }
    }

    fn value_sty(&self, ty: TypeId) -> STy {
        match self.env.table.def(ty) {
            TypeDef::Scalar(s) => STy::Scalar(*s),
            TypeDef::Pointer(p) => STy::Ptr(*p),
            TypeDef::Struct { .. } => STy::Struct(ty),
            TypeDef::Array { elem, .. } => STy::Array(*elem),
        }
    }

    fn ident_sty(&self, name: &str) -> Result<STy, CError> {
        if let Some(&slot) = self.scope.slots.get(name) {
            let (ty, arr) = self.slot_types[slot];
            return Ok(self.decl_sty(ty, arr));
        }
        if let Some(&gi) = self.global_idx.get(name) {
            let (_, ty, count) = &self.globals[gi];
            let arr = if *count > 1 { Some(*count) } else { None };
            return Ok(self.decl_sty(*ty, arr));
        }
        Err(self.err(format!("unknown variable '{name}'")))
    }

    fn type_of(&mut self, e: &Expr) -> Result<STy, CError> {
        Ok(match e {
            Expr::Int(_) => STy::Scalar(CScalar::Int),
            Expr::Float(_) => STy::Scalar(CScalar::Double),
            Expr::Sizeof(_) => STy::Scalar(CScalar::Int),
            Expr::Ident(n) => self.ident_sty(n)?,
            Expr::Deref(inner) => match self.type_of(inner)? {
                STy::Ptr(p) | STy::Array(p) => self.value_sty(p),
                other => return Err(self.err(format!("cannot deref {other:?}"))),
            },
            Expr::AddrOf(inner) => {
                let t = self.lvalue_type(inner)?;
                STy::Ptr(t)
            }
            Expr::Index(base, _) => match self.type_of(base)? {
                STy::Ptr(p) | STy::Array(p) => self.value_sty(p),
                other => return Err(self.err(format!("cannot index {other:?}"))),
            },
            Expr::Member(base, field) => {
                let st = match self.type_of(base)? {
                    STy::Struct(s) => s,
                    other => return Err(self.err(format!(".{field} on {other:?}"))),
                };
                self.value_sty(self.field_of(st, field)?.1)
            }
            Expr::Arrow(base, field) => {
                let st = match self.type_of(base)? {
                    STy::Ptr(p) => p,
                    other => return Err(self.err(format!("->{field} on {other:?}"))),
                };
                self.value_sty(self.field_of(st, field)?.1)
            }
            Expr::Call(name, _) => {
                let fi = self.fn_idx[name.as_str()];
                let ret = self.program.functions[fi].ret.clone();
                match ret {
                    TypeExpr::Void => STy::Void,
                    t => {
                        let id = self.env.resolve(&t).map_err(|e| self.err(format!("{e}")))?;
                        self.value_sty(id)
                    }
                }
            }
            Expr::Malloc(_, t) => {
                let t = t.clone();
                let id = self.env.resolve(&t).map_err(|e| self.err(format!("{e}")))?;
                STy::Ptr(id)
            }
            Expr::Cast(t, _, _) => match t.clone() {
                TypeExpr::Void => STy::Void,
                t => {
                    let id = self.env.resolve(&t).map_err(|e| self.err(format!("{e}")))?;
                    self.value_sty(id)
                }
            },
            Expr::Unary(_, a) => self.type_of(a)?,
            Expr::Binary(op, a, b) => {
                use BinOp::*;
                match op {
                    Lt | Le | Gt | Ge | Eq | Ne | And | Or => STy::Scalar(CScalar::Int),
                    _ => {
                        let ta = self.type_of(a)?;
                        let tb = self.type_of(b)?;
                        match (&ta, &tb) {
                            (STy::Ptr(_) | STy::Array(_), _) => ta,
                            (_, STy::Ptr(_) | STy::Array(_)) => tb,
                            (STy::Scalar(x), STy::Scalar(y)) => {
                                if x.is_float() || y.is_float() {
                                    STy::Scalar(CScalar::Double)
                                } else {
                                    STy::Scalar(CScalar::Int)
                                }
                            }
                            _ => return Err(self.err("bad arithmetic operands")),
                        }
                    }
                }
            }
        })
    }

    /// Type id of the object an lvalue denotes.
    fn lvalue_type(&mut self, e: &Expr) -> Result<TypeId, CError> {
        match e {
            Expr::Ident(n) => {
                if let Some(&slot) = self.scope.slots.get(n) {
                    let (ty, arr) = self.slot_types[slot];
                    return Ok(match arr {
                        Some(c) => self.env.table.array_of(ty, c),
                        None => ty,
                    });
                }
                if let Some(&gi) = self.global_idx.get(n) {
                    let (_, ty, count) = self.globals[gi].clone();
                    return Ok(if count > 1 {
                        self.env.table.array_of(ty, count)
                    } else {
                        ty
                    });
                }
                Err(self.err(format!("unknown variable '{n}'")))
            }
            Expr::Deref(inner) => match self.type_of(inner)? {
                STy::Ptr(p) | STy::Array(p) => Ok(p),
                other => Err(self.err(format!("cannot deref {other:?}"))),
            },
            Expr::Index(base, _) => match self.type_of(base)? {
                STy::Ptr(p) | STy::Array(p) => Ok(p),
                other => Err(self.err(format!("cannot index {other:?}"))),
            },
            Expr::Member(base, field) => {
                let st = match self.type_of(base)? {
                    STy::Struct(s) => s,
                    other => return Err(self.err(format!(".{field} on {other:?}"))),
                };
                Ok(self.field_of(st, field)?.1)
            }
            Expr::Arrow(base, field) => {
                let st = match self.type_of(base)? {
                    STy::Ptr(p) => p,
                    other => return Err(self.err(format!("->{field} on {other:?}"))),
                };
                Ok(self.field_of(st, field)?.1)
            }
            other => Err(self.err(format!("not an lvalue: {other:?}"))),
        }
    }

    fn field_of(&self, st: TypeId, field: &str) -> Result<(usize, TypeId), CError> {
        match self.env.table.def(st) {
            TypeDef::Struct { name, fields } => {
                let fields = fields
                    .as_ref()
                    .ok_or_else(|| self.err(format!("struct {name} incomplete")))?;
                fields
                    .iter()
                    .position(|f| f.name == field)
                    .map(|i| (i, fields[i].ty))
                    .ok_or_else(|| self.err(format!("struct {name} has no field '{field}'")))
            }
            _ => Err(self.err("member access on non-struct")),
        }
    }

    // ----- lowering -----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Assign { target, value, .. } => {
                if let Some(callee) = crate::cfg::find_call(value) {
                    // Restricted form: target = f(args);
                    let Expr::Call(name, args) = value else {
                        return Err(self.err(format!(
                            "call to {callee} must be the entire right-hand side"
                        )));
                    };
                    let live = self.take_call_site();
                    let site = self.site_id();
                    self.code.push(Instr::CallMark { site, live });
                    self.emit_call(name, args, true)?;
                    // Store the return value.
                    self.lvalue(target)?;
                    self.code.push(Instr::Store);
                    return Ok(());
                }
                if crate::cfg::find_call(target).is_some() {
                    return Err(self.err("calls not allowed inside assignment targets"));
                }
                self.rvalue(value)?;
                // Numeric narrowing is handled by the typed store.
                self.lvalue(target)?;
                self.code.push(Instr::Store);
                Ok(())
            }
            Stmt::Expr { expr, .. } => {
                match expr {
                    Expr::Call(name, args) => {
                        let live = self.take_call_site();
                        let site = self.site_id();
                        self.code.push(Instr::CallMark { site, live });
                        let returns = self.emit_call(name, args, false)?;
                        if returns {
                            self.code.push(Instr::Drop);
                        }
                    }
                    _ => {
                        if crate::cfg::find_call(expr).is_some() {
                            return Err(self.err(
                                "calls are only allowed as statements or assignment right-hand sides",
                            ));
                        }
                        self.rvalue(expr)?;
                        self.code.push(Instr::Drop);
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.check_no_call(cond)?;
                self.rvalue(cond)?;
                let jz = self.emit_placeholder();
                for s in then_body {
                    self.stmt(s)?;
                }
                if else_body.is_empty() {
                    let end = self.code.len();
                    self.code[jz] = Instr::JumpIfZero(end);
                } else {
                    let jend = self.emit_placeholder();
                    let else_start = self.code.len();
                    self.code[jz] = Instr::JumpIfZero(else_start);
                    for s in else_body {
                        self.stmt(s)?;
                    }
                    let end = self.code.len();
                    self.code[jend] = Instr::Jump(end);
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.check_no_call(cond)?;
                let live = self.take_header_site();
                let site = self.site_id();
                let header = self.code.len();
                self.code.push(Instr::Poll { site, live });
                self.rvalue(cond)?;
                let jz = self.emit_placeholder();
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.code.push(Instr::Jump(header));
                let end = self.code.len();
                self.code[jz] = Instr::JumpIfZero(end);
                for b in self.breaks.pop().unwrap() {
                    self.code[b] = Instr::Jump(end);
                }
                for c in self.continues.pop().unwrap() {
                    self.code[c] = Instr::Jump(header);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let live = self.take_header_site();
                let site = self.site_id();
                let header = self.code.len();
                self.code.push(Instr::Poll { site, live });
                let jz = match cond {
                    Some(c) => {
                        self.check_no_call(c)?;
                        self.rvalue(c)?;
                        Some(self.emit_placeholder())
                    }
                    None => None,
                };
                self.breaks.push(Vec::new());
                self.continues.push(Vec::new());
                for s in body {
                    self.stmt(s)?;
                }
                let step_pc = self.code.len();
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.code.push(Instr::Jump(header));
                let end = self.code.len();
                if let Some(j) = jz {
                    self.code[j] = Instr::JumpIfZero(end);
                }
                for b in self.breaks.pop().unwrap() {
                    self.code[b] = Instr::Jump(end);
                }
                for c in self.continues.pop().unwrap() {
                    self.code[c] = Instr::Jump(step_pc);
                }
                Ok(())
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(v) => {
                        self.check_no_call(v)?;
                        self.rvalue(v)?;
                        self.code.push(Instr::Ret { has_value: true });
                    }
                    None => self.code.push(Instr::Ret { has_value: false }),
                }
                Ok(())
            }
            Stmt::Break { .. } => {
                let pc = self.emit_placeholder();
                if self.breaks.is_empty() {
                    return Err(self.err("break outside loop"));
                }
                self.breaks.last_mut().unwrap().push(pc);
                Ok(())
            }
            Stmt::Continue { .. } => {
                let pc = self.emit_placeholder();
                if self.continues.is_empty() {
                    return Err(self.err("continue outside loop"));
                }
                self.continues.last_mut().unwrap().push(pc);
                Ok(())
            }
            Stmt::Free { ptr, .. } => {
                self.check_no_call(ptr)?;
                self.rvalue(ptr)?;
                self.code.push(Instr::Free);
                Ok(())
            }
            Stmt::Print { label, value, .. } => {
                self.check_no_call(value)?;
                self.rvalue(value)?;
                self.code.push(Instr::Print {
                    label: label.clone(),
                });
                Ok(())
            }
        }
    }

    fn emit_placeholder(&mut self) -> usize {
        self.code.push(Instr::Jump(usize::MAX));
        self.code.len() - 1
    }

    fn site_id(&mut self) -> u32 {
        let id = self.next_site_id;
        self.next_site_id += 1;
        id
    }

    fn take_header_site(&mut self) -> Vec<usize> {
        let v = self
            .header_sites
            .get(self.next_header)
            .cloned()
            .unwrap_or_default();
        self.next_header += 1;
        v
    }

    fn take_call_site(&mut self) -> Vec<usize> {
        let v = self
            .call_sites
            .get(self.next_call)
            .cloned()
            .unwrap_or_default();
        self.next_call += 1;
        v
    }

    fn check_no_call(&self, e: &Expr) -> Result<(), CError> {
        if let Some(c) = crate::cfg::find_call(e) {
            return Err(self.err(format!(
                "call to {c} is only allowed as a statement or assignment right-hand side"
            )));
        }
        Ok(())
    }

    /// Validate that a call argument is trap-free: no loads through
    /// pointers (it is re-evaluated before restoration during re-entry).
    fn check_arg_trap_free(&self, e: &Expr) -> Result<(), CError> {
        match e {
            Expr::Deref(_) | Expr::Arrow(..) | Expr::Call(..) => Err(self.err(
                "call arguments must not load through pointers (pre-compiler restriction); \
                 assign to a temporary first",
            )),
            Expr::Index(b, i) => {
                // &a[i] is fine (pure arithmetic); a[i] as a *value* loads.
                self.check_arg_trap_free(b)?;
                self.check_arg_trap_free(i)
            }
            Expr::Binary(_, a, b) => {
                self.check_arg_trap_free(a)?;
                self.check_arg_trap_free(b)
            }
            Expr::Unary(_, a) | Expr::Cast(_, a, _) | Expr::AddrOf(a) => {
                self.check_arg_trap_free(a)
            }
            Expr::Member(a, _) => self.check_arg_trap_free(a),
            Expr::Malloc(..) => Err(self.err("malloc not allowed in call arguments")),
            Expr::Int(_) | Expr::Float(_) | Expr::Ident(_) | Expr::Sizeof(_) => Ok(()),
        }
    }

    fn emit_call(&mut self, name: &str, args: &[Expr], want_value: bool) -> Result<bool, CError> {
        let fi = *self
            .fn_idx
            .get(name)
            .ok_or_else(|| self.err(format!("unknown function '{name}'")))?;
        let returns = self.program.functions[fi].ret != TypeExpr::Void;
        if want_value && !returns {
            return Err(self.err(format!("void function {name} used as a value")));
        }
        for a in args {
            self.check_arg_trap_free(a)?;
            self.rvalue(a)?;
        }
        self.code.push(Instr::Call {
            func: fi,
            nargs: args.len(),
            returns,
        });
        Ok(returns)
    }

    /// Emit code pushing the *address* of an lvalue.
    fn lvalue(&mut self, e: &Expr) -> Result<(), CError> {
        match e {
            Expr::Ident(n) => {
                if let Some(&slot) = self.scope.slots.get(n) {
                    self.code.push(Instr::AddrLocal(slot));
                    return Ok(());
                }
                if let Some(&gi) = self.global_idx.get(n) {
                    self.code.push(Instr::AddrGlobal(gi));
                    return Ok(());
                }
                Err(self.err(format!("unknown variable '{n}'")))
            }
            Expr::Deref(inner) => self.rvalue(inner),
            Expr::Index(base, idx) => {
                let elem = match self.type_of(base)? {
                    STy::Ptr(p) | STy::Array(p) => p,
                    other => return Err(self.err(format!("cannot index {other:?}"))),
                };
                match self.type_of(base)? {
                    STy::Array(_) => self.lvalue(base)?, // array decays to its address
                    _ => self.rvalue(base)?,
                }
                self.rvalue(idx)?;
                self.code.push(Instr::Index { elem });
                Ok(())
            }
            Expr::Member(base, field) => {
                let st = match self.type_of(base)? {
                    STy::Struct(s) => s,
                    other => return Err(self.err(format!(".{field} on {other:?}"))),
                };
                let (fi, _) = self.field_of(st, field)?;
                self.lvalue(base)?;
                self.code.push(Instr::FieldAddr { st, field: fi });
                Ok(())
            }
            Expr::Arrow(base, field) => {
                let st = match self.type_of(base)? {
                    STy::Ptr(p) => p,
                    other => return Err(self.err(format!("->{field} on {other:?}"))),
                };
                let (fi, _) = self.field_of(st, field)?;
                self.rvalue(base)?;
                self.code.push(Instr::FieldAddr { st, field: fi });
                Ok(())
            }
            other => Err(self.err(format!("not an lvalue: {other:?}"))),
        }
    }

    /// Emit code pushing the *value* of an expression.
    fn rvalue(&mut self, e: &Expr) -> Result<(), CError> {
        match e {
            Expr::Int(v) => {
                self.code.push(Instr::PushInt(*v));
                Ok(())
            }
            Expr::Float(v) => {
                self.code.push(Instr::PushF64(*v));
                Ok(())
            }
            Expr::Sizeof(t) => {
                let t = t.clone();
                let id = self.env.resolve(&t).map_err(|e| self.err(format!("{e}")))?;
                self.code.push(Instr::SizeOf { ty: id });
                Ok(())
            }
            Expr::Ident(_) => match self.type_of(e)? {
                STy::Array(_) => self.lvalue(e), // decay
                _ => {
                    self.lvalue(e)?;
                    self.code.push(Instr::Load);
                    Ok(())
                }
            },
            Expr::Deref(_) | Expr::Index(..) | Expr::Member(..) | Expr::Arrow(..) => {
                match self.type_of(e)? {
                    STy::Array(_) => self.lvalue(e), // nested array decays
                    STy::Struct(_) => {
                        Err(self.err("struct values cannot be copied (use pointers)"))
                    }
                    _ => {
                        self.lvalue(e)?;
                        self.code.push(Instr::Load);
                        Ok(())
                    }
                }
            }
            Expr::AddrOf(inner) => self.lvalue(inner),
            Expr::Unary(UnOp::Neg, a) => {
                self.rvalue(a)?;
                self.code.push(Instr::Neg);
                Ok(())
            }
            Expr::Unary(UnOp::Not, a) => {
                self.rvalue(a)?;
                self.code.push(Instr::Not);
                Ok(())
            }
            Expr::Cast(t, a, _) => {
                self.rvalue(a)?;
                if let TypeExpr::Scalar(s) = t {
                    self.code.push(Instr::Cvt(*s));
                }
                // Pointer casts change the static type only.
                Ok(())
            }
            Expr::Malloc(count, t) => {
                let t = t.clone();
                let id = self.env.resolve(&t).map_err(|e| self.err(format!("{e}")))?;
                self.rvalue(count)?;
                self.code.push(Instr::Malloc { elem: id });
                Ok(())
            }
            Expr::Binary(BinOp::And, a, b) => self.short_circuit(a, b, true),
            Expr::Binary(BinOp::Or, a, b) => self.short_circuit(a, b, false),
            Expr::Binary(op, a, b) => {
                // Pointer ± integer scales by the pointee size.
                let ta = self.type_of(a)?;
                let tb = self.type_of(b)?;
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    if let (STy::Ptr(p) | STy::Array(p), STy::Scalar(s)) = (&ta, &tb) {
                        if s.is_integer() {
                            let elem = *p;
                            match ta {
                                STy::Array(_) => self.lvalue(a)?,
                                _ => self.rvalue(a)?,
                            }
                            self.rvalue(b)?;
                            if *op == BinOp::Sub {
                                self.code.push(Instr::Neg);
                            }
                            self.code.push(Instr::Index { elem });
                            return Ok(());
                        }
                    }
                    if *op == BinOp::Add {
                        if let (STy::Scalar(s), STy::Ptr(p) | STy::Array(p)) = (&ta, &tb) {
                            if s.is_integer() {
                                let elem = *p;
                                match tb {
                                    STy::Array(_) => self.lvalue(b)?,
                                    _ => self.rvalue(b)?,
                                }
                                self.rvalue(a)?;
                                self.code.push(Instr::Index { elem });
                                return Ok(());
                            }
                        }
                    }
                }
                self.rvalue(a)?;
                self.rvalue(b)?;
                let k = match op {
                    BinOp::Add => BinKind::Add,
                    BinOp::Sub => BinKind::Sub,
                    BinOp::Mul => BinKind::Mul,
                    BinOp::Div => BinKind::Div,
                    BinOp::Mod => BinKind::Mod,
                    BinOp::Lt => BinKind::Lt,
                    BinOp::Le => BinKind::Le,
                    BinOp::Gt => BinKind::Gt,
                    BinOp::Ge => BinKind::Ge,
                    BinOp::Eq => BinKind::Eq,
                    BinOp::Ne => BinKind::Ne,
                    BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
                };
                self.code.push(Instr::Bin(k));
                Ok(())
            }
            Expr::Call(..) => {
                Err(self.err("calls are only allowed as statements or assignment right-hand sides"))
            }
        }
    }

    /// `a && b` / `a || b` with C short-circuit semantics.
    fn short_circuit(&mut self, a: &Expr, b: &Expr, is_and: bool) -> Result<(), CError> {
        self.rvalue(a)?;
        if is_and {
            let jz = self.emit_placeholder(); // a false → result 0
            self.rvalue(b)?;
            let jz2 = self.emit_placeholder();
            self.code.push(Instr::PushInt(1));
            let jend = self.emit_placeholder();
            let fal = self.code.len();
            self.code[jz] = Instr::JumpIfZero(fal);
            self.code[jz2] = Instr::JumpIfZero(fal);
            self.code.push(Instr::PushInt(0));
            let end = self.code.len();
            self.code[jend] = Instr::Jump(end);
        } else {
            // a || b  ≡  !( !a && !b )
            self.code.push(Instr::Not);
            let jz = self.emit_placeholder(); // !a == 0 → a true → result 1
            self.rvalue(b)?;
            self.code.push(Instr::Not);
            let jz2 = self.emit_placeholder();
            self.code.push(Instr::PushInt(0));
            let jend = self.emit_placeholder();
            let tru = self.code.len();
            self.code[jz] = Instr::JumpIfZero(tru);
            self.code[jz2] = Instr::JumpIfZero(tru);
            self.code.push(Instr::PushInt(1));
            let end = self.code.len();
            self.code[jend] = Instr::Jump(end);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> CompiledProgram {
        compile_program(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_minimal_main() {
        let p = compile("int main() { return 42; }");
        assert_eq!(p.functions[p.main].name, "main");
        assert!(p.functions[p.main].code.contains(&Instr::PushInt(42)));
    }

    #[test]
    fn loop_gets_poll_with_live_set() {
        let p = compile(
            "int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) { s = s + i; } return s; }",
        );
        let main = &p.functions[p.main];
        let poll = main
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Poll { live, .. } => Some(live.clone()),
                _ => None,
            })
            .expect("loop header poll");
        // i and s are slots 0 and 1.
        assert_eq!(poll, vec![0, 1]);
    }

    #[test]
    fn dead_local_not_in_poll_live_set() {
        let p = compile(
            "int main() { int i; int dead; dead = 1; i = 0; while (i < 3) { i = i + 1; } return i; }",
        );
        let main = &p.functions[p.main];
        let poll = main
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Poll { live, .. } => Some(live.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(poll, vec![0], "only i is live");
    }

    #[test]
    fn call_statement_gets_mark() {
        let p = compile("int f(int a) { return a; }\nint main() { int x; x = f(3); return x; }");
        let main = &p.functions[p.main];
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::CallMark { .. })));
        assert!(main.code.iter().any(|i| matches!(i, Instr::Call { .. })));
    }

    #[test]
    fn nested_call_rejected() {
        let r = compile_program(
            &parse("int f(int a) { return a; }\nint main() { int x; x = f(1) + 2; return x; }")
                .unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn trapful_call_arg_rejected() {
        let r = compile_program(
            &parse(
                "int f(int a) { return a; }\n\
                 int main() { int *p; int x; x = f(*p); return x; }",
            )
            .unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let p = compile("int main() { int a[10]; int *p; p = a + 3; return 0; }");
        let main = &p.functions[p.main];
        assert!(main.code.iter().any(|i| matches!(i, Instr::Index { .. })));
    }

    #[test]
    fn struct_member_lowered_to_field_addr() {
        let p = compile(
            "struct n { int v; struct n *next; };\n\
             int main() { struct n *p; p = (struct n *) malloc(sizeof(struct n)); p->v = 3; return p->v; }",
        );
        let main = &p.functions[p.main];
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::FieldAddr { field: 0, .. })));
        assert!(main.code.iter().any(|i| matches!(i, Instr::Malloc { .. })));
    }

    #[test]
    fn missing_main_rejected() {
        let r = compile_program(&parse("int f() { return 1; }").unwrap());
        assert!(matches!(r, Err(CError::Sema(_))));
    }

    #[test]
    fn sites_reported() {
        let p = compile(
            "int f(int a) { return a; }\n\
             int main() { int i; int x; for (i = 0; i < 3; i++) { x = f(i); } return x; }",
        );
        let kinds: Vec<&str> = p.sites.iter().map(|(_, _, k)| k.as_str()).collect();
        assert!(kinds.contains(&"loop-header"));
        assert!(kinds.contains(&"call-site"));
    }
}
