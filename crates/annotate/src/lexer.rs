//! Lexer for the mini-C subset.

use crate::CError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword text.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// String literal (for `print`).
    Str(String),
    /// Punctuation / operator, e.g. `"->"`, `"+"`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position (for diagnostics and annotation
/// output).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column of the token's first character.
    pub col: u32,
}

const PUNCTS: &[&str] = &[
    // longest first
    "...", "->", "++", "--", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "(", ")",
    "{", "}", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%", "<", ">", "=", "&", "!", "|", "^",
    "~",
];

/// Keywords recognized by the parser (everything else is an identifier).
pub const KEYWORDS: &[&str] = &[
    "int", "char", "short", "long", "float", "double", "unsigned", "void", "struct", "union", "if",
    "else", "while", "for", "return", "break", "continue", "sizeof", "static", "goto", "switch",
    "print",
];

/// Tokenize mini-C source.
pub fn lex(src: &str) -> Result<Vec<Token>, CError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    let mut line_start = 0usize;
    // 1-based byte column of position `i` on the current line.
    macro_rules! col {
        () => {
            (i - line_start + 1) as u32
        };
    }
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    i += 2;
                    while i + 1 < bytes.len() {
                        if bytes[i] as char == '\n' {
                            line += 1;
                            line_start = i + 1;
                        }
                        if bytes[i] as char == '*' && bytes[i + 1] as char == '/' {
                            i += 2;
                            continue 'outer;
                        }
                        i += 1;
                    }
                    return Err(CError::Lex("unterminated comment".into(), line));
                }
                _ => {}
            }
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            let start_col = col!();
            let mut s = String::new();
            i += 1;
            while i < bytes.len() && bytes[i] as char != '"' {
                let ch = bytes[i] as char;
                if ch == '\n' {
                    return Err(CError::Lex("newline in string".into(), start_line));
                }
                if ch == '\\' && i + 1 < bytes.len() {
                    i += 1;
                    s.push(match bytes[i] as char {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                } else {
                    s.push(ch);
                }
                i += 1;
            }
            if i >= bytes.len() {
                return Err(CError::Lex("unterminated string".into(), start_line));
            }
            i += 1;
            out.push(Token {
                kind: TokenKind::Str(s),
                line: start_line,
                col: start_col,
            });
            continue;
        }
        // Character literal → int.
        if c == '\'' {
            if i + 2 < bytes.len() && bytes[i + 2] as char == '\'' {
                out.push(Token {
                    kind: TokenKind::Int(bytes[i + 1] as i64),
                    line,
                    col: col!(),
                });
                i += 3;
                continue;
            }
            return Err(CError::Lex("bad character literal".into(), line));
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let col = col!();
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if i < bytes.len() && bytes[i] as char == '.' {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && matches!(bytes[i] as char, 'e' | 'E') {
                is_float = true;
                i += 1;
                if i < bytes.len() && matches!(bytes[i] as char, '+' | '-') {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &src[start..i];
            let kind = if is_float {
                TokenKind::Float(
                    text.parse()
                        .map_err(|_| CError::Lex(format!("bad float '{text}'"), line))?,
                )
            } else {
                TokenKind::Int(
                    text.parse()
                        .map_err(|_| CError::Lex(format!("bad int '{text}'"), line))?,
                )
            };
            out.push(Token { kind, line, col });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            let col = col!();
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident(src[start..i].to_string()),
                line,
                col,
            });
            continue;
        }
        // Punctuation.
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                    col: col!(),
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(CError::Lex(format!("unexpected character '{c}'"), line));
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col: col!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("int x = 42;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_and_compound_ops() {
        let k = kinds("p->next != q && i <= 3");
        assert!(k.contains(&TokenKind::Punct("->")));
        assert!(k.contains(&TokenKind::Punct("!=")));
        assert!(k.contains(&TokenKind::Punct("&&")));
        assert!(k.contains(&TokenKind::Punct("<=")));
    }

    #[test]
    fn floats_and_exponents() {
        assert_eq!(kinds("10.5")[0], TokenKind::Float(10.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
        assert_eq!(kinds("7")[0], TokenKind::Int(7));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("a // line\n /* block\n comment */ b");
        assert_eq!(k.len(), 3); // a, b, eof
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn columns_tracked() {
        let toks = lex("int x;\n  y = 10;").unwrap();
        let pos: Vec<(u32, u32)> = toks.iter().map(|t| (t.line, t.col)).collect();
        // int@1:1 x@1:5 ;@1:6 y@2:3 =@2:5 10@2:7 ;@2:9 eof
        assert_eq!(
            &pos[..7],
            &[(1, 1), (1, 5), (1, 6), (2, 3), (2, 5), (2, 7), (2, 9)]
        );
    }

    #[test]
    fn columns_reset_after_block_comment_newlines() {
        let toks = lex("/* a\n b */ x").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (2, 7));
    }

    #[test]
    fn string_and_char_literals() {
        assert_eq!(kinds("\"hi\\n\"")[0], TokenKind::Str("hi\n".into()));
        assert_eq!(kinds("'A'")[0], TokenKind::Int(65));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
        assert!(lex("\"oops").is_err());
    }
}
