//! Name and type resolution onto the `hpm-types` TI table.

use crate::ast::*;
use crate::CError;
use hpm_types::{Field, TypeId, TypeTable};
use std::collections::HashMap;

/// Resolved type environment for one program.
#[derive(Debug, Clone)]
pub struct TypeEnv {
    /// The TI table all processes of this program share (deterministic
    /// construction ⇒ identical `TypeId`s on every machine).
    pub table: TypeTable,
    /// Struct tag → type id.
    pub structs: HashMap<String, TypeId>,
}

impl TypeEnv {
    /// Build the TI table from the program's struct definitions, exactly
    /// as the paper's pre-compiler emits the TI table for the program.
    pub fn build(program: &Program) -> Result<TypeEnv, CError> {
        let mut table = TypeTable::new();
        let mut structs = HashMap::new();
        // Two passes so structs can reference each other by pointer.
        for s in &program.structs {
            let id = table.declare_struct(&s.name);
            structs.insert(s.name.clone(), id);
        }
        let mut env = TypeEnv { table, structs };
        for s in &program.structs {
            let mut fields = Vec::new();
            for f in &s.fields {
                let fid = env.resolve(&f.ty)?;
                let fid = match f.array {
                    Some(n) => env.table.array_of(fid, n),
                    None => fid,
                };
                fields.push(Field::new(&f.name, fid));
            }
            let id = env.structs[&s.name];
            env.table
                .define_struct(id, fields)
                .map_err(|e| CError::Sema(format!("struct {}: {e}", s.name)))?;
        }
        Ok(env)
    }

    /// Resolve a source type expression to a TI id.
    pub fn resolve(&mut self, t: &TypeExpr) -> Result<TypeId, CError> {
        match t {
            TypeExpr::Scalar(s) => Ok(self.table.scalar(*s)),
            TypeExpr::Struct(name) => self
                .structs
                .get(name)
                .copied()
                .ok_or_else(|| CError::Sema(format!("unknown struct '{name}'"))),
            TypeExpr::Pointer(inner) => {
                let p = self.resolve(inner)?;
                Ok(self.table.pointer_to(p))
            }
            TypeExpr::Void => Err(CError::Sema("void has no value type".into())),
        }
    }

    /// Resolve a declaration to (element type id, element count).
    pub fn resolve_decl(&mut self, d: &VarDecl) -> Result<(TypeId, u64), CError> {
        let ty = self.resolve(&d.ty)?;
        Ok((ty, d.array.unwrap_or(1)))
    }
}

/// Scope information for one function: parameter/local slots in
/// declaration order (parameters first), plus the global map.
#[derive(Debug, Clone)]
pub struct FuncScope {
    /// Slot name → slot index.
    pub slots: HashMap<String, usize>,
    /// Slot declarations in order (params then locals).
    pub decls: Vec<VarDecl>,
}

impl FuncScope {
    /// Build the scope of `f`, checking for duplicates.
    pub fn build(f: &Function) -> Result<FuncScope, CError> {
        let mut slots = HashMap::new();
        let mut decls = Vec::new();
        for d in f.params.iter().chain(&f.locals) {
            if slots.insert(d.name.clone(), decls.len()).is_some() {
                return Err(CError::Sema(format!(
                    "duplicate variable '{}' in {}",
                    d.name, f.name
                )));
            }
            decls.push(d.clone());
        }
        Ok(FuncScope { slots, decls })
    }
}

/// Check that every identifier used in the program resolves to a local,
/// parameter, global, or function.
pub fn check_names(program: &Program) -> Result<(), CError> {
    let globals: HashMap<&str, ()> = program
        .globals
        .iter()
        .map(|g| (g.name.as_str(), ()))
        .collect();
    let funcs: HashMap<&str, usize> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), f.params.len()))
        .collect();
    for f in &program.functions {
        let scope = FuncScope::build(f)?;
        let mut ck = NameCk {
            globals: &globals,
            funcs: &funcs,
            scope: &scope,
            fname: &f.name,
        };
        for s in &f.body {
            ck.stmt(s)?;
        }
    }
    Ok(())
}

struct NameCk<'a> {
    globals: &'a HashMap<&'a str, ()>,
    funcs: &'a HashMap<&'a str, usize>,
    scope: &'a FuncScope,
    fname: &'a str,
}

impl NameCk<'_> {
    fn stmt(&mut self, s: &Stmt) -> Result<(), CError> {
        match s {
            Stmt::Assign { target, value, .. } => {
                self.expr(target)?;
                self.expr(value)
            }
            Stmt::Expr { expr, .. } => self.expr(expr),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr(cond)?;
                for s in then_body.iter().chain(else_body) {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond)?;
                for s in body {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.expr(c)?;
                }
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                for s in body {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::Return { value, .. } => value.as_ref().map_or(Ok(()), |v| self.expr(v)),
            Stmt::Free { ptr, .. } => self.expr(ptr),
            Stmt::Print { value, .. } => self.expr(value),
            Stmt::Break { .. } | Stmt::Continue { .. } => Ok(()),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CError> {
        match e {
            Expr::Ident(n) => {
                if self.scope.slots.contains_key(n) || self.globals.contains_key(n.as_str()) {
                    Ok(())
                } else {
                    Err(CError::Sema(format!(
                        "unknown variable '{n}' in {}",
                        self.fname
                    )))
                }
            }
            Expr::Call(name, args) => {
                match self.funcs.get(name.as_str()) {
                    Some(arity) if *arity == args.len() => {}
                    Some(arity) => {
                        return Err(CError::Sema(format!(
                            "call to {name} with {} args, expected {arity}",
                            args.len()
                        )))
                    }
                    None => return Err(CError::Sema(format!("unknown function '{name}'"))),
                }
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                self.expr(a)?;
                self.expr(b)
            }
            Expr::Unary(_, a) | Expr::Deref(a) | Expr::AddrOf(a) | Expr::Cast(_, a, _) => {
                self.expr(a)
            }
            Expr::Member(a, _) | Expr::Arrow(a, _) => self.expr(a),
            Expr::Malloc(n, _) => self.expr(n),
            Expr::Int(_) | Expr::Float(_) | Expr::Sizeof(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn builds_recursive_struct_types() {
        let p = parse(
            "struct node { float data; struct node *link; };\n\
             int main() { return 0; }",
        )
        .unwrap();
        let env = TypeEnv::build(&p).unwrap();
        let node = env.structs["node"];
        assert!(env.table.is_complete(node));
        assert!(env.table.contains_pointer(node));
    }

    #[test]
    fn unknown_struct_errors() {
        let p = parse("struct a { struct missing *m; int x; };\nint main() { return 0; }");
        // `struct missing *m` is fine only if `missing` is declared —
        // it is not, so resolution fails.
        let p = p.unwrap();
        assert!(TypeEnv::build(&p).is_err());
    }

    #[test]
    fn duplicate_local_rejected() {
        let p = parse("int main() { int x; int x; return 0; }").unwrap();
        assert!(check_names(&p).is_err());
    }

    #[test]
    fn unknown_ident_rejected() {
        let p = parse("int main() { int x; x = y; return 0; }").unwrap();
        assert!(check_names(&p).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let p = parse("int f(int a) { return a; }\nint main() { return f(1, 2); }").unwrap();
        assert!(check_names(&p).is_err());
    }

    #[test]
    fn clean_program_checks() {
        let p = parse(
            "int g;\nint f(int a) { return a + g; }\nint main() { int x; x = f(2); return x; }",
        )
        .unwrap();
        check_names(&p).unwrap();
    }
}
