//! Live-variable dataflow analysis.
//!
//! §2: "At every poll-point, the pre-compiler defines live variables
//! whose data values are needed for computation beyond the poll-point."
//!
//! A classic backward may-analysis over the statement CFG:
//!
//! ```text
//! live_out(n) = ⋃ live_in(s)  for s ∈ succ(n)
//! live_in(n)  = use(n) ∪ (live_out(n) − def(n))
//! ```
//!
//! Address-taken variables and aggregate (array/struct-valued) locals
//! are conservatively live everywhere: the MSR graph can reach them
//! through pointers regardless of scalar liveness.

use crate::ast::Function;
use crate::cfg::{Cfg, NodeId, NodeKind, ENTRY};
use std::collections::BTreeSet;

/// Liveness solution for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in` per CFG node.
    pub live_in: Vec<BTreeSet<String>>,
    /// `live_out` per CFG node.
    pub live_out: Vec<BTreeSet<String>>,
    /// Variables forced live everywhere (address-taken + aggregates).
    pub always_live: BTreeSet<String>,
    /// Number of fixpoint iterations taken.
    pub iterations: u32,
}

/// Solve liveness for `f` over its CFG.
pub fn solve(f: &Function, cfg: &Cfg) -> Liveness {
    let n = cfg.nodes.len();
    // Aggregates: arrays and struct-valued locals can hold interior
    // pointers / be pointer targets — always live.
    let mut always_live: BTreeSet<String> = cfg.addr_taken.clone();
    for d in f.params.iter().chain(&f.locals) {
        if d.array.is_some() || matches!(d.ty, crate::ast::TypeExpr::Struct(_)) {
            always_live.insert(d.name.clone());
        }
    }

    let mut live_in: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut live_out: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        // Reverse order converges faster for mostly-forward CFGs.
        for i in (0..n).rev() {
            let mut out = BTreeSet::new();
            for &s in &cfg.nodes[i].succs {
                out.extend(live_in[s].iter().cloned());
            }
            let mut inn: BTreeSet<String> = cfg.nodes[i].uses.clone();
            for v in &out {
                if !cfg.nodes[i].defs.contains(v) {
                    inn.insert(v.clone());
                }
            }
            if out != live_out[i] || inn != live_in[i] {
                changed = true;
                live_out[i] = out;
                live_in[i] = inn;
            }
        }
        if !changed {
            break;
        }
    }
    Liveness {
        live_in,
        live_out,
        always_live,
        iterations,
    }
}

impl Liveness {
    /// The live set the pre-compiler attaches to a poll-point at node
    /// `at`: variables needed beyond the point, plus the always-live set,
    /// restricted to names declared in this function (globals are handled
    /// by the runtime as a separate root set).
    pub fn live_at_poll(&self, f: &Function, at: NodeId) -> Vec<String> {
        let declared: BTreeSet<&str> = f
            .params
            .iter()
            .chain(&f.locals)
            .map(|d| d.name.as_str())
            .collect();
        let mut set: BTreeSet<String> = self.live_in[at]
            .union(&self.live_out[at])
            .filter(|v| declared.contains(v.as_str()))
            .cloned()
            .collect();
        for v in &self.always_live {
            if declared.contains(v.as_str()) {
                set.insert(v.clone());
            }
        }
        set.into_iter().collect()
    }

    /// Live sets for every poll-point candidate (function entry + loop
    /// headers) and migration pass-through point (call sites), in CFG
    /// node order.
    pub fn poll_sites(&self, f: &Function, cfg: &Cfg) -> Vec<(NodeId, NodeKind, Vec<String>)> {
        let mut out = Vec::new();
        for (i, node) in cfg.nodes.iter().enumerate() {
            let interesting =
                i == ENTRY || matches!(node.kind, NodeKind::LoopHeader | NodeKind::CallSite { .. });
            if interesting {
                out.push((i, node.kind.clone(), self.live_at_poll(f, i)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze(src: &str, func: &str) -> (crate::ast::Program, Cfg, Liveness) {
        let p = parse(src).unwrap();
        let f = p.function(func).unwrap().clone();
        let cfg = Cfg::build(&f);
        let l = solve(&f, &cfg);
        (p, cfg, l)
    }

    #[test]
    fn dead_variable_not_live_at_loop() {
        // `dead` is written before the loop and never read again: it
        // must NOT be in the loop header's live set.
        let (p, cfg, l) = analyze(
            "int main() { int i; int s; int dead; dead = 9; s = 0; \
             while (i < 10) { s = s + i; i = i + 1; } return s; }",
            "main",
        );
        let f = p.function("main").unwrap();
        let headers = cfg.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        let live = l.live_at_poll(f, headers[0]);
        assert!(live.contains(&"i".to_string()));
        assert!(live.contains(&"s".to_string()));
        assert!(!live.contains(&"dead".to_string()), "{live:?}");
    }

    #[test]
    fn addr_taken_always_live() {
        let (p, cfg, l) = analyze(
            "int f(int *p) { return *p; }\n\
             int main() { int x; int i; x = 5; i = 0; \
             while (i < 3) { i = i + f(&x); } return i; }",
            "main",
        );
        let f = p.function("main").unwrap();
        let headers = cfg.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        let live = l.live_at_poll(f, headers[0]);
        assert!(
            live.contains(&"x".to_string()),
            "address-taken x must be live: {live:?}"
        );
    }

    #[test]
    fn arrays_always_live() {
        let (p, cfg, l) = analyze(
            "int main() { int a[10]; int i; i = 0; while (i < 10) { a[i] = i; i = i + 1; } return 0; }",
            "main",
        );
        let f = p.function("main").unwrap();
        let headers = cfg.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        let live = l.live_at_poll(f, headers[0]);
        assert!(live.contains(&"a".to_string()));
    }

    #[test]
    fn live_range_ends_after_last_use() {
        let (p, _cfg, l) = analyze(
            "int main() { int a; int b; a = 1; b = a + 1; a = 7; return a; }",
            "main",
        );
        let f = p.function("main").unwrap();
        // At entry, nothing is live (a defined before use).
        let live = l.live_at_poll(f, ENTRY);
        assert!(live.is_empty(), "{live:?}");
    }

    #[test]
    fn loop_carried_dependency_live() {
        let (p, cfg, l) = analyze(
            "int main() { int acc; int i; acc = 0; i = 0; \
             for (i = 0; i < 4; i++) { acc = acc + i; } return acc; }",
            "main",
        );
        let f = p.function("main").unwrap();
        let headers = cfg.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        let live = l.live_at_poll(f, headers[0]);
        assert!(live.contains(&"acc".to_string()));
        assert!(live.contains(&"i".to_string()));
    }

    #[test]
    fn converges_quickly() {
        let (_, _, l) = analyze(
            "int main() { int i; int s; s = 0; \
             while (i < 10) { while (s < 5) { s = s + 1; } i = i + 1; } return s; }",
            "main",
        );
        assert!(l.iterations < 10, "took {} iterations", l.iterations);
    }

    #[test]
    fn addr_of_nested_struct_field_marks_base_always_live() {
        // `&o.a.x` reaches through two member layers; the *base* o must
        // be marked address-taken (and therefore always live), because
        // the callee-held pointer aims into o's storage.
        let (p, cfg, l) = analyze(
            "struct in { int x; int y; };\n\
             struct out { struct in a; int z; };\n\
             int f(int *p) { return *p; }\n\
             int main() { struct out o; int dead; int r; dead = 3; \
             o.a.x = 1; r = f(&o.a.x); return r; }",
            "main",
        );
        let f = p.function("main").unwrap();
        assert!(
            cfg.addr_taken.contains("o"),
            "nested &o.a.x must mark o address-taken: {:?}",
            cfg.addr_taken
        );
        assert!(l.always_live.contains("o"));
        let sites = l.poll_sites(f, &cfg);
        let (_, _, entry_live) = &sites[0];
        assert!(entry_live.contains(&"o".to_string()), "{entry_live:?}");
        assert!(
            !l.always_live.contains("dead"),
            "scalar with no address taken must not be forced live"
        );
    }

    #[test]
    fn aggregate_passed_by_pointer_into_migrating_callee_stays_live() {
        // main passes `data` (an aggregate, decaying to a pointer) into
        // `work`, whose loop header is a poll-point: a migration inside
        // the callee must still collect main's frame block, so `data`
        // has to be live at main's call site and forever after.
        let (p, cfg, l) = analyze(
            "int work(int *buf) { int i; i = 0; \
             while (i < 4) { buf[i] = i; i = i + 1; } return buf[0]; }\n\
             int main() { int data[8]; int r; r = work(data); return r; }",
            "main",
        );
        let f = p.function("main").unwrap();
        assert!(l.always_live.contains("data"));
        let calls = cfg.nodes_of_kind(|k| matches!(k, NodeKind::CallSite { .. }));
        assert_eq!(calls.len(), 1, "one call site in main");
        let live = l.live_at_poll(f, calls[0]);
        assert!(
            live.contains(&"data".to_string()),
            "aggregate handed to a migrating callee must be live at the call: {live:?}"
        );

        // Inside the callee, the pointer param is live at the loop
        // header so the poll-point collects the frame that anchors the
        // caller's block.
        let wf = p.function("work").unwrap().clone();
        let wcfg = Cfg::build(&wf);
        let wl = solve(&wf, &wcfg);
        let headers = wcfg.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        let wlive = wl.live_at_poll(&wf, headers[0]);
        assert!(wlive.contains(&"buf".to_string()), "{wlive:?}");
    }

    #[test]
    fn poll_sites_enumerated() {
        let (p, cfg, l) = analyze(
            "int g(int v) { return v; }\n\
             int main() { int i; i = 0; while (i < 3) { i = g(i) + 1; } return i; }",
            "main",
        );
        let f = p.function("main").unwrap();
        let sites = l.poll_sites(f, &cfg);
        // entry + loop header + call site.
        assert_eq!(sites.len(), 3, "{sites:?}");
    }
}
