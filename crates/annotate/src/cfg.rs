//! Statement-level control-flow graph.
//!
//! Each simple statement, loop header (condition), and call statement is
//! a node with `use`/`def` sets over variable names. The graph feeds the
//! live-variable analysis that the pre-compiler attaches to poll-points.

use crate::ast::*;
use std::collections::BTreeSet;

/// Node index in a [`Cfg`].
pub type NodeId = usize;

/// What kind of program point a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// Function entry (a poll-point candidate).
    Entry,
    /// Synthetic exit node.
    Exit,
    /// An ordinary statement.
    Plain,
    /// A loop-condition evaluation — the canonical poll-point site.
    LoopHeader,
    /// A statement containing a function call — a potential migration
    /// pass-through point.
    CallSite {
        /// Callee name.
        callee: String,
    },
}

/// One CFG node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Kind of program point.
    pub kind: NodeKind,
    /// Source line.
    pub line: u32,
    /// Variables read at this point.
    pub uses: BTreeSet<String>,
    /// Variables written at this point.
    pub defs: BTreeSet<String>,
    /// Successor nodes.
    pub succs: Vec<NodeId>,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; index 0 is the entry, index 1 the exit.
    pub nodes: Vec<Node>,
    /// Variables whose address is taken anywhere in the function: they
    /// must be treated as live everywhere (the MSR graph may reach them
    /// through pointers).
    pub addr_taken: BTreeSet<String>,
}

/// Entry node id.
pub const ENTRY: NodeId = 0;
/// Exit node id.
pub const EXIT: NodeId = 1;

impl Cfg {
    /// Build the CFG of `f`.
    pub fn build(f: &Function) -> Cfg {
        let mut b = Builder {
            nodes: Vec::new(),
            addr_taken: BTreeSet::new(),
        };
        b.node(NodeKind::Entry, f.line); // 0
        b.node(NodeKind::Exit, f.line); // 1
        let (first, last_open) = b.seq(&f.body, &mut Vec::new(), &mut Vec::new());
        b.nodes[ENTRY].succs.push(first.unwrap_or(EXIT));
        for n in last_open {
            b.nodes[n].succs.push(EXIT);
        }
        Cfg {
            nodes: b.nodes,
            addr_taken: b.addr_taken,
        }
    }

    /// Ids of nodes of a given kind.
    pub fn nodes_of_kind(&self, pred: impl Fn(&NodeKind) -> bool) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| pred(&n.kind))
            .map(|(i, _)| i)
            .collect()
    }
}

struct Builder {
    nodes: Vec<Node>,
    addr_taken: BTreeSet<String>,
}

impl Builder {
    fn node(&mut self, kind: NodeKind, line: u32) -> NodeId {
        self.nodes.push(Node {
            kind,
            line,
            uses: BTreeSet::new(),
            defs: BTreeSet::new(),
            succs: vec![],
        });
        self.nodes.len() - 1
    }

    /// Lower a statement sequence. Returns (entry node, open ends that
    /// should fall through to whatever follows). `breaks`/`continues`
    /// collect unresolved jump sources for the innermost loop.
    fn seq(
        &mut self,
        stmts: &[Stmt],
        breaks: &mut Vec<NodeId>,
        continues: &mut Vec<NodeId>,
    ) -> (Option<NodeId>, Vec<NodeId>) {
        let mut entry = None;
        let mut open: Vec<NodeId> = Vec::new();
        for s in stmts {
            let (s_entry, s_open) = self.stmt(s, breaks, continues);
            if let Some(se) = s_entry {
                if entry.is_none() {
                    entry = Some(se);
                }
                for o in &open {
                    self.nodes[*o].succs.push(se);
                }
                open = s_open;
            }
        }
        (entry, open)
    }

    fn stmt(
        &mut self,
        s: &Stmt,
        breaks: &mut Vec<NodeId>,
        continues: &mut Vec<NodeId>,
    ) -> (Option<NodeId>, Vec<NodeId>) {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                let kind = match find_call(value) {
                    Some(c) => NodeKind::CallSite { callee: c },
                    None => NodeKind::Plain,
                };
                let n = self.node(kind, *line);
                self.collect_uses(value, n);
                self.assign_target(target, n);
                (Some(n), vec![n])
            }
            Stmt::Expr { expr, line } => {
                let kind = match find_call(expr) {
                    Some(c) => NodeKind::CallSite { callee: c },
                    None => NodeKind::Plain,
                };
                let n = self.node(kind, *line);
                self.collect_uses(expr, n);
                (Some(n), vec![n])
            }
            Stmt::Free { ptr, line }
            | Stmt::Print {
                value: ptr, line, ..
            } => {
                let n = self.node(NodeKind::Plain, *line);
                self.collect_uses(ptr, n);
                (Some(n), vec![n])
            }
            Stmt::Return { value, line } => {
                let n = self.node(NodeKind::Plain, *line);
                if let Some(v) = value {
                    self.collect_uses(v, n);
                }
                self.nodes[n].succs.push(EXIT);
                (Some(n), vec![]) // nothing falls through a return
            }
            Stmt::Break { line } => {
                let n = self.node(NodeKind::Plain, *line);
                breaks.push(n);
                (Some(n), vec![])
            }
            Stmt::Continue { line } => {
                let n = self.node(NodeKind::Plain, *line);
                continues.push(n);
                (Some(n), vec![])
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let c = self.node(NodeKind::Plain, *line);
                self.collect_uses(cond, c);
                let (t_entry, mut t_open) = self.seq(then_body, breaks, continues);
                let (e_entry, e_open) = self.seq(else_body, breaks, continues);
                match t_entry {
                    Some(te) => self.nodes[c].succs.push(te),
                    None => t_open.push(c),
                }
                match e_entry {
                    Some(ee) => self.nodes[c].succs.push(ee),
                    None => t_open.push(c),
                }
                t_open.extend(e_open);
                (Some(c), t_open)
            }
            Stmt::While { cond, body, line } => {
                let h = self.node(NodeKind::LoopHeader, *line);
                self.collect_uses(cond, h);
                let mut my_breaks = Vec::new();
                let mut my_continues = Vec::new();
                let (b_entry, b_open) = self.seq(body, &mut my_breaks, &mut my_continues);
                let target = b_entry.unwrap_or(h);
                self.nodes[h].succs.push(target);
                for o in b_open {
                    self.nodes[o].succs.push(h);
                }
                for c in my_continues {
                    self.nodes[c].succs.push(h);
                }
                // breaks and the false edge fall through.
                let mut open = my_breaks;
                open.push(h);
                (Some(h), open)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                let mut entry = None;
                let mut pre_open: Vec<NodeId> = Vec::new();
                if let Some(i) = init {
                    let (ie, io) = self.stmt(i, breaks, continues);
                    entry = ie;
                    pre_open = io;
                }
                let h = self.node(NodeKind::LoopHeader, *line);
                if let Some(c) = cond {
                    self.collect_uses(c, h);
                }
                for o in pre_open {
                    self.nodes[o].succs.push(h);
                }
                if entry.is_none() {
                    entry = Some(h);
                }
                let mut my_breaks = Vec::new();
                let mut my_continues = Vec::new();
                let (b_entry, b_open) = self.seq(body, &mut my_breaks, &mut my_continues);
                // step node
                let step_node = step.as_ref().map(|st| {
                    let (se, _) = self.stmt(st, &mut Vec::new(), &mut Vec::new());
                    se.unwrap()
                });
                let back = step_node.unwrap_or(h);
                let body_target = b_entry.unwrap_or(back);
                self.nodes[h].succs.push(body_target);
                for o in b_open {
                    self.nodes[o].succs.push(back);
                }
                for c in my_continues {
                    self.nodes[c].succs.push(back);
                }
                if let Some(sn) = step_node {
                    self.nodes[sn].succs.push(h);
                }
                let mut open = my_breaks;
                open.push(h); // cond-false edge
                (entry, open)
            }
        }
    }

    fn assign_target(&mut self, target: &Expr, n: NodeId) {
        match target {
            Expr::Ident(name) => {
                self.nodes[n].defs.insert(name.clone());
            }
            // *p = …, a[i] = …, p->f = …: the base is *used*.
            other => self.collect_uses(other, n),
        }
    }

    fn collect_uses(&mut self, e: &Expr, n: NodeId) {
        match e {
            Expr::Ident(name) => {
                self.nodes[n].uses.insert(name.clone());
            }
            Expr::AddrOf(inner) => {
                // &x escapes: x must be considered live everywhere.
                mark_addr_taken(inner, &mut self.addr_taken);
                self.collect_uses(inner, n);
            }
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                self.collect_uses(a, n);
                self.collect_uses(b, n);
            }
            Expr::Unary(_, a) | Expr::Deref(a) | Expr::Cast(_, a, _) => self.collect_uses(a, n),
            Expr::Member(a, _) | Expr::Arrow(a, _) => self.collect_uses(a, n),
            Expr::Call(_, args) => {
                for a in args {
                    self.collect_uses(a, n);
                }
            }
            Expr::Malloc(c, _) => self.collect_uses(c, n),
            Expr::Int(_) | Expr::Float(_) | Expr::Sizeof(_) => {}
        }
    }
}

fn mark_addr_taken(e: &Expr, set: &mut BTreeSet<String>) {
    match e {
        Expr::Ident(n) => {
            set.insert(n.clone());
        }
        Expr::Index(a, _) | Expr::Member(a, _) => mark_addr_taken(a, set),
        // &*p, &p->f: no *local's* address is taken (p's value is used).
        _ => {}
    }
}

/// The callee of the outermost call in an expression, if any.
pub fn find_call(e: &Expr) -> Option<String> {
    match e {
        Expr::Call(name, _) => Some(name.clone()),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => find_call(a).or_else(|| find_call(b)),
        Expr::Unary(_, a) | Expr::Deref(a) | Expr::AddrOf(a) | Expr::Cast(_, a, _) => find_call(a),
        Expr::Member(a, _) | Expr::Arrow(a, _) => find_call(a),
        Expr::Malloc(c, _) => find_call(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).unwrap();
        Cfg::build(p.function("main").unwrap())
    }

    #[test]
    fn straight_line() {
        let c = cfg_of("int main() { int x; x = 1; x = x + 1; return x; }");
        // entry, exit, 3 statements.
        assert_eq!(c.nodes.len(), 5);
        assert_eq!(c.nodes[ENTRY].succs.len(), 1);
    }

    #[test]
    fn while_loop_header_found() {
        let c = cfg_of("int main() { int i; i = 0; while (i < 3) { i = i + 1; } return i; }");
        let headers = c.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        assert_eq!(headers.len(), 1);
        let h = headers[0];
        assert!(c.nodes[h].uses.contains("i"));
        // Header has two successors (body and fall-through is via open
        // list, so at least the body edge exists).
        assert!(!c.nodes[h].succs.is_empty());
    }

    #[test]
    fn for_loop_back_edge_through_step() {
        let c = cfg_of(
            "int main() { int i; int s; s = 0; for (i = 0; i < 5; i++) { s = s + i; } return s; }",
        );
        let headers = c.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        assert_eq!(headers.len(), 1);
        // Some node (the step) must point back to the header.
        let h = headers[0];
        assert!(c
            .nodes
            .iter()
            .any(|n| n.succs.contains(&h) && n.defs.contains("i")));
    }

    #[test]
    fn call_sites_classified() {
        let c =
            cfg_of("int f(int a) { return a; }\nint main() { int x; x = f(1); f(2); return x; }");
        let calls = c.nodes_of_kind(|k| matches!(k, NodeKind::CallSite { .. }));
        assert_eq!(calls.len(), 2);
    }

    #[test]
    fn addr_taken_detected() {
        let c = cfg_of("int main() { int x; int *p; p = &x; return *p; }");
        assert!(c.addr_taken.contains("x"));
        assert!(!c.addr_taken.contains("p"));
    }

    #[test]
    fn break_exits_loop() {
        let c = cfg_of(
            "int main() { int i; i = 0; while (1) { if (i > 3) break; i = i + 1; } return i; }",
        );
        // The loop terminates through break: the break node's successor
        // is whatever follows the loop (the return).
        let ret = c
            .nodes
            .iter()
            .position(|n| n.succs.contains(&EXIT) && n.uses.contains("i"))
            .unwrap();
        assert!(c.nodes.iter().any(|n| n.succs.contains(&ret)));
    }

    #[test]
    fn deref_store_uses_base() {
        let c = cfg_of("int main() { int x; int *p; p = &x; *p = 3; return x; }");
        // "*p = 3" uses p, defines nothing.
        let n = c
            .nodes
            .iter()
            .find(|n| n.uses.contains("p") && n.defs.is_empty() && n.line == 1);
        assert!(n.is_some());
    }
}
