//! Recursive-descent parser for mini-C.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};
use crate::safety::UnsafeFeature;
use crate::CError;
use hpm_arch::CScalar;

/// Parse mini-C source into a [`Program`].
///
/// Constructs that can never be made migration-safe (`union`, `goto`,
/// `switch` with fall-through state, varargs, function pointers) are
/// rejected here with [`CError::Unsafe`], mirroring the pre-compiler's
/// screening role.
pub fn parse(src: &str) -> Result<Program, CError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    p.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn col(&self) -> u32 {
        self.toks[self.pos].col
    }

    fn span(&self) -> Span {
        Span::new(self.line(), self.col())
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.toks[self.pos].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(CError::Parse(
                format!("expected '{p}', found {:?}", self.peek()),
                self.line(),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, CError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(CError::Parse(
                format!("expected identifier, found {other:?}"),
                self.line(),
            )),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if matches!(
            s.as_str(),
            "int" | "char" | "short" | "long" | "float" | "double" | "unsigned" | "void" | "struct"
        ))
    }

    // ----- types -----

    fn base_type(&mut self) -> Result<TypeExpr, CError> {
        let line = self.line();
        let col = self.col();
        if self.eat_kw("struct") {
            let name = self.ident()?;
            return Ok(TypeExpr::Struct(name));
        }
        if self.eat_kw("union") {
            return Err(CError::Unsafe(UnsafeFeature::Union { line, col }));
        }
        let unsigned = self.eat_kw("unsigned");
        let s = match self.bump() {
            TokenKind::Ident(s) => s,
            other => {
                return Err(CError::Parse(
                    format!("expected type, found {other:?}"),
                    line,
                ))
            }
        };
        let scalar = match (s.as_str(), unsigned) {
            ("char", false) => CScalar::Char,
            ("char", true) => CScalar::UChar,
            ("short", false) => CScalar::Short,
            ("short", true) => CScalar::UShort,
            ("int", false) => CScalar::Int,
            ("int", true) => CScalar::UInt,
            ("long", false) => CScalar::Long,
            ("long", true) => CScalar::ULong,
            ("float", false) => CScalar::Float,
            ("double", false) => CScalar::Double,
            ("void", false) => return Ok(TypeExpr::Void),
            _ => return Err(CError::Parse(format!("unknown type '{s}'"), line)),
        };
        Ok(TypeExpr::Scalar(scalar))
    }

    fn stars(&mut self, mut t: TypeExpr) -> TypeExpr {
        while self.eat_punct("*") {
            t = TypeExpr::Pointer(Box::new(t));
        }
        t
    }

    /// `type '*'* IDENT ('[' INT ']')?`
    fn declarator(&mut self) -> Result<VarDecl, CError> {
        let line = self.line();
        let base = self.base_type()?;
        let ty = self.stars(base);
        if matches!(self.peek(), TokenKind::Punct("(")) {
            return Err(CError::Unsafe(UnsafeFeature::FunctionPointer {
                line,
                col: self.col(),
            }));
        }
        let name = self.ident()?;
        let mut array = None;
        if self.eat_punct("[") {
            match self.bump() {
                TokenKind::Int(n) if n > 0 => array = Some(n as u64),
                other => {
                    return Err(CError::Parse(
                        format!("expected array length, found {other:?}"),
                        line,
                    ))
                }
            }
            self.expect_punct("]")?;
        }
        Ok(VarDecl {
            name,
            ty,
            array,
            line,
        })
    }

    // ----- top level -----

    fn program(&mut self) -> Result<Program, CError> {
        let mut prog = Program::default();
        while !matches!(self.peek(), TokenKind::Eof) {
            if self.is_kw("union") {
                return Err(CError::Unsafe(UnsafeFeature::Union {
                    line: self.line(),
                    col: self.col(),
                }));
            }
            // struct definition: 'struct' IDENT '{'
            if self.is_kw("struct") && matches!(self.peek2(), TokenKind::Ident(_)) {
                let save = self.pos;
                self.bump();
                let name = self.ident()?;
                if self.eat_punct("{") {
                    let line = self.line();
                    let mut fields = Vec::new();
                    while !self.eat_punct("}") {
                        let f = self.declarator()?;
                        self.expect_punct(";")?;
                        fields.push(f);
                    }
                    self.expect_punct(";")?;
                    prog.structs.push(StructDef { name, fields, line });
                    continue;
                }
                self.pos = save;
            }
            // Function or global: parse declarator-ish prefix.
            let save = self.pos;
            let line = self.line();
            let base = self.base_type()?;
            let ty = self.stars(base);
            let name = self.ident()?;
            if self.eat_punct("(") {
                let f = self.function_rest(name, ty, line)?;
                prog.functions.push(f);
            } else {
                self.pos = save;
                let d = self.declarator()?;
                self.expect_punct(";")?;
                prog.globals.push(d);
            }
        }
        Ok(prog)
    }

    fn function_rest(
        &mut self,
        name: String,
        ret: TypeExpr,
        line: u32,
    ) -> Result<Function, CError> {
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.is_kw("void") && matches!(self.peek2(), TokenKind::Punct(")")) {
                self.bump();
                self.bump();
            } else {
                loop {
                    if matches!(self.peek(), TokenKind::Punct("...")) {
                        return Err(CError::Unsafe(UnsafeFeature::Varargs {
                            line: self.line(),
                            col: self.col(),
                        }));
                    }
                    let d = self.declarator()?;
                    params.push(d);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
        }
        self.expect_punct("{")?;
        // C89 style: all locals first (statements never begin with a
        // type keyword, so this is unambiguous).
        let mut locals = Vec::new();
        while self.is_type_start() {
            let d = self.declarator()?;
            self.expect_punct(";")?;
            locals.push(d);
        }
        let body = self.block_body()?;
        Ok(Function {
            name,
            ret,
            params,
            locals,
            body,
            line,
        })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, CError> {
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    // ----- statements -----

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, CError> {
        if self.eat_punct("{") {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        if self.is_kw("goto") {
            return Err(CError::Unsafe(UnsafeFeature::Goto {
                line,
                col: self.col(),
            }));
        }
        if self.is_kw("switch") {
            return Err(CError::Unsafe(UnsafeFeature::Switch {
                line,
                col: self.col(),
            }));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_body = self.block_or_single()?;
            let else_body = if self.eat_kw("else") {
                self.block_or_single()?
            } else {
                vec![]
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            });
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = self.simple_stmt(line)?;
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let cond = if matches!(self.peek(), TokenKind::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), TokenKind::Punct(")")) {
                None
            } else {
                Some(Box::new(self.simple_stmt(line)?))
            };
            self.expect_punct(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            });
        }
        if self.eat_kw("return") {
            let value = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            return Ok(Stmt::Return { value, line });
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break { line });
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue { line });
        }
        if self.eat_kw("print") {
            self.expect_punct("(")?;
            let mut label = None;
            if let TokenKind::Str(s) = self.peek() {
                label = Some(s.clone());
                self.bump();
                self.expect_punct(",")?;
            }
            let value = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Print { label, value, line });
        }
        let s = self.simple_stmt(line)?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// Assignment / expression / free / ++ / -- without the trailing `;`.
    fn simple_stmt(&mut self, line: u32) -> Result<Stmt, CError> {
        // free(e)
        if self.is_kw("free") && matches!(self.peek2(), TokenKind::Punct("(")) {
            self.bump();
            self.bump();
            let ptr = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::Free { ptr, line });
        }
        let target = self.expr()?;
        if self.eat_punct("=") {
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                target,
                value,
                line,
            });
        }
        for (p, op) in [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
        ] {
            if self.eat_punct(p) {
                let rhs = self.expr()?;
                let value = Expr::Binary(op, Box::new(target.clone()), Box::new(rhs));
                return Ok(Stmt::Assign {
                    target,
                    value,
                    line,
                });
            }
        }
        if self.eat_punct("++") {
            let value = Expr::Binary(BinOp::Add, Box::new(target.clone()), Box::new(Expr::Int(1)));
            return Ok(Stmt::Assign {
                target,
                value,
                line,
            });
        }
        if self.eat_punct("--") {
            let value = Expr::Binary(BinOp::Sub, Box::new(target.clone()), Box::new(Expr::Int(1)));
            return Ok(Stmt::Assign {
                target,
                value,
                line,
            });
        }
        Ok(Stmt::Expr { expr: target, line })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.and_expr()?;
        while self.eat_punct("||") {
            let r = self.and_expr()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.eq_expr()?;
        while self.eat_punct("&&") {
            let r = self.eq_expr()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn eq_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.rel_expr()?;
        loop {
            if self.eat_punct("==") {
                let r = self.rel_expr()?;
                e = Expr::Binary(BinOp::Eq, Box::new(e), Box::new(r));
            } else if self.eat_punct("!=") {
                let r = self.rel_expr()?;
                e = Expr::Binary(BinOp::Ne, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn rel_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.add_expr()?;
        loop {
            let op = if self.eat_punct("<=") {
                BinOp::Le
            } else if self.eat_punct(">=") {
                BinOp::Ge
            } else if self.eat_punct("<") {
                BinOp::Lt
            } else if self.eat_punct(">") {
                BinOp::Gt
            } else {
                return Ok(e);
            };
            let r = self.add_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
    }

    fn add_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                let r = self.mul_expr()?;
                e = Expr::Binary(BinOp::Add, Box::new(e), Box::new(r));
            } else if self.eat_punct("-") {
                let r = self.mul_expr()?;
                e = Expr::Binary(BinOp::Sub, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.unary_expr()?;
        loop {
            if self.eat_punct("*") {
                let r = self.unary_expr()?;
                e = Expr::Binary(BinOp::Mul, Box::new(e), Box::new(r));
            } else if self.eat_punct("/") {
                let r = self.unary_expr()?;
                e = Expr::Binary(BinOp::Div, Box::new(e), Box::new(r));
            } else if self.eat_punct("%") {
                let r = self.unary_expr()?;
                e = Expr::Binary(BinOp::Mod, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Deref(Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("&") {
            return Ok(Expr::AddrOf(Box::new(self.unary_expr()?)));
        }
        if self.is_kw("sizeof") {
            self.bump();
            self.expect_punct("(")?;
            let t = self.base_type()?;
            let t = self.stars(t);
            self.expect_punct(")")?;
            return Ok(Expr::Sizeof(t));
        }
        // Cast: '(' type-start … ')'
        if matches!(self.peek(), TokenKind::Punct("(")) {
            let save = self.pos;
            let span = self.span();
            self.bump();
            if self.is_type_start() {
                let t = self.base_type()?;
                let t = self.stars(t);
                if self.eat_punct(")") {
                    let inner = self.unary_expr()?;
                    return Ok(Expr::Cast(t, Box::new(inner), span));
                }
            }
            self.pos = save;
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct("->") {
                let f = self.ident()?;
                e = Expr::Arrow(Box::new(e), f);
            } else if self.eat_punct(".") {
                let f = self.ident()?;
                e = Expr::Member(Box::new(e), f);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    if name == "malloc" {
                        return self.lower_malloc(args, line);
                    }
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            other => Err(CError::Parse(format!("unexpected token {other:?}"), line)),
        }
    }

    /// `malloc(sizeof(T))` → 1 element; `malloc(n * sizeof(T))` or
    /// `malloc(sizeof(T) * n)` → n elements.
    fn lower_malloc(&mut self, mut args: Vec<Expr>, line: u32) -> Result<Expr, CError> {
        if args.len() != 1 {
            return Err(CError::Parse("malloc takes one argument".into(), line));
        }
        match args.remove(0) {
            Expr::Sizeof(t) => Ok(Expr::Malloc(Box::new(Expr::Int(1)), t)),
            Expr::Binary(BinOp::Mul, a, b) => match (*a, *b) {
                (Expr::Sizeof(t), n) | (n, Expr::Sizeof(t)) => Ok(Expr::Malloc(Box::new(n), t)),
                _ => Err(CError::Parse(
                    "malloc argument must involve sizeof(T)".into(),
                    line,
                )),
            },
            _ => Err(CError::Parse(
                "malloc argument must involve sizeof(T)".into(),
                line,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_program() {
        let src = r#"
            struct node { float data; struct node *link; };
            struct node *first;
            struct node *last;
            void foo(struct node **p, int **q) {
                *p = (struct node *) malloc(sizeof(struct node));
                (*p)->data = 10.5;
                (**q)++;
            }
            int main() {
                int i;
                int a;
                int *b;
                struct node *parray[10];
                a = 1;
                b = &a;
                for (i = 0; i < 10; i++) {
                    foo(&parray[i], &b);
                    first = parray[0];
                    last = parray[i];
                    first->link = last;
                    if (i > 0) parray[i]->link = parray[i-1];
                }
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.functions.len(), 2);
        let main = p.function("main").unwrap();
        assert_eq!(main.locals.len(), 4);
        assert_eq!(main.locals[3].array, Some(10));
    }

    #[test]
    fn precedence() {
        let p = parse("int main() { int x; x = 1 + 2 * 3; return x; }").unwrap();
        let main = p.function("main").unwrap();
        match &main.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary(BinOp::Add, a, b) => {
                    assert_eq!(**a, Expr::Int(1));
                    assert!(matches!(**b, Expr::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("bad tree {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn union_rejected_as_unsafe() {
        let r = parse("union u { int a; float b; };");
        assert!(matches!(
            r,
            Err(CError::Unsafe(UnsafeFeature::Union { .. }))
        ));
    }

    #[test]
    fn goto_rejected() {
        let r = parse("int main() { goto done; }");
        assert!(matches!(r, Err(CError::Unsafe(UnsafeFeature::Goto { .. }))));
    }

    #[test]
    fn varargs_rejected() {
        let r = parse("int f(int a, ...) { return 0; }");
        assert!(matches!(
            r,
            Err(CError::Unsafe(UnsafeFeature::Varargs { .. }))
        ));
    }

    #[test]
    fn function_pointer_rejected() {
        let r = parse("int main() { int (*f)(int); return 0; }");
        assert!(matches!(
            r,
            Err(CError::Unsafe(UnsafeFeature::FunctionPointer { .. }))
        ));
    }

    #[test]
    fn malloc_forms() {
        let p = parse("int main() { int *a; int *b; a = malloc(sizeof(int)); b = malloc(10 * sizeof(int)); return 0; }").unwrap();
        let main = p.function("main").unwrap();
        assert!(
            matches!(&main.body[0], Stmt::Assign { value: Expr::Malloc(n, _), .. } if **n == Expr::Int(1))
        );
        assert!(
            matches!(&main.body[1], Stmt::Assign { value: Expr::Malloc(n, _), .. } if **n == Expr::Int(10))
        );
    }

    #[test]
    fn malloc_without_sizeof_rejected() {
        assert!(parse("int main() { int *a; a = malloc(40); return 0; }").is_err());
    }

    #[test]
    fn compound_assign_and_incr_desugar() {
        let p = parse("int main() { int i; i = 0; i += 2; i++; return i; }").unwrap();
        let main = p.function("main").unwrap();
        assert!(matches!(
            &main.body[1],
            Stmt::Assign {
                value: Expr::Binary(BinOp::Add, _, _),
                ..
            }
        ));
        assert!(matches!(
            &main.body[2],
            Stmt::Assign {
                value: Expr::Binary(BinOp::Add, _, _),
                ..
            }
        ));
    }

    #[test]
    fn for_loop_structure() {
        let p =
            parse("int main() { int i; int s; s = 0; for (i = 0; i < 5; i++) s += i; return s; }")
                .unwrap();
        let main = p.function("main").unwrap();
        match &main.body[1] {
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn print_with_label() {
        let p = parse(r#"int main() { int x; x = 3; print("x", x); return 0; }"#).unwrap();
        let main = p.function("main").unwrap();
        assert!(matches!(&main.body[1], Stmt::Print { label: Some(l), .. } if l == "x"));
    }

    #[test]
    fn free_statement() {
        let p =
            parse("int main() { int *a; a = malloc(sizeof(int)); free(a); return 0; }").unwrap();
        let main = p.function("main").unwrap();
        assert!(matches!(&main.body[1], Stmt::Free { .. }));
    }
}
