//! The mini-C virtual machine: runs compiled programs as migratable
//! processes.
//!
//! The VM is where the pre-compiler's annotations become runtime
//! behavior: a [`Instr::Poll`] at a loop header checks for a migration
//! request and, when one is pending, saves exactly the live variables
//! the dataflow analysis computed; a [`Instr::CallMark`] records the
//! resume point for migrations that pass through nested calls. The VM
//! speaks the same [`MigCtx`] protocol as the hand-annotated workloads,
//! so a mini-C process migrates between heterogeneous machines with no
//! VM-specific wire format.

use crate::compile::{compile_program, BinKind, CompiledProgram, Instr};
use crate::parser::parse;
use crate::CError;
use hpm_arch::{CScalar, ScalarValue};
use hpm_migrate::{Flow, MigCtx, MigError, MigratableProgram, Process};
use std::sync::Arc;

/// A mini-C program packaged as a migratable process.
#[derive(Debug, Clone)]
pub struct MiniCProcess {
    prog: Arc<CompiledProgram>,
    output: Vec<(String, String)>,
    ret: Option<i64>,
}

impl MiniCProcess {
    /// Wrap an already-compiled program.
    pub fn new(prog: Arc<CompiledProgram>) -> Self {
        MiniCProcess {
            prog,
            output: Vec::new(),
            ret: None,
        }
    }

    /// Parse, screen, analyze, compile, and wrap source text.
    pub fn from_source(src: &str) -> Result<Self, CError> {
        let ast = parse(src)?;
        let prog = compile_program(&ast)?;
        Ok(MiniCProcess::new(Arc::new(prog)))
    }

    /// The compiled program (for inspection).
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }
}

impl MigratableProgram for MiniCProcess {
    fn name(&self) -> &'static str {
        "minic"
    }

    fn setup(&mut self, proc: &mut Process) -> Result<(), MigError> {
        proc.space.install_types(self.prog.types.clone());
        for (name, ty, count) in &self.prog.globals {
            proc.define_global(name, *ty, *count)?;
        }
        Ok(())
    }

    fn run(&mut self, ctx: &mut MigCtx<'_>) -> Result<Flow, MigError> {
        // Global addresses in declaration order.
        let infos = ctx.proc().space.block_infos();
        let mut globals = Vec::with_capacity(self.prog.globals.len());
        for (name, _, _) in &self.prog.globals {
            let addr = infos
                .iter()
                .find(|b| b.name.as_deref() == Some(name))
                .ok_or_else(|| MigError::Protocol(format!("global {name} missing")))?
                .addr;
            globals.push(addr);
        }
        let prog = Arc::clone(&self.prog);
        let mut vm = Vm {
            ctx,
            prog: &prog,
            globals,
            output: &mut self.output,
        };
        match vm
            .exec_function(self.prog.main, Vec::new())
            .map_err(to_mig)?
        {
            Exec::Done(v) => {
                self.ret = v.map(|s| s.as_i64());
                Ok(Flow::Done)
            }
            Exec::Migrate => Ok(Flow::Migrate),
        }
    }

    fn results(&self, _proc: &mut Process) -> Result<Vec<(String, String)>, MigError> {
        let mut out = self.output.clone();
        if let Some(r) = self.ret {
            out.push(("return".into(), r.to_string()));
        }
        Ok(out)
    }
}

fn to_mig(e: CError) -> MigError {
    MigError::Protocol(e.to_string())
}

enum Exec {
    Done(Option<ScalarValue>),
    Migrate,
}

struct Vm<'c, 'p, 'o> {
    ctx: &'c mut MigCtx<'p>,
    prog: &'c Arc<CompiledProgram>,
    globals: Vec<u64>,
    output: &'o mut Vec<(String, String)>,
}

impl Vm<'_, '_, '_> {
    fn rt(&self, msg: impl Into<String>) -> CError {
        CError::Runtime(msg.into())
    }

    fn exec_function(&mut self, fi: usize, args: Vec<ScalarValue>) -> Result<Exec, CError> {
        let prog = Arc::clone(self.prog);
        let f = &prog.functions[fi];
        let frame = self.ctx.enter(&f.name)?;
        // Declare all slots (identical order on both machines).
        let mut slots = Vec::with_capacity(f.slots.len());
        for (name, ty, count) in &f.slots {
            slots.push(self.ctx.local(frame, name, *ty, *count)?);
        }
        // Store arguments into parameter slots. During re-entry these
        // may be garbage; the frame's restore overwrites what matters.
        for (i, a) in args.into_iter().enumerate() {
            self.ctx.proc().space.store_scalar(slots[i], a)?;
        }

        let mut pc: usize = match self.ctx.resume_point() {
            Some(rp) => rp as usize,
            None => 0,
        };
        let mut stack: Vec<ScalarValue> = Vec::new();
        let mut cur_mark: Option<(usize, Vec<u64>)> = None;

        loop {
            let instr = &f.code[pc];
            match instr {
                Instr::PushInt(v) => {
                    stack.push(ScalarValue::Int(*v));
                    pc += 1;
                }
                Instr::PushF64(v) => {
                    stack.push(ScalarValue::F64(*v));
                    pc += 1;
                }
                Instr::AddrLocal(n) => {
                    stack.push(ScalarValue::Ptr(slots[*n]));
                    pc += 1;
                }
                Instr::AddrGlobal(n) => {
                    stack.push(ScalarValue::Ptr(self.globals[*n]));
                    pc += 1;
                }
                Instr::Load => {
                    let addr = self.pop(&mut stack)?.as_ptr();
                    let v = self.ctx.proc().space.load_scalar(addr)?;
                    stack.push(v);
                    pc += 1;
                }
                Instr::Store => {
                    let addr = self.pop(&mut stack)?.as_ptr();
                    let v = self.pop(&mut stack)?;
                    self.ctx.proc().space.store_scalar(addr, v)?;
                    pc += 1;
                }
                Instr::Drop => {
                    self.pop(&mut stack)?;
                    pc += 1;
                }
                Instr::Index { elem } => {
                    let idx = self.pop(&mut stack)?.as_i64();
                    let base = self.pop(&mut stack)?.as_ptr();
                    let size = self.ctx.proc().space.layout_of(*elem)?.size as i64;
                    let addr = (base as i64).wrapping_add(idx.wrapping_mul(size)) as u64;
                    stack.push(ScalarValue::Ptr(addr));
                    pc += 1;
                }
                Instr::FieldAddr { st, field } => {
                    let base = self.pop(&mut stack)?.as_ptr();
                    let off = self.ctx.proc().space.field_offset(*st, *field)?;
                    stack.push(ScalarValue::Ptr(base + off));
                    pc += 1;
                }
                Instr::Bin(k) => {
                    let b = self.pop(&mut stack)?;
                    let a = self.pop(&mut stack)?;
                    stack.push(self.binop(*k, a, b)?);
                    pc += 1;
                }
                Instr::Neg => {
                    let a = self.pop(&mut stack)?;
                    stack.push(match a {
                        ScalarValue::F64(v) => ScalarValue::F64(-v),
                        ScalarValue::F32(v) => ScalarValue::F64(-(v as f64)),
                        other => ScalarValue::Int(-other.as_i64()),
                    });
                    pc += 1;
                }
                Instr::Not => {
                    let a = self.pop(&mut stack)?;
                    stack.push(ScalarValue::Int(if a.is_zero() { 1 } else { 0 }));
                    pc += 1;
                }
                Instr::Cvt(kind) => {
                    let a = self.pop(&mut stack)?;
                    stack.push(self.convert(*kind, a));
                    pc += 1;
                }
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfZero(t) => {
                    let v = self.pop(&mut stack)?;
                    if v.is_zero() {
                        pc = *t;
                    } else {
                        pc += 1;
                    }
                }
                Instr::Poll { live, .. } => {
                    // Globals ride with the innermost frame (a Poll save
                    // always happens in the innermost frame), so resumed
                    // execution sees them before outer frames restore.
                    let addrs = self.live_addrs(&slots, live, true);
                    if self.ctx.frame_is_next_to_restore() {
                        self.ctx.restore_frame(&addrs)?;
                    } else if self.ctx.poll() {
                        self.ctx.save_frame(pc as u32, &addrs)?;
                        return Ok(Exec::Migrate);
                    }
                    pc += 1;
                }
                Instr::CallMark { live, .. } => {
                    cur_mark = Some((pc, self.live_addrs(&slots, live, false)));
                    pc += 1;
                }
                Instr::Call {
                    func,
                    nargs,
                    returns,
                } => {
                    if stack.len() < *nargs {
                        return Err(self.rt("operand stack underflow at call"));
                    }
                    let args = stack.split_off(stack.len() - nargs);
                    match self.exec_function(*func, args)? {
                        Exec::Migrate => {
                            let (mpc, maddrs) = cur_mark
                                .clone()
                                .ok_or_else(|| self.rt("call without CallMark"))?;
                            self.ctx.save_frame(mpc as u32, &maddrs)?;
                            return Ok(Exec::Migrate);
                        }
                        Exec::Done(v) => {
                            if *returns {
                                stack.push(v.ok_or_else(|| self.rt("missing return value"))?);
                            }
                            // Post-call restore: this frame's stream
                            // section is next once the callee (on the
                            // recorded chain) has fully restored.
                            if self.ctx.frame_is_next_to_restore() {
                                let (_, maddrs) = cur_mark
                                    .clone()
                                    .ok_or_else(|| self.rt("restore without CallMark"))?;
                                self.ctx.restore_frame(&maddrs)?;
                            }
                            pc += 1;
                        }
                    }
                }
                Instr::Ret { has_value } => {
                    let v = if *has_value {
                        Some(self.pop(&mut stack)?)
                    } else {
                        None
                    };
                    self.ctx.leave(frame)?;
                    return Ok(Exec::Done(v));
                }
                Instr::Malloc { elem } => {
                    let count = self.pop(&mut stack)?.as_i64();
                    if count <= 0 {
                        return Err(self.rt(format!("malloc of {count} elements")));
                    }
                    let addr = self.ctx.proc().malloc(*elem, count as u64)?;
                    stack.push(ScalarValue::Ptr(addr));
                    pc += 1;
                }
                Instr::Free => {
                    let addr = self.pop(&mut stack)?.as_ptr();
                    self.ctx.proc().free(addr)?;
                    pc += 1;
                }
                Instr::Print { label } => {
                    let v = self.pop(&mut stack)?;
                    let text = match v {
                        ScalarValue::F64(f) => format!("{f:?}"),
                        ScalarValue::F32(f) => format!("{f:?}"),
                        ScalarValue::Ptr(p) => {
                            if p == 0 {
                                "null".to_string()
                            } else {
                                "ptr".to_string()
                            }
                        }
                        other => other.as_i64().to_string(),
                    };
                    self.output
                        .push((label.clone().unwrap_or_else(|| "print".into()), text));
                    pc += 1;
                }
                Instr::SizeOf { ty } => {
                    let size = self.ctx.proc().space.layout_of(*ty)?.size;
                    stack.push(ScalarValue::Int(size as i64));
                    pc += 1;
                }
            }
        }
    }

    fn pop(&self, stack: &mut Vec<ScalarValue>) -> Result<ScalarValue, CError> {
        stack
            .pop()
            .ok_or_else(|| self.rt("operand stack underflow"))
    }

    /// Live block addresses for a poll/call site: the analysis's local
    /// slots, plus — at innermost-frame poll sites — every global (the
    /// reachability roots the runtime owns).
    fn live_addrs(&self, slots: &[u64], live: &[usize], with_globals: bool) -> Vec<u64> {
        let mut v: Vec<u64> = live.iter().map(|&i| slots[i]).collect();
        if with_globals {
            v.extend_from_slice(&self.globals);
        }
        v
    }

    fn binop(&self, k: BinKind, a: ScalarValue, b: ScalarValue) -> Result<ScalarValue, CError> {
        use ScalarValue::*;
        let float = matches!(a, F64(_) | F32(_)) || matches!(b, F64(_) | F32(_));
        Ok(if float {
            let x = a.as_f64();
            let y = b.as_f64();
            match k {
                BinKind::Add => F64(x + y),
                BinKind::Sub => F64(x - y),
                BinKind::Mul => F64(x * y),
                BinKind::Div => F64(x / y),
                BinKind::Mod => F64(x % y),
                BinKind::Lt => Int((x < y) as i64),
                BinKind::Le => Int((x <= y) as i64),
                BinKind::Gt => Int((x > y) as i64),
                BinKind::Ge => Int((x >= y) as i64),
                BinKind::Eq => Int((x == y) as i64),
                BinKind::Ne => Int((x != y) as i64),
            }
        } else if matches!(a, Ptr(_)) || matches!(b, Ptr(_)) {
            let x = a.as_ptr();
            let y = b.as_ptr();
            match k {
                BinKind::Eq => Int((x == y) as i64),
                BinKind::Ne => Int((x != y) as i64),
                BinKind::Lt => Int((x < y) as i64),
                BinKind::Le => Int((x <= y) as i64),
                BinKind::Gt => Int((x > y) as i64),
                BinKind::Ge => Int((x >= y) as i64),
                _ => return Err(self.rt("arithmetic on pointers (use indexing)")),
            }
        } else {
            let x = a.as_i64();
            let y = b.as_i64();
            match k {
                BinKind::Add => Int(x.wrapping_add(y)),
                BinKind::Sub => Int(x.wrapping_sub(y)),
                BinKind::Mul => Int(x.wrapping_mul(y)),
                BinKind::Div => {
                    if y == 0 {
                        return Err(self.rt("division by zero"));
                    }
                    Int(x.wrapping_div(y))
                }
                BinKind::Mod => {
                    if y == 0 {
                        return Err(self.rt("modulo by zero"));
                    }
                    Int(x.wrapping_rem(y))
                }
                BinKind::Lt => Int((x < y) as i64),
                BinKind::Le => Int((x <= y) as i64),
                BinKind::Gt => Int((x > y) as i64),
                BinKind::Ge => Int((x >= y) as i64),
                BinKind::Eq => Int((x == y) as i64),
                BinKind::Ne => Int((x != y) as i64),
            }
        })
    }

    fn convert(&mut self, kind: CScalar, v: ScalarValue) -> ScalarValue {
        // Width-exact conversion through the executing machine's layout.
        let arch = self.ctx.proc().space.arch().clone();
        let mut buf = Vec::with_capacity(8);
        arch.encode_scalar(kind, v, &mut buf);
        arch.decode_scalar(kind, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_arch::Architecture;
    use hpm_migrate::{run_migrating, run_straight, Trigger};

    fn run_src(src: &str) -> Vec<(String, String)> {
        let mut p = MiniCProcess::from_source(src).unwrap();
        let (r, _) = run_straight(&mut p, Architecture::sparc20()).unwrap();
        r
    }

    fn get<'a>(r: &'a [(String, String)], k: &str) -> &'a str {
        &r.iter()
            .find(|(a, _)| a == k)
            .unwrap_or_else(|| panic!("no key {k} in {r:?}"))
            .1
    }

    #[test]
    fn arithmetic_and_return() {
        let r = run_src("int main() { return 6 * 7; }");
        assert_eq!(get(&r, "return"), "42");
    }

    #[test]
    fn loops_and_prints() {
        let r = run_src(
            "int main() { int i; int s; s = 0; for (i = 1; i <= 10; i++) { s = s + i; } \
             print(\"sum\", s); return 0; }",
        );
        assert_eq!(get(&r, "sum"), "55");
    }

    #[test]
    fn floats() {
        let r =
            run_src("int main() { double x; x = 1.5; x = x * 4.0; print(\"x\", x); return 0; }");
        assert_eq!(get(&r, "x"), "6.0");
    }

    #[test]
    fn pointers_and_heap() {
        let r = run_src(
            "int main() { int *p; p = malloc(3 * sizeof(int)); p[0] = 7; p[1] = 8; p[2] = 9; \
             print(\"mid\", p[1]); free(p); return 0; }",
        );
        assert_eq!(get(&r, "mid"), "8");
    }

    #[test]
    fn struct_linked_list() {
        let r = run_src(
            "struct node { int v; struct node *next; };\n\
             struct node *head;\n\
             int main() {\n\
               int i; struct node *n;\n\
               head = 0;\n\
               for (i = 0; i < 5; i++) {\n\
                 n = (struct node *) malloc(sizeof(struct node));\n\
                 n->v = i; n->next = head; head = n;\n\
               }\n\
               i = 0;\n\
               n = head;\n\
               while (n != 0) { i = i * 10 + n->v; n = n->next; }\n\
               print(\"folded\", i);\n\
               return 0;\n\
             }",
        );
        assert_eq!(get(&r, "folded"), "43210");
    }

    #[test]
    fn function_calls_and_recursion() {
        let r = run_src(
            "int fib(int n) { int a; int b; if (n < 2) return n; a = fib(n - 1); b = fib(n - 2); return a + b; }\n\
             int main() { int x; x = fib(12); print(\"fib\", x); return 0; }",
        );
        assert_eq!(get(&r, "fib"), "144");
    }

    #[test]
    fn short_circuit_protects_deref() {
        let r = run_src(
            "struct n { int v; struct n *next; };\n\
             int main() { struct n *p; p = 0; \
             if (p != 0 && p->v > 0) { print(\"bad\", 1); } else { print(\"ok\", 1); } return 0; }",
        );
        assert_eq!(get(&r, "ok"), "1");
    }

    #[test]
    fn migration_of_minic_loop() {
        let src = "int main() { int i; int s; s = 0; \
                    for (i = 0; i < 2000; i++) { s = s + i; } \
                    print(\"sum\", s); return 0; }";
        let mut p = MiniCProcess::from_source(src).unwrap();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            || MiniCProcess::from_source(src).unwrap(),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(1000),
        )
        .unwrap();
        assert_eq!(expect, run.results, "migrated mini-C run must agree");
    }

    #[test]
    fn migration_through_nested_call() {
        let src = "int work(int n) { int i; int acc; acc = 0; \
                    for (i = 0; i < n; i++) { acc = acc + i; } return acc; }\n\
                   int main() { int total; int r; int k; total = 0; \
                    for (k = 0; k < 10; k++) { r = work(500); total = total + r; } \
                    print(\"total\", total); return 0; }";
        let mut p = MiniCProcess::from_source(src).unwrap();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        // Trigger deep inside work(): the chain is main → work.
        let run = run_migrating(
            || MiniCProcess::from_source(src).unwrap(),
            Architecture::dec5000(),
            Architecture::x86_64_sim(),
            hpm_net::NetworkModel::ethernet_100(),
            Trigger::AtPollCount(1700),
        )
        .unwrap();
        assert_eq!(expect, run.results);
        assert_eq!(run.report.chain_depth, 2, "main → work");
    }

    #[test]
    fn migration_of_heap_structures() {
        let src = "struct node { int v; struct node *next; };\n\
                   struct node *head;\n\
                   int main() {\n\
                     int i; int sum; struct node *n;\n\
                     head = 0;\n\
                     for (i = 0; i < 300; i++) {\n\
                       n = (struct node *) malloc(sizeof(struct node));\n\
                       n->v = i; n->next = head; head = n;\n\
                     }\n\
                     sum = 0;\n\
                     n = head;\n\
                     while (n != 0) { sum = sum + n->v; n = n->next; }\n\
                     print(\"sum\", sum);\n\
                     return 0;\n\
                   }";
        let mut p = MiniCProcess::from_source(src).unwrap();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            || MiniCProcess::from_source(src).unwrap(),
            Architecture::dec5000(),
            Architecture::sparc20(),
            hpm_net::NetworkModel::ethernet_10(),
            Trigger::AtPollCount(150), // mid list-build
        )
        .unwrap();
        assert_eq!(expect, run.results);
        assert!(
            run.report.collect_stats.blocks_saved > 100,
            "half the list migrated"
        );
    }
}
