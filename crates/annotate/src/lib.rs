//! # hpm-annotate — the mini-C pre-compiler and interpreter
//!
//! §2 of the paper: "The selection of poll-points as well as the macro
//! insertion are performed automatically by a source-to-source
//! transformation software (or a pre-compiler). … At every poll-point,
//! the pre-compiler defines live variables whose data values are needed
//! for computation beyond the poll-point."
//!
//! This crate is that pre-compiler for a C subset ("mini-C"), plus an
//! execution engine so transformed programs actually run — and migrate —
//! on the simulated machines:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — front end for the C subset
//!   (scalars, pointers, 1-D arrays, structs, `malloc`/`free`, `if`/
//!   `while`/`for`, function calls);
//! * [`safety`] — migration-unsafe feature detection in the spirit of
//!   Smith & Hutchinson's TUI analysis (pointer↔integer casts, unions,
//!   varargs, function pointers, address arithmetic escaping the MSR
//!   model);
//! * [`sema`] — symbol/type resolution onto the `hpm-types` TI table;
//! * [`cfg`] / [`liveness`] — statement-level control-flow graph and the
//!   backward live-variable dataflow analysis;
//! * [`annotate`] — poll-point selection (function entries and loop
//!   headers) and annotated-source emission, the paper's source-to-source
//!   transformation made visible;
//! * [`compile`] / [`vm`] — a bytecode compiler and interpreter that runs
//!   mini-C programs as [`MigratableProgram`](hpm_migrate::MigratableProgram)s:
//!   poll instructions carry the liveness analysis results, and the VM
//!   speaks the same save/restore protocol as the hand-annotated
//!   workloads, so mini-C processes migrate across heterogeneous
//!   machines mid-execution.

pub mod annotate;
pub mod ast;
pub mod cfg;
pub mod compile;
pub mod lexer;
pub mod liveness;
pub mod parser;
pub mod safety;
pub mod sema;
pub mod vm;

pub use annotate::{annotate_source, PollSite};
pub use compile::{compile_program, CompiledProgram};
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;
pub use safety::{check_migration_safety, UnsafeFeature};
pub use vm::MiniCProcess;

/// Errors across the pre-compiler pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CError {
    /// Lexical error with line number.
    Lex(String, u32),
    /// Parse error with line number.
    Parse(String, u32),
    /// Semantic error (unknown name, type mismatch, …).
    Sema(String),
    /// The program uses a migration-unsafe feature.
    Unsafe(UnsafeFeature),
    /// Runtime error in the VM.
    Runtime(String),
}

impl std::fmt::Display for CError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CError::Lex(m, l) => write!(f, "lex error at line {l}: {m}"),
            CError::Parse(m, l) => write!(f, "parse error at line {l}: {m}"),
            CError::Sema(m) => write!(f, "semantic error: {m}"),
            CError::Unsafe(u) => write!(f, "migration-unsafe feature: {u}"),
            CError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for CError {}

impl From<hpm_migrate::MigError> for CError {
    fn from(e: hpm_migrate::MigError) -> Self {
        CError::Runtime(e.to_string())
    }
}

impl From<hpm_memory::MemError> for CError {
    fn from(e: hpm_memory::MemError) -> Self {
        CError::Runtime(e.to_string())
    }
}
