//! Abstract syntax tree for the mini-C subset.

/// A source position: 1-based line and byte column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A type expression as written in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`, `char`, `short`, `long`, `float`, `double`, with
    /// signedness folded in (`unsigned int` → `UInt`, …).
    Scalar(hpm_arch::CScalar),
    /// `struct name`.
    Struct(String),
    /// `T *`.
    Pointer(Box<TypeExpr>),
    /// `void` (function return only).
    Void,
}

impl TypeExpr {
    /// Depth of pointer indirection.
    pub fn pointer_depth(&self) -> u32 {
        match self {
            TypeExpr::Pointer(inner) => 1 + inner.pointer_depth(),
            _ => 0,
        }
    }
}

/// One struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<VarDecl>,
    /// Source line.
    pub line: u32,
}

/// A variable declaration (global, local, param, or field).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: TypeExpr,
    /// Array length (`None` for a plain variable).
    pub array: Option<u64>,
    /// Source line.
    pub line: u32,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Variable reference.
    Ident(String),
    /// `a OP b`.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `OP a`.
    Unary(UnOp, Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&lvalue`.
    AddrOf(Box<Expr>),
    /// `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field`.
    Member(Box<Expr>, String),
    /// `base->field`.
    Arrow(Box<Expr>, String),
    /// `f(args…)`.
    Call(String, Vec<Expr>),
    /// `malloc(count, type)` — parsed from `malloc(n * sizeof(T))` or
    /// `malloc(sizeof(T))`.
    Malloc(Box<Expr>, TypeExpr),
    /// `sizeof(T)` (kept for safety analysis; evaluated per-arch).
    Sizeof(TypeExpr),
    /// `(T) e` — a cast; pointer↔int casts are flagged migration-unsafe.
    /// Carries the span of its opening parenthesis so the safety screen
    /// can point at the exact cast, not just the statement line.
    Cast(TypeExpr, Box<Expr>, Span),
}

/// Statements. Each carries its source line for diagnostics/annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lvalue = expr;`
    Assign {
        /// Assignment target.
        target: Expr,
        /// Value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// A bare expression statement (usually a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) then else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `for (init; cond; step) body` — desugared by the parser into
    /// `init; while (cond) { body; step; }` is *not* done, so the loop
    /// header is visible for poll-point insertion.
    For {
        /// Init statement (assignment), if any.
        init: Option<Box<Stmt>>,
        /// Condition (defaults to true).
        cond: Option<Expr>,
        /// Step statement, if any.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return expr?;`
    Return {
        /// Optional value.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `break;`
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue;`
    Continue {
        /// Source line.
        line: u32,
    },
    /// `free(e);`
    Free {
        /// The pointer expression.
        ptr: Expr,
        /// Source line.
        line: u32,
    },
    /// `print(expr);` — appends to the process's result digest.
    Print {
        /// Optional label.
        label: Option<String>,
        /// The value.
        value: Expr,
        /// Source line.
        line: u32,
    },
}

impl Stmt {
    /// Source line of the statement.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::Free { line, .. }
            | Stmt::Print { line, .. } => *line,
        }
    }
}

/// One function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: TypeExpr,
    /// Parameters.
    pub params: Vec<VarDecl>,
    /// Local declarations (mini-C requires all locals at function top,
    /// like C89).
    pub locals: Vec<VarDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<VarDecl>,
    /// Functions (`main` must exist to run).
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_depth() {
        let t = TypeExpr::Pointer(Box::new(TypeExpr::Pointer(Box::new(TypeExpr::Scalar(
            hpm_arch::CScalar::Int,
        )))));
        assert_eq!(t.pointer_depth(), 2);
        assert_eq!(TypeExpr::Void.pointer_depth(), 0);
    }

    #[test]
    fn stmt_lines() {
        let s = Stmt::Break { line: 7 };
        assert_eq!(s.line(), 7);
    }
}
