//! Annotated-source emission: the visible half of the source-to-source
//! transformation.
//!
//! §2: "At each poll-point, a label statement and a specific macro
//! containing migration operations are inserted." This module re-emits a
//! mini-C program with those insertions — `MIG_POLL(id, live…)` macros at
//! loop headers and function entries, `MIG_CALLSITE(id, live…)` markers
//! at call statements — so the transformation the VM performs internally
//! can be inspected, diffed, and documented.

use crate::ast::*;
use crate::cfg::{Cfg, NodeKind, ENTRY};
use crate::liveness::solve;
use crate::parser::parse;
use crate::CError;
use std::fmt::Write;

/// One selected poll-point (or call pass-through site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollSite {
    /// Enclosing function.
    pub function: String,
    /// Site id unique within the function.
    pub id: u32,
    /// Source line of the annotated construct.
    pub line: u32,
    /// `"entry"`, `"loop-header"`, or `"call-site"`.
    pub kind: String,
    /// Live variables the pre-compiler computed.
    pub live: Vec<String>,
}

/// Annotate mini-C source: returns the transformed listing and the
/// selected sites.
pub fn annotate_source(src: &str) -> Result<(String, Vec<PollSite>), CError> {
    let program = parse(src)?;
    let mut out = String::new();
    let mut sites = Vec::new();

    for s in &program.structs {
        let _ = writeln!(out, "struct {} {{", s.name);
        for f in &s.fields {
            let _ = writeln!(out, "    {};", decl_text(f));
        }
        let _ = writeln!(out, "}};");
    }
    for g in &program.globals {
        let _ = writeln!(out, "{};", decl_text(g));
    }

    for f in &program.functions {
        let cfg = Cfg::build(f);
        let live = solve(f, &cfg);
        let mut next_id = 1u32;
        // Deterministic walk: entry, then statements (loop headers and
        // call statements in textual order) — the same order the bytecode
        // compiler assigns site ids.
        let _ = writeln!(
            out,
            "{} {}({}) {{",
            type_text(&f.ret),
            f.name,
            params_text(&f.params)
        );
        for d in &f.locals {
            let _ = writeln!(out, "    {};", decl_text(d));
        }
        let entry_live = live.live_at_poll(f, ENTRY);
        sites.push(PollSite {
            function: f.name.clone(),
            id: 0,
            line: f.line,
            kind: "entry".into(),
            live: entry_live.clone(),
        });
        let _ = writeln!(
            out,
            "    MIG_ENTRY({}); /* live: {} */",
            f.name,
            entry_live.join(", ")
        );

        // Collect loop-header/call-site nodes in creation order, which
        // matches textual order.
        let mut headers: Vec<usize> = cfg.nodes_of_kind(|k| matches!(k, NodeKind::LoopHeader));
        let mut calls: Vec<usize> = cfg.nodes_of_kind(|k| matches!(k, NodeKind::CallSite { .. }));
        headers.reverse(); // pop from back = in-order
        calls.reverse();

        let mut w = Writer {
            out: &mut out,
            f,
            live: &live,
            headers,
            calls,
            sites: &mut sites,
            next_id: &mut next_id,
            indent: 1,
        };
        for s in &f.body {
            w.stmt(s);
        }
        let _ = writeln!(out, "}}");
    }
    Ok((out, sites))
}

struct Writer<'a> {
    out: &'a mut String,
    f: &'a Function,
    live: &'a crate::liveness::Liveness,
    headers: Vec<usize>,
    calls: Vec<usize>,
    sites: &'a mut Vec<PollSite>,
    next_id: &'a mut u32,
    indent: usize,
}

impl Writer<'_> {
    fn pad(&self) -> String {
        "    ".repeat(self.indent)
    }

    fn take_site(&mut self, header: bool, line: u32) -> (u32, Vec<String>) {
        let node = if header {
            self.headers.pop()
        } else {
            self.calls.pop()
        };
        let live = node
            .map(|n| self.live.live_at_poll(self.f, n))
            .unwrap_or_default();
        let id = *self.next_id;
        *self.next_id += 1;
        self.sites.push(PollSite {
            function: self.f.name.clone(),
            id,
            line,
            kind: if header {
                "loop-header".into()
            } else {
                "call-site".into()
            },
            live: live.clone(),
        });
        (id, live)
    }

    fn stmt(&mut self, s: &Stmt) {
        let pad = self.pad();
        match s {
            Stmt::While { cond, body, line } => {
                let (id, live) = self.take_site(true, *line);
                let _ = writeln!(
                    self.out,
                    "{pad}L{id}: MIG_POLL({id}); /* live: {} */",
                    live.join(", ")
                );
                let _ = writeln!(self.out, "{pad}while ({}) {{", expr_text(cond));
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                self.indent -= 1;
                let _ = writeln!(self.out, "{pad}}}");
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let (id, live) = self.take_site(true, *line);
                let _ = writeln!(
                    self.out,
                    "{pad}L{id}: MIG_POLL({id}); /* live: {} */",
                    live.join(", ")
                );
                let c = cond.as_ref().map(expr_text).unwrap_or_else(|| "1".into());
                let _ = writeln!(self.out, "{pad}while ({c}) {{");
                self.indent += 1;
                for s in body {
                    self.stmt(s);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.indent -= 1;
                let _ = writeln!(self.out, "{pad}}}");
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let _ = writeln!(self.out, "{pad}if ({}) {{", expr_text(cond));
                self.indent += 1;
                for s in then_body {
                    self.stmt(s);
                }
                self.indent -= 1;
                if else_body.is_empty() {
                    let _ = writeln!(self.out, "{pad}}}");
                } else {
                    let _ = writeln!(self.out, "{pad}}} else {{");
                    self.indent += 1;
                    for s in else_body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                    let _ = writeln!(self.out, "{pad}}}");
                }
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                if crate::cfg::find_call(value).is_some() {
                    let (id, live) = self.take_site(false, *line);
                    let _ = writeln!(
                        self.out,
                        "{pad}L{id}: MIG_CALLSITE({id}); /* live: {} */",
                        live.join(", ")
                    );
                }
                let _ = writeln!(
                    self.out,
                    "{pad}{} = {};",
                    expr_text(target),
                    expr_text(value)
                );
            }
            Stmt::Expr { expr, line } => {
                if crate::cfg::find_call(expr).is_some() {
                    let (id, live) = self.take_site(false, *line);
                    let _ = writeln!(
                        self.out,
                        "{pad}L{id}: MIG_CALLSITE({id}); /* live: {} */",
                        live.join(", ")
                    );
                }
                let _ = writeln!(self.out, "{pad}{};", expr_text(expr));
            }
            Stmt::Return { value, .. } => match value {
                Some(v) => {
                    let _ = writeln!(self.out, "{pad}return {};", expr_text(v));
                }
                None => {
                    let _ = writeln!(self.out, "{pad}return;");
                }
            },
            Stmt::Break { .. } => {
                let _ = writeln!(self.out, "{pad}break;");
            }
            Stmt::Continue { .. } => {
                let _ = writeln!(self.out, "{pad}continue;");
            }
            Stmt::Free { ptr, .. } => {
                let _ = writeln!(self.out, "{pad}free({});", expr_text(ptr));
            }
            Stmt::Print { label, value, .. } => {
                let l = label.as_deref().unwrap_or("print");
                let _ = writeln!(self.out, "{pad}print(\"{l}\", {});", expr_text(value));
            }
        }
    }
}

fn type_text(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Scalar(s) => s.c_name().to_string(),
        TypeExpr::Struct(n) => format!("struct {n}"),
        TypeExpr::Pointer(inner) => format!("{} *", type_text(inner)),
        TypeExpr::Void => "void".to_string(),
    }
}

fn decl_text(d: &VarDecl) -> String {
    match d.array {
        Some(n) => format!("{} {}[{n}]", type_text(&d.ty), d.name),
        None => format!("{} {}", type_text(&d.ty), d.name),
    }
}

fn params_text(ps: &[VarDecl]) -> String {
    if ps.is_empty() {
        return "void".into();
    }
    ps.iter().map(decl_text).collect::<Vec<_>>().join(", ")
}

fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => format!("{v:?}"),
        Expr::Ident(n) => n.clone(),
        Expr::Binary(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {o} {})", expr_text(a), expr_text(b))
        }
        Expr::Unary(UnOp::Neg, a) => format!("(-{})", expr_text(a)),
        Expr::Unary(UnOp::Not, a) => format!("(!{})", expr_text(a)),
        Expr::Deref(a) => format!("(*{})", expr_text(a)),
        Expr::AddrOf(a) => format!("(&{})", expr_text(a)),
        Expr::Index(a, i) => format!("{}[{}]", expr_text(a), expr_text(i)),
        Expr::Member(a, f) => format!("{}.{f}", expr_text(a)),
        Expr::Arrow(a, f) => format!("{}->{f}", expr_text(a)),
        Expr::Call(n, args) => format!(
            "{n}({})",
            args.iter().map(expr_text).collect::<Vec<_>>().join(", ")
        ),
        Expr::Malloc(n, t) => format!("malloc({} * sizeof({}))", expr_text(n), type_text(t)),
        Expr::Sizeof(t) => format!("sizeof({})", type_text(t)),
        Expr::Cast(t, a, _) => format!("(({}) {})", type_text(t), expr_text(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "int g;\n\
        int work(int n) { int i; int acc; acc = 0; for (i = 0; i < n; i++) { acc = acc + i; } return acc; }\n\
        int main() { int total; int k; int r; total = 0; \
        while (k < 10) { r = work(5); total = total + r; k = k + 1; } \
        print(\"t\", total); return 0; }";

    #[test]
    fn annotation_inserts_polls_and_callsites() {
        let (text, sites) = annotate_source(SRC).unwrap();
        assert!(text.contains("MIG_POLL("), "{text}");
        assert!(text.contains("MIG_CALLSITE("), "{text}");
        assert!(text.contains("/* live:"));
        let kinds: Vec<&str> = sites.iter().map(|s| s.kind.as_str()).collect();
        assert!(kinds.contains(&"entry"));
        assert!(kinds.contains(&"loop-header"));
        assert!(kinds.contains(&"call-site"));
    }

    #[test]
    fn live_sets_attached() {
        let (_, sites) = annotate_source(SRC).unwrap();
        let main_loop = sites
            .iter()
            .find(|s| s.function == "main" && s.kind == "loop-header")
            .unwrap();
        assert!(
            main_loop.live.contains(&"total".to_string()),
            "{main_loop:?}"
        );
        assert!(main_loop.live.contains(&"k".to_string()));
    }

    #[test]
    fn emitted_text_round_parses() {
        // The emitted listing (minus macros) is itself mini-C except for
        // labels; strip the inserted lines and reparse.
        let (text, _) = annotate_source(SRC).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.contains("MIG_"))
            .collect::<Vec<_>>()
            .join("\n");
        parse(&stripped).unwrap();
    }

    #[test]
    fn figure1_annotation() {
        let src = r#"
            struct node { float data; struct node *link; };
            struct node *first;
            void foo(struct node **p) { *p = (struct node *) malloc(sizeof(struct node)); }
            int main() {
                int i;
                struct node *parray[10];
                for (i = 0; i < 10; i++) {
                    foo(&parray[i]);
                    first = parray[0];
                }
                return 0;
            }
        "#;
        let (text, sites) = annotate_source(src).unwrap();
        // The loop header poll carries i and parray (parray: aggregate →
        // always live; i: loop-carried).
        let lh = sites.iter().find(|s| s.kind == "loop-header").unwrap();
        assert!(lh.live.contains(&"i".to_string()));
        assert!(lh.live.contains(&"parray".to_string()));
        assert!(text.contains("struct node {"));
    }
}
