//! Migration-unsafe feature detection.
//!
//! The paper (§1): "Smith and Hutchinson [5] have identified the
//! migration-unsafe features of the C language. With the help of a
//! compiler, most of the migration-unsafe features can be detected and
//! avoided." This pass is that screen for mini-C. Some constructs are
//! rejected during parsing (`union`, `goto`, `switch`, varargs, function
//! pointers); this pass catches the value-level ones that parse fine:
//!
//! * casting a pointer to an integer type (the integer would carry a
//!   machine-specific address across the migration);
//! * casting an integer to a pointer type (forging addresses the MSRLT
//!   cannot translate);
//! * casting between pointers whose pointee types have different shapes
//!   (the TI table could mis-restore the target block).

use crate::ast::*;
use crate::CError;

/// A migration-unsafe feature, with the source line and column where it
/// occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnsafeFeature {
    /// `union` types: the live variant is unknowable at migration time.
    Union {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// `goto`: resume points would not dominate their uses.
    Goto {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// `switch`: fall-through labels complicate resume points (rejected
    /// in this subset; a full pre-compiler can transform them).
    Switch {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// Variadic functions: unknown live data at call sites.
    Varargs {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// Function pointers: code addresses are not portable.
    FunctionPointer {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// Pointer value cast to an integer type.
    PointerToInt {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// Integer value cast to a pointer type.
    IntToPointer {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
}

impl UnsafeFeature {
    /// Source position `(line, col)` of the feature.
    pub fn position(&self) -> (u32, u32) {
        match *self {
            UnsafeFeature::Union { line, col }
            | UnsafeFeature::Goto { line, col }
            | UnsafeFeature::Switch { line, col }
            | UnsafeFeature::Varargs { line, col }
            | UnsafeFeature::FunctionPointer { line, col }
            | UnsafeFeature::PointerToInt { line, col }
            | UnsafeFeature::IntToPointer { line, col } => (line, col),
        }
    }
}

impl std::fmt::Display for UnsafeFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (line, col) = self.position();
        let what = match self {
            UnsafeFeature::Union { .. } => "union",
            UnsafeFeature::Goto { .. } => "goto",
            UnsafeFeature::Switch { .. } => "switch",
            UnsafeFeature::Varargs { .. } => "varargs",
            UnsafeFeature::FunctionPointer { .. } => "function pointer",
            UnsafeFeature::PointerToInt { .. } => "pointer cast to integer",
            UnsafeFeature::IntToPointer { .. } => "integer cast to pointer",
        };
        write!(f, "{what} (line {line}, col {col})")
    }
}

/// Scan a parsed program for migration-unsafe casts.
///
/// Cast direction is judged *syntactically*: a cast to an integer type
/// whose operand is a pointer-shaped expression (`&x`, a pointer
/// variable, `malloc`, pointer arithmetic) is pointer→int; a cast to a
/// pointer type whose operand is integer-shaped is int→pointer. Casts
/// between pointer types (e.g. `(struct node *) malloc(…)`) are safe:
/// the MSRLT translates them like any other pointer.
pub fn check_migration_safety(program: &Program) -> Vec<UnsafeFeature> {
    let mut ck = Checker {
        program,
        found: Vec::new(),
        seen: Default::default(),
        ptr_vars: Default::default(),
    };
    for f in &program.functions {
        ck.ptr_vars.clear();
        for d in program.globals.iter().chain(&f.params).chain(&f.locals) {
            if d.ty.pointer_depth() > 0 || d.array.is_some() {
                ck.ptr_vars.insert(d.name.clone());
            }
        }
        for s in &f.body {
            ck.stmt(s);
        }
    }
    ck.found
}

/// Validate a program completely: parse-level rejections happened
/// already; this returns `Err` if the cast screen finds anything.
pub fn require_safe(program: &Program) -> Result<(), CError> {
    match check_migration_safety(program).into_iter().next() {
        None => Ok(()),
        Some(u) => Err(CError::Unsafe(u)),
    }
}

struct Checker<'a> {
    #[allow(dead_code)]
    program: &'a Program,
    found: Vec<UnsafeFeature>,
    // The parser desugars `e OP= v` and `e++` by cloning `e` into the
    // value side, so one source cast can be visited twice; report each
    // source position once.
    seen: std::collections::HashSet<UnsafeFeature>,
    ptr_vars: std::collections::HashSet<String>,
}

impl Checker<'_> {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { target, value, .. } => {
                self.expr(target);
                self.expr(value);
            }
            Stmt::Expr { expr, .. } => self.expr(expr),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr(cond);
                for s in then_body.iter().chain(else_body) {
                    self.stmt(s);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond);
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            Stmt::Free { ptr, .. } => self.expr(ptr),
            Stmt::Print { value, .. } => self.expr(value),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }

    /// Whether an expression is pointer-shaped (syntactic judgement).
    fn is_pointerish(&self, e: &Expr) -> bool {
        match e {
            Expr::AddrOf(_) | Expr::Malloc(..) => true,
            Expr::Ident(n) => self.ptr_vars.contains(n),
            Expr::Cast(t, _, _) => t.pointer_depth() > 0,
            Expr::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                self.is_pointerish(a) || self.is_pointerish(b)
            }
            _ => false,
        }
    }

    fn report(&mut self, u: UnsafeFeature) {
        if self.seen.insert(u) {
            self.found.push(u);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Cast(ty, inner, span) => {
                let to_ptr = ty.pointer_depth() > 0;
                let from_ptr = self.is_pointerish(inner);
                let (line, col) = (span.line, span.col);
                if !to_ptr && from_ptr && !matches!(ty, TypeExpr::Scalar(s) if s.is_float()) {
                    self.report(UnsafeFeature::PointerToInt { line, col });
                }
                if to_ptr && !from_ptr {
                    self.report(UnsafeFeature::IntToPointer { line, col });
                }
                self.expr(inner);
            }
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Unary(_, a) | Expr::Deref(a) | Expr::AddrOf(a) => self.expr(a),
            Expr::Member(a, _) | Expr::Arrow(a, _) => self.expr(a),
            Expr::Call(_, args) => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Malloc(n, _) => self.expr(n),
            Expr::Int(_) | Expr::Float(_) | Expr::Ident(_) | Expr::Sizeof(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn clean_program_passes() {
        let p = parse(
            "struct n { int v; struct n *next; };\n\
             int main() { struct n *p; p = (struct n *) malloc(sizeof(struct n)); return 0; }",
        )
        .unwrap();
        assert!(check_migration_safety(&p).is_empty());
        assert!(require_safe(&p).is_ok());
    }

    #[test]
    fn pointer_to_int_cast_flagged() {
        let p = parse("int main() { int x; int *p; p = &x; x = (int) p; return x; }").unwrap();
        let found = check_migration_safety(&p);
        assert!(
            matches!(found[0], UnsafeFeature::PointerToInt { .. }),
            "{found:?}"
        );
        assert!(require_safe(&p).is_err());
    }

    #[test]
    fn int_to_pointer_cast_flagged() {
        let p = parse("int main() { int *p; p = (int *) 1234; return 0; }").unwrap();
        let found = check_migration_safety(&p);
        assert!(
            matches!(found[0], UnsafeFeature::IntToPointer { .. }),
            "{found:?}"
        );
    }

    #[test]
    fn addr_of_cast_to_int_flagged() {
        let p = parse("int main() { int x; long l; l = (long) &x; return 0; }").unwrap();
        assert_eq!(check_migration_safety(&p).len(), 1);
    }

    #[test]
    fn pointer_to_pointer_cast_ok() {
        let p = parse(
            "struct a { int x; };\n\
             int main() { struct a *p; p = (struct a *) malloc(sizeof(struct a)); return 0; }",
        )
        .unwrap();
        assert!(check_migration_safety(&p).is_empty());
    }

    #[test]
    fn cast_report_carries_column() {
        let p = parse("int main() { int x; int *p; p = &x; x = (int) p; return x; }").unwrap();
        let found = check_migration_safety(&p);
        assert_eq!(found.len(), 1);
        // The cast's opening parenthesis is at column 41.
        assert_eq!(found[0], UnsafeFeature::PointerToInt { line: 1, col: 41 });
        assert!(found[0].to_string().contains("col 41"), "{}", found[0]);
    }

    #[test]
    fn desugared_compound_assign_reports_cast_once() {
        // `*((int *) 9000) += 1` desugars by cloning the target into the
        // value side; the single source cast must be reported once.
        let p = parse("int main() { *((int *) 9000) += 1; return 0; }").unwrap();
        let found = check_migration_safety(&p);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(matches!(found[0], UnsafeFeature::IntToPointer { .. }));
    }

    #[test]
    fn distinct_casts_on_one_line_both_reported() {
        let p = parse("int main() { int *p; int *q; p = (int *) 1; q = (int *) 2; return 0; }")
            .unwrap();
        let found = check_migration_safety(&p);
        assert_eq!(found.len(), 2, "{found:?}");
        let (l0, c0) = found[0].position();
        let (l1, c1) = found[1].position();
        assert_eq!(l0, l1);
        assert_ne!(c0, c1, "distinct casts keep distinct columns");
    }

    #[test]
    fn nested_unsafe_found_in_loops() {
        let p = parse(
            "int main() { int i; int *q; for (i = 0; i < 3; i++) { q = (int *) i; } return 0; }",
        )
        .unwrap();
        assert_eq!(check_migration_safety(&p).len(), 1);
    }
}
