//! Migration-unsafe feature detection.
//!
//! The paper (§1): "Smith and Hutchinson [5] have identified the
//! migration-unsafe features of the C language. With the help of a
//! compiler, most of the migration-unsafe features can be detected and
//! avoided." This pass is that screen for mini-C. Some constructs are
//! rejected during parsing (`union`, `goto`, `switch`, varargs, function
//! pointers); this pass catches the value-level ones that parse fine:
//!
//! * casting a pointer to an integer type (the integer would carry a
//!   machine-specific address across the migration);
//! * casting an integer to a pointer type (forging addresses the MSRLT
//!   cannot translate);
//! * casting between pointers whose pointee types have different shapes
//!   (the TI table could mis-restore the target block).

use crate::ast::*;
use crate::CError;

/// A migration-unsafe feature, with the source line where it occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsafeFeature {
    /// `union` types: the live variant is unknowable at migration time.
    Union {
        /// Source line.
        line: u32,
    },
    /// `goto`: resume points would not dominate their uses.
    Goto {
        /// Source line.
        line: u32,
    },
    /// `switch`: fall-through labels complicate resume points (rejected
    /// in this subset; a full pre-compiler can transform them).
    Switch {
        /// Source line.
        line: u32,
    },
    /// Variadic functions: unknown live data at call sites.
    Varargs {
        /// Source line.
        line: u32,
    },
    /// Function pointers: code addresses are not portable.
    FunctionPointer {
        /// Source line.
        line: u32,
    },
    /// Pointer value cast to an integer type.
    PointerToInt {
        /// Source line.
        line: u32,
    },
    /// Integer value cast to a pointer type.
    IntToPointer {
        /// Source line.
        line: u32,
    },
}

impl std::fmt::Display for UnsafeFeature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsafeFeature::Union { line } => write!(f, "union (line {line})"),
            UnsafeFeature::Goto { line } => write!(f, "goto (line {line})"),
            UnsafeFeature::Switch { line } => write!(f, "switch (line {line})"),
            UnsafeFeature::Varargs { line } => write!(f, "varargs (line {line})"),
            UnsafeFeature::FunctionPointer { line } => write!(f, "function pointer (line {line})"),
            UnsafeFeature::PointerToInt { line } => {
                write!(f, "pointer cast to integer (line {line})")
            }
            UnsafeFeature::IntToPointer { line } => {
                write!(f, "integer cast to pointer (line {line})")
            }
        }
    }
}

/// Scan a parsed program for migration-unsafe casts.
///
/// Cast direction is judged *syntactically*: a cast to an integer type
/// whose operand is a pointer-shaped expression (`&x`, a pointer
/// variable, `malloc`, pointer arithmetic) is pointer→int; a cast to a
/// pointer type whose operand is integer-shaped is int→pointer. Casts
/// between pointer types (e.g. `(struct node *) malloc(…)`) are safe:
/// the MSRLT translates them like any other pointer.
pub fn check_migration_safety(program: &Program) -> Vec<UnsafeFeature> {
    let mut ck = Checker {
        program,
        found: Vec::new(),
        ptr_vars: Default::default(),
    };
    for f in &program.functions {
        ck.ptr_vars.clear();
        for d in program.globals.iter().chain(&f.params).chain(&f.locals) {
            if d.ty.pointer_depth() > 0 || d.array.is_some() {
                ck.ptr_vars.insert(d.name.clone());
            }
        }
        for s in &f.body {
            ck.stmt(s);
        }
    }
    ck.found
}

/// Validate a program completely: parse-level rejections happened
/// already; this returns `Err` if the cast screen finds anything.
pub fn require_safe(program: &Program) -> Result<(), CError> {
    match check_migration_safety(program).into_iter().next() {
        None => Ok(()),
        Some(u) => Err(CError::Unsafe(u)),
    }
}

struct Checker<'a> {
    #[allow(dead_code)]
    program: &'a Program,
    found: Vec<UnsafeFeature>,
    ptr_vars: std::collections::HashSet<String>,
}

impl Checker<'_> {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                self.expr(target, *line);
                self.expr(value, *line);
            }
            Stmt::Expr { expr, line } => self.expr(expr, *line),
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                self.expr(cond, *line);
                for s in then_body.iter().chain(else_body) {
                    self.stmt(s);
                }
            }
            Stmt::While { cond, body, line } => {
                self.expr(cond, *line);
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c, *line);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                for s in body {
                    self.stmt(s);
                }
            }
            Stmt::Return { value, line } => {
                if let Some(v) = value {
                    self.expr(v, *line);
                }
            }
            Stmt::Free { ptr, line } => self.expr(ptr, *line),
            Stmt::Print { value, line, .. } => self.expr(value, *line),
            Stmt::Break { .. } | Stmt::Continue { .. } => {}
        }
    }

    /// Whether an expression is pointer-shaped (syntactic judgement).
    fn is_pointerish(&self, e: &Expr) -> bool {
        match e {
            Expr::AddrOf(_) | Expr::Malloc(..) => true,
            Expr::Ident(n) => self.ptr_vars.contains(n),
            Expr::Cast(t, _) => t.pointer_depth() > 0,
            Expr::Binary(BinOp::Add | BinOp::Sub, a, b) => {
                self.is_pointerish(a) || self.is_pointerish(b)
            }
            _ => false,
        }
    }

    fn expr(&mut self, e: &Expr, line: u32) {
        match e {
            Expr::Cast(ty, inner) => {
                let to_ptr = ty.pointer_depth() > 0;
                let from_ptr = self.is_pointerish(inner);
                if !to_ptr && from_ptr && !matches!(ty, TypeExpr::Scalar(s) if s.is_float()) {
                    self.found.push(UnsafeFeature::PointerToInt { line });
                }
                if to_ptr && !from_ptr {
                    self.found.push(UnsafeFeature::IntToPointer { line });
                }
                self.expr(inner, line);
            }
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                self.expr(a, line);
                self.expr(b, line);
            }
            Expr::Unary(_, a) | Expr::Deref(a) | Expr::AddrOf(a) => self.expr(a, line),
            Expr::Member(a, _) | Expr::Arrow(a, _) => self.expr(a, line),
            Expr::Call(_, args) => {
                for a in args {
                    self.expr(a, line);
                }
            }
            Expr::Malloc(n, _) => self.expr(n, line),
            Expr::Int(_) | Expr::Float(_) | Expr::Ident(_) | Expr::Sizeof(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn clean_program_passes() {
        let p = parse(
            "struct n { int v; struct n *next; };\n\
             int main() { struct n *p; p = (struct n *) malloc(sizeof(struct n)); return 0; }",
        )
        .unwrap();
        assert!(check_migration_safety(&p).is_empty());
        assert!(require_safe(&p).is_ok());
    }

    #[test]
    fn pointer_to_int_cast_flagged() {
        let p = parse("int main() { int x; int *p; p = &x; x = (int) p; return x; }").unwrap();
        let found = check_migration_safety(&p);
        assert!(
            matches!(found[0], UnsafeFeature::PointerToInt { .. }),
            "{found:?}"
        );
        assert!(require_safe(&p).is_err());
    }

    #[test]
    fn int_to_pointer_cast_flagged() {
        let p = parse("int main() { int *p; p = (int *) 1234; return 0; }").unwrap();
        let found = check_migration_safety(&p);
        assert!(
            matches!(found[0], UnsafeFeature::IntToPointer { .. }),
            "{found:?}"
        );
    }

    #[test]
    fn addr_of_cast_to_int_flagged() {
        let p = parse("int main() { int x; long l; l = (long) &x; return 0; }").unwrap();
        assert_eq!(check_migration_safety(&p).len(), 1);
    }

    #[test]
    fn pointer_to_pointer_cast_ok() {
        let p = parse(
            "struct a { int x; };\n\
             int main() { struct a *p; p = (struct a *) malloc(sizeof(struct a)); return 0; }",
        )
        .unwrap();
        assert!(check_migration_safety(&p).is_empty());
    }

    #[test]
    fn nested_unsafe_found_in_loops() {
        let p = parse(
            "int main() { int i; int *q; for (i = 0; i < 3; i++) { q = (int *) i; } return 0; }",
        )
        .unwrap();
        assert_eq!(check_migration_safety(&p).len(), 1);
    }
}
