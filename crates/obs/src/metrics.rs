//! A registry of named counters, gauges, and histograms.
//!
//! Handles are `Arc`-backed atomics: registering returns a handle whose
//! hot-path update is a single atomic RMW (`O(1)`, no locks, no
//! allocation). The registry itself is only locked when registering or
//! snapshotting — never on the update path — so instrumented code can
//! run inside migration hot loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets in a [`Histogram`]: values `0, 1, 2-3, 4-7, …`
/// up to `2^62..`, which covers nanosecond timings and byte sizes alike.
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Default)]
struct CounterCell(AtomicU64);

#[derive(Default)]
struct GaugeCell(AtomicI64);

struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0 .0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0 .0.load(Ordering::Relaxed)
    }
}

/// Signed point-in-time gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0 .0.store(v, Ordering::Relaxed);
    }

    /// Adjust by a delta (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0 .0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0 .0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram handle (counts + sum, so mean is exact).
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCell>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// A standalone histogram, unattached to any registry. Useful for
    /// per-transfer latency tracking where the handle is threaded through
    /// a component directly instead of looked up by name.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. The running sum saturates at `u64::MAX`
    /// instead of wrapping, so pathological inputs degrade gracefully.
    #[inline]
    pub fn observe(&self, v: u64) {
        let bucket = bucket_of(v);
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .0
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Point-in-time copy with quantile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in self.0.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }
}

/// Bucket index for a value: `0 -> 0`, else `1 + floor(log2(v))`, capped.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper edge of a log2 bucket: bucket 0 holds only 0, bucket
/// `i` holds `[2^(i-1), 2^i - 1]`, and the top bucket is open-ended.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Point-in-time copy of a [`Histogram`] with log-bucketed quantile
/// estimation. `Copy` so phase snapshots that embed one stay `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Exact largest observation (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts (log2 buckets, see [`bucket_of`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Estimated quantile `q` in `[0, 1]`. Walks the cumulative bucket
    /// counts to the bucket containing the target rank and reports that
    /// bucket's inclusive upper edge, clamped to the exact tracked
    /// maximum — so the estimate never exceeds any real observation and
    /// `quantile(1.0) == max` exactly. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Accumulate another snapshot: bucket-wise addition, saturating
    /// count/sum, larger max. Commutative: `a.merge(b)` and `b.merge(a)`
    /// produce equal snapshots.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// A snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram `(count, sum, non-empty log2 buckets as (index, count))`.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Sparse `(bucket_index, count)` pairs for non-empty buckets.
        buckets: Vec<(usize, u64)>,
    },
}

/// Point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Name → value, sorted by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Accumulate another snapshot: counters/histograms add, gauges take
    /// the other side's value (latest wins), unknown names are inserted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.entries {
            match (self.entries.get_mut(name), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = *b,
                (
                    Some(MetricValue::Histogram {
                        count,
                        sum,
                        buckets,
                    }),
                    MetricValue::Histogram {
                        count: c2,
                        sum: s2,
                        buckets: b2,
                    },
                ) => {
                    *count += c2;
                    *sum += s2;
                    let mut merged: BTreeMap<usize, u64> = buckets.iter().copied().collect();
                    for &(i, n) in b2 {
                        *merged.entry(i).or_insert(0) += n;
                    }
                    *buckets = merged.into_iter().collect();
                }
                _ => {
                    self.entries.insert(name.clone(), v.clone());
                }
            }
        }
    }

    /// Render as an aligned `name  value` table (histograms show
    /// `count/sum/mean`).
    pub fn render(&self) -> String {
        let rows: Vec<(String, String)> = self
            .entries
            .iter()
            .map(|(name, v)| {
                let val = match v {
                    MetricValue::Counter(c) => c.to_string(),
                    MetricValue::Gauge(g) => g.to_string(),
                    MetricValue::Histogram { count, sum, .. } => {
                        let mean = if *count == 0 {
                            0.0
                        } else {
                            *sum as f64 / *count as f64
                        };
                        format!("n={count} sum={sum} mean={mean:.1}")
                    }
                };
                (name.clone(), val)
            })
            .collect();
        let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<w$}  {v}\n"));
        }
        out
    }

    /// Render as JSON Lines, one object per metric, sorted by name (the
    /// backing map is ordered), so two snapshots of identical state
    /// produce byte-identical output.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            let esc: String = name
                .chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c => vec![c],
                })
                .collect();
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"{esc}\",\"kind\":\"counter\",\"value\":{c}}}\n"
                    ));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!(
                        "{{\"metric\":\"{esc}\",\"kind\":\"gauge\",\"value\":{g}}}\n"
                    ));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let b: Vec<String> =
                        buckets.iter().map(|(i, n)| format!("[{i},{n}]")).collect();
                    out.push_str(&format!(
                        "{{\"metric\":\"{esc}\",\"kind\":\"histogram\",\"count\":{count},\
                         \"sum\":{sum},\"buckets\":[{}]}}\n",
                        b.join(",")
                    ));
                }
            }
        }
        out
    }
}

/// Registry of named metrics. Cheap to clone (shared interior).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter. Re-registering a name returns a handle to
    /// the same underlying cell.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::default())))
        {
            Metric::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create a gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())))
        {
            Metric::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create a histogram.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::default())))
        {
            Metric::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().unwrap();
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.0.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(g.0.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                (n != 0).then_some((i, n))
                            })
                            .collect(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("blocks");
        let b = reg.counter("blocks");
        a.inc();
        b.add(9);
        assert_eq!(a.get(), 10);
        match reg.snapshot().entries.get("blocks") {
            Some(MetricValue::Counter(10)) => {}
            other => panic!("unexpected snapshot: {other:?}"),
        }
    }

    #[test]
    fn gauge_set_and_delta() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("search_steps");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        match reg.snapshot().entries.get("search_steps") {
            Some(MetricValue::Histogram {
                count: 6,
                sum: 1010,
                buckets,
            }) => {
                // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 -> 10.
                assert_eq!(buckets, &vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
            }
            other => panic!("unexpected snapshot: {other:?}"),
        }
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let reg1 = MetricsRegistry::new();
        reg1.counter("c").add(3);
        reg1.histogram("h").observe(4);
        reg1.gauge("g").set(1);
        let reg2 = MetricsRegistry::new();
        reg2.counter("c").add(7);
        reg2.histogram("h").observe(4);
        reg2.gauge("g").set(42);
        reg2.counter("only2").add(1);

        let mut snap = reg1.snapshot();
        snap.merge(&reg2.snapshot());
        assert_eq!(snap.entries.get("c"), Some(&MetricValue::Counter(10)));
        assert_eq!(snap.entries.get("g"), Some(&MetricValue::Gauge(42)));
        assert_eq!(snap.entries.get("only2"), Some(&MetricValue::Counter(1)));
        match snap.entries.get("h") {
            Some(MetricValue::Histogram {
                count: 2,
                sum: 8,
                buckets,
            }) => {
                assert_eq!(buckets, &vec![(3, 2)]);
            }
            other => panic!("unexpected merged histogram: {other:?}"),
        }
    }

    #[test]
    fn updates_race_free_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn render_is_aligned_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zz").add(1);
        reg.counter("a").add(2);
        let text = reg.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("zz"));
    }

    #[test]
    fn jsonl_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("zz").add(1);
        reg.histogram("h").observe(5);
        reg.gauge("a").set(-3);
        let a = reg.snapshot().jsonl();
        let b = reg.snapshot().jsonl();
        assert_eq!(a, b, "snapshots of identical state must be byte-stable");
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("\"metric\":\"a\""));
        assert!(lines[1].contains("\"metric\":\"h\""));
        assert!(lines[2].contains("\"metric\":\"zz\""));
        assert!(lines[1].contains("\"kind\":\"histogram\""));
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.quantile(1.0), 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn single_observation_pins_every_quantile() {
        let h = Histogram::new();
        h.observe(777);
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 777, "q={q}");
        }
        assert_eq!(snap.max, 777);
        assert_eq!(snap.mean(), 777.0);
    }

    #[test]
    fn observe_saturates_at_u64_max() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.quantile(1.0), u64::MAX);
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let h1 = Histogram::new();
        for v in [1, 2, 1000, 65_536] {
            h1.observe(v);
        }
        let h2 = Histogram::new();
        for v in [0, 3, 4_000_000] {
            h2.observe(v);
        }
        let mut ab = h1.snapshot();
        ab.merge(&h2.snapshot());
        let mut ba = h2.snapshot();
        ba.merge(&h1.snapshot());
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 7);
        assert_eq!(ab.max, 4_000_000);
    }

    #[test]
    fn quantile_estimates_track_bucket_edges() {
        let h = Histogram::new();
        // 90 fast observations in [8, 15], 10 slow ones in [1024, 2047].
        for i in 0..90u64 {
            h.observe(8 + (i % 8));
        }
        for _ in 0..10 {
            h.observe(1500);
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50(), 15, "p50 lands in the [8,15] bucket");
        assert_eq!(snap.p90(), 15, "rank 90 is still in the fast bucket");
        assert_eq!(snap.p99(), 1500, "p99 clamps to the exact max");
        assert_eq!(snap.quantile(1.0), 1500);
    }
}
